// Minimal ordered JSON writer for the machine-readable bench snapshots
// (BENCH_cpm.json, BENCH_cliques.json — schema in docs/FORMATS.md).
//
// Deliberately tiny: the bench binaries need objects, arrays, strings and
// numbers with insertion order preserved, nothing else. Values are
// formatted on insertion, so a Json node is just an ordered list of
// (key, rendered-value) pairs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/report.h"

namespace kcc::bench {

class Json {
 public:
  Json& add(const std::string& key, const std::string& value) {
    return raw(key, quote(value));
  }
  Json& add(const std::string& key, const char* value) {
    return raw(key, quote(value));
  }
  Json& add(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  Json& add(const std::string& key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  Json& add(const std::string& key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  Json& add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return raw(key, buf);
  }
  Json& add(const std::string& key, const Json& object) {
    return raw(key, object.str());
  }
  Json& add_array(const std::string& key, const std::vector<Json>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) out += ",";
      out += items[i].str();
    }
    out += "]";
    return raw(key, out);
  }

  /// The rendered object, e.g. {"a":1,"b":"x"}.
  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += quote(fields_[i].first) + ":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  Json& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The run manifest (obs/report.h) as a Json node, so every BENCH_*.json
/// snapshot records which build + host produced it:
///   doc.add("manifest", manifest_json(obs::collect_manifest("perf_cpm")));
inline Json manifest_json(const obs::RunManifest& m) {
  Json out;
  out.add("git_sha", m.git_sha + (m.git_dirty ? "+dirty" : ""));
  out.add("build_type", m.build_type);
  out.add("compiler", m.compiler);
  out.add("sanitize", m.sanitize);
  out.add("cpu_model", m.cpu_model);
  out.add("cpu_logical_cores", static_cast<std::uint64_t>(m.cpu_logical_cores));
  out.add("hostname", m.hostname);
  out.add("hw_counters", m.hw_counters);
  return out;
}

}  // namespace kcc::bench
