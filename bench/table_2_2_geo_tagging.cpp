// Table 2.2 — geographical tagging summary:
// national / continental / worldwide / unknown AS counts.
#include "harness.h"

#include "common/table.h"
#include "data/tags.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const AsEcosystem eco = generate_ecosystem(config.pipeline.synth);
  const GeoTagCounts counts = count_geo_tags(eco.geo, eco.num_ases());
  const double n = static_cast<double>(eco.num_ases());

  TextTable table(
      {"series", "National", "Continental", "Worldwide", "Unknown"});
  table.add("paper counts", 31228, 1115, 1568, 1479);
  table.add("paper shares", percent(31228.0 / 35390.0),
            percent(1115.0 / 35390.0), percent(1568.0 / 35390.0),
            percent(1479.0 / 35390.0));
  table.add("measured counts", counts.national, counts.continental,
            counts.worldwide, counts.unknown);
  table.add("measured shares", percent(double(counts.national) / n),
            percent(double(counts.continental) / n),
            percent(double(counts.worldwide) / n),
            percent(double(counts.unknown) / n));
  std::cout << table;
  std::cout << "\nGeographical dataset covers " << eco.geo.known_node_count()
            << " of " << eco.num_ases()
            << " ASes (paper: 34,190 of 35,390)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Table 2.2 — geographical tagging",
      "31,228 national / 1,115 continental / 1,568 worldwide / 1,479 unknown",
      body);
}
