// Figure 4.3 — community size vs k, main vs parallel.
//
// Paper shape: the main community covers the whole dataset at k = 2 (35,390
// ASes, 69% at k = 3), decays rapidly, and approaches the parallel sizes
// only near k = 36; most parallel communities have size close to k.
#include "harness.h"

#include <algorithm>

#include "common/table.h"
#include "io/csv.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);

  TextTable table({"k", "main size", "main share", "parallel min",
                   "parallel median", "parallel max"});
  CsvWriter csv({"k", "main_size", "parallel_sizes"});
  const double n = static_cast<double>(result.eco.num_ases());
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    std::vector<std::size_t> parallel_sizes;
    std::size_t main_size = 0;
    for (int idx : result.tree.level(k)) {
      const TreeNode& node = result.tree.nodes()[idx];
      if (node.is_main) {
        main_size = node.size;
      } else {
        parallel_sizes.push_back(node.size);
      }
    }
    std::sort(parallel_sizes.begin(), parallel_sizes.end());
    auto cell = [&](std::size_t i) {
      return parallel_sizes.empty() ? std::string("-")
                                    : std::to_string(parallel_sizes[i]);
    };
    table.add(k, main_size, percent(double(main_size) / n), cell(0),
              cell(parallel_sizes.size() / 2),
              cell(parallel_sizes.empty() ? 0 : parallel_sizes.size() - 1));
    std::string sizes;
    for (std::size_t s : parallel_sizes) {
      if (!sizes.empty()) sizes += ';';
      sizes += std::to_string(s);
    }
    csv.add_row({std::to_string(k), std::to_string(main_size), sizes});
  }
  std::cout << table;
  csv.save("fig_4_3.csv");

  const auto& stats = result.level_stats;
  std::cout << "\nShape checks (paper: 100% at k=2, 69% at k=3, rapid decay):\n";
  std::cout << "  main covers " << percent(double(stats[0].main_size) / n)
            << " at k=2, " << percent(double(stats[1].main_size) / n)
            << " at k=3\n";
  std::cout << "  main size at top k: " << stats.back().main_size
            << " (close to k=" << stats.back().k << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Figure 4.3 — community size vs k",
      "main: 35,390 at k=2 (69% of ASes at k=3) with rapid decay; parallel "
      "sizes stay close to k",
      body);
}
