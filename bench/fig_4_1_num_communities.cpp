// Figure 4.1 — number of k-clique communities vs k.
//
// Paper shape: 627 communities in total; hundreds at k = 3..5, a fast decay,
// a handful for k >= 15, and unique communities at k = 2, 21, 22, 25, 36.
#include "harness.h"

#include "common/table.h"
#include "io/csv.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);

  TextTable table({"k", "communities"});
  CsvWriter csv({"k", "communities"});
  for (const auto& stats : result.level_stats) {
    table.add(stats.k, stats.community_count);
    csv.add_row({std::to_string(stats.k),
                 std::to_string(stats.community_count)});
  }
  std::cout << table;
  csv.save("fig_4_1.csv");
  std::cout << "\nSeries written to fig_4_1.csv\n";

  std::cout << "\nTotal communities: " << result.cpm.total_communities()
            << " (paper: 627)\n";
  std::cout << "Unique-community k values:";
  for (std::size_t k : result.cpm.unique_community_ks()) std::cout << " " << k;
  std::cout << " (paper: 2 21 22 25 36)\n";

  // Shape checks.
  const auto& stats = result.level_stats;
  const std::size_t low_k_count = stats.size() > 1 ? stats[1].community_count : 0;
  const std::size_t high_k_count = stats.back().community_count;
  std::cout << "Shape check: count at k=3 (" << low_k_count
            << ") >> count at k=" << stats.back().k << " (" << high_k_count
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Figure 4.1 — number of k-clique communities vs k",
      "627 total; many communities at low k, few at high k; unique at "
      "k = 2, 21, 22, 25, 36",
      body);
}
