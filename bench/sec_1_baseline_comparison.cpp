// Section 1 — why k-clique communities: comparison against the partition
// baselines (k-core, k-dense) and the GCE fitness failure on Tier-1-style
// communities.
#include "harness.h"

#include <algorithm>

#include "baselines/gce.h"
#include "baselines/kcore.h"
#include "baselines/kdense.h"
#include "baselines/louvain.h"
#include "common/table.h"
#include "metrics/community_metrics.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  // Baselines are quadratic-ish; run them at test scale regardless of the
  // harness scale so the binary stays fast.
  SynthParams params = SynthParams::test_scale();
  params.seed = config.pipeline.synth.seed;
  const AsEcosystem eco = generate_ecosystem(params);
  const Graph& g = eco.topology.graph;
  std::cout << "[run] baseline comparison at test scale: " << g.num_nodes()
            << " ASes, " << g.num_edges() << " edges\n\n";

  const CpmResult cpm = run_cpm(g);
  const KCoreDecomposition kcore = kcore_decomposition(g);

  TextTable table({"method", "structure", "communities", "overlap"});
  table.add("k-clique communities (CPM)", "cover", cpm.total_communities(),
            "yes");
  table.add("k-core shells", "partition per k",
            static_cast<std::size_t>(kcore.max_core) + 1, "no");
  std::size_t kdense_total = 0;
  for (std::uint32_t k = 3; k <= kcore.max_core + 2; ++k) {
    kdense_total += kdense_components(g, k).size();
  }
  table.add("k-dense components (all k)", "nested partition", kdense_total,
            "no");
  GceOptions gce_options;
  gce_options.max_seeds = 1000;
  gce_options.max_community_size = 40;
  const auto gce_communities = greedy_clique_expansion(g, gce_options);
  table.add("GCE (1000 largest seeds)", "cover", gce_communities.size(),
            "yes");
  const LouvainResult louvain = louvain_communities(g);
  table.add("Louvain (Q = " + fixed(louvain.modularity, 3) + ")",
            "partition", louvain.community_count, "no");
  std::cout << table << "\n";

  // Overlap demonstration: count ASes in >= 2 CPM communities at one k.
  std::size_t overlapping_nodes = 0;
  {
    const std::size_t k = 4;
    std::vector<int> membership(g.num_nodes(), 0);
    if (cpm.has_k(k)) {
      for (const Community& c : cpm.at(k).communities) {
        for (NodeId v : c.nodes) ++membership[v];
      }
      for (int m : membership) overlapping_nodes += m >= 2 ? 1 : 0;
    }
    std::cout << "ASes in >= 2 communities at k=4: " << overlapping_nodes
              << " (CPM covers overlap; partitions cannot)\n\n";
  }

  // The Tier-1 fitness argument.
  NodeSet tier1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (eco.roles[v] == AsRole::kTier1) tier1.push_back(v);
  }
  TextTable tier_table({"metric", "value"});
  tier_table.add("Tier-1 mesh size", tier1.size());
  tier_table.add("Tier-1 link density", fixed(link_density(g, tier1), 3));
  tier_table.add("Tier-1 average ODF", fixed(average_odf(g, tier1), 3));
  tier_table.add("GCE fitness F(Tier-1)", fixed(gce_fitness(g, tier1, 1.0), 4));
  std::size_t cpm_k = 0;
  for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
    for (const Community& c : cpm.at(k).communities) {
      if (std::includes(c.nodes.begin(), c.nodes.end(), tier1.begin(),
                        tier1.end())) {
        cpm_k = k;
      }
    }
  }
  tier_table.add("largest k with Tier-1 inside a CPM community", cpm_k);
  std::size_t gce_hits = 0;
  for (const auto& c : gce_communities) {
    if (std::includes(c.begin(), c.end(), tier1.begin(), tier1.end())) {
      ++gce_hits;
    }
  }
  tier_table.add("GCE communities containing the Tier-1 mesh", gce_hits);
  // Louvain scatters the Tier-1 mesh across the partitions of their
  // customer cones (each carrier groups with its own customers).
  std::vector<std::uint32_t> tier1_partitions;
  for (NodeId v : tier1) tier1_partitions.push_back(louvain.community_of[v]);
  std::sort(tier1_partitions.begin(), tier1_partitions.end());
  tier1_partitions.erase(
      std::unique(tier1_partitions.begin(), tier1_partitions.end()),
      tier1_partitions.end());
  tier_table.add("Louvain partitions spanned by the Tier-1 mesh",
                 tier1_partitions.size());
  std::cout << tier_table;
  std::cout << "\nPaper claim reproduced: the full-mesh Tier-1 community has "
               "a near-zero GCE fitness (its links point to customers), so "
               "internal-vs-external methods miss it, while CPM captures it "
               "up to k = "
            << cpm_k << ".\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Section 1 — baseline comparison",
      "k-clique covers vs k-core/k-dense partitions; GCE's fitness rejects "
      "Tier-1-style communities",
      body);
}
