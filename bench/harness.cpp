#include "harness.h"

#include "common/error.h"
#include "common/table.h"
#include "common/timer.h"

namespace kcc::bench {

HarnessConfig parse_harness_args(int argc, char** argv) {
  const CliArgs args(argc, argv, {"scale", "seed", "threads"});
  HarnessConfig config;
  config.scale = args.get_string("scale", "bench");
  if (config.scale == "test") {
    config.pipeline.synth = SynthParams::test_scale();
  } else if (config.scale == "bench") {
    config.pipeline.synth = SynthParams::bench_scale();
  } else if (config.scale == "paper") {
    config.pipeline.synth = SynthParams::paper_scale();
  } else {
    throw Error("unknown --scale '" + config.scale + "' (test|bench|paper)");
  }
  config.pipeline.synth.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.pipeline.cpm.threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  return config;
}

PipelineResult run_harness(const HarnessConfig& config) {
  Timer timer;
  PipelineResult result = run_pipeline(config.pipeline);
  std::cout << "[run] scale=" << config.scale
            << " seed=" << config.pipeline.synth.seed << " ases="
            << result.eco.num_ases() << " edges="
            << result.eco.topology.graph.num_edges() << " cliques="
            << result.cpm.cliques.size() << " max_k=" << result.cpm.max_k
            << " elapsed=" << fixed(timer.seconds(), 2) << "s\n\n";
  return result;
}

void banner(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "=== " << experiment << " ===\n";
  std::cout << "Paper: " << paper_claim << "\n\n";
}

int guarded_main(int argc, char** argv, const std::string& experiment,
                 const std::string& paper_claim,
                 int (*body)(const HarnessConfig&)) {
  try {
    banner(experiment, paper_claim);
    return body(parse_harness_args(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace kcc::bench
