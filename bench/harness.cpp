#include "harness.h"

#include <filesystem>

#include "common/error.h"
#include "common/table.h"
#include "common/timer.h"

namespace kcc::bench {
namespace {

std::string default_metrics_path(const char* argv0) {
  if (argv0 == nullptr || *argv0 == '\0') return "kcc_bench.metrics.json";
  return std::filesystem::path(argv0).filename().string() + ".metrics.json";
}

}  // namespace

HarnessConfig parse_harness_args(int argc, char** argv) {
  std::vector<std::string> known{"scale", "seed", "log-level", "trace-out",
                                 "metrics-out", "report-out"};
  for (const std::string& flag : cpm::engine_cli_flags()) {
    known.push_back(flag);
  }
  const CliArgs args(argc, argv, known);
  HarnessConfig config;
  config.scale = args.get_string("scale", "bench");
  if (config.scale == "test") {
    config.pipeline.synth = SynthParams::test_scale();
  } else if (config.scale == "bench") {
    config.pipeline.synth = SynthParams::bench_scale();
  } else if (config.scale == "paper") {
    config.pipeline.synth = SynthParams::paper_scale();
  } else {
    throw Error("unknown --scale '" + config.scale + "' (test|bench|paper)");
  }
  config.pipeline.synth.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  config.pipeline.cpm = cpm::options_from_cli(args, config.pipeline.cpm);
  config.obs.log_level = args.get_string("log-level", "");
  config.obs.trace_out = args.get_string("trace-out", "");
  // The metrics sidecar is on by default (--metrics-out= disables it); every
  // experiment record is accompanied by its counters.
  config.obs.metrics_out = args.has("metrics-out")
                               ? args.get_string("metrics-out", "")
                               : default_metrics_path(argc > 0 ? argv[0]
                                                               : nullptr);
  config.obs.report_out = args.get_string("report-out", "");
  config.obs.tool =
      argc > 0 && argv[0] != nullptr && *argv[0] != '\0'
          ? std::filesystem::path(argv[0]).filename().string()
          : "";
  return config;
}

PipelineResult run_harness(const HarnessConfig& config) {
  Timer timer;
  PipelineResult result = run_pipeline(config.pipeline);
  std::cout << "[run] scale=" << config.scale
            << " engine=" << config.pipeline.cpm.engine
            << " seed=" << config.pipeline.synth.seed << " ases="
            << result.eco.num_ases() << " edges="
            << result.eco.topology.graph.num_edges() << " cliques="
            << result.cpm.cliques.size() << " max_k=" << result.cpm.max_k
            << " elapsed=" << fixed(timer.seconds(), 2) << "s\n\n";
  return result;
}

void banner(const std::string& experiment, const std::string& paper_claim) {
  std::cout << "=== " << experiment << " ===\n";
  std::cout << "Paper: " << paper_claim << "\n\n";
}

int guarded_main(int argc, char** argv, const std::string& experiment,
                 const std::string& paper_claim,
                 int (*body)(const HarnessConfig&)) {
  try {
    banner(experiment, paper_claim);
    const HarnessConfig config = parse_harness_args(argc, argv);
    obs::configure(config.obs);
    Timer timer;
    const int rc = body(config);
    KCC_LOG(kInfo) << experiment << ": body finished in " << timer.lap()
                   << "s";
    obs::finish(config.obs);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace kcc::bench
