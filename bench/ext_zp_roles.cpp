// Extension — z-P functional cartography over k-clique communities, the
// analysis style of the paper's related work [21] (which the paper avoids
// because the role taxonomy is threshold-heuristic; this harness also shows
// that sensitivity).
#include "harness.h"

#include "common/table.h"
#include "metrics/zp_roles.h"
#include "synth/as_topology.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  SynthParams params = SynthParams::test_scale();
  params.seed = config.pipeline.synth.seed;
  const AsEcosystem eco = generate_ecosystem(params);
  const Graph& g = eco.topology.graph;
  const CpmResult cpm = run_cpm(g);
  std::cout << "[run] z-P analysis at test scale: " << g.num_nodes()
            << " ASes, communities at k in [" << cpm.min_k << ", "
            << cpm.max_k << "]\n\n";

  for (std::size_t k : {4u, 6u}) {
    if (!cpm.has_k(k)) continue;
    const auto scores = zp_scores(g, cpm.at(k));
    const auto histogram = zp_role_histogram(scores);
    TextTable table({"role (k=" + std::to_string(k) + ")", "memberships"});
    const ZpRole roles[] = {
        ZpRole::kUltraPeripheral, ZpRole::kPeripheral, ZpRole::kConnector,
        ZpRole::kKinless,         ZpRole::kProvincialHub,
        ZpRole::kConnectorHub,    ZpRole::kKinlessHub};
    for (std::size_t i = 0; i < 7; ++i) {
      table.add(zp_role_name(roles[i]), histogram[i]);
    }
    std::cout << table << "\n";
  }

  // Threshold sensitivity: how many memberships change role when the z
  // threshold moves from 2.5 to 2.0 (the paper's reason for avoiding z-P).
  const auto scores = zp_scores(g, cpm.at(4));
  std::size_t flips = 0;
  for (const auto& s : scores) {
    const bool hub_at_25 = s.z >= 2.5;
    const bool hub_at_20 = s.z >= 2.0;
    if (hub_at_25 != hub_at_20) ++flips;
  }
  std::cout << "Role flips when the hub threshold moves 2.5 -> 2.0: "
            << flips << " of " << scores.size()
            << " memberships — the heuristic-threshold fragility the paper "
               "cites as its reason to avoid z-P.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — z-P role analysis",
      "Guimerà-Amaral roles over k-clique communities (the method of [21]) "
      "and their threshold sensitivity",
      body);
}
