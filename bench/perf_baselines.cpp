// Microbenchmarks: the partition baselines (k-core, k-dense, GCE) against
// the CPM engine on the same ecosystem graph — the cost side of the
// cover-vs-partition trade-off discussed in paper Sec. 1.
#include <benchmark/benchmark.h>

#include "baselines/gce.h"
#include "baselines/kcore.h"
#include "baselines/kdense.h"
#include "baselines/louvain.h"
#include "cpm/cpm.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    return generate_ecosystem(SynthParams::test_scale()).topology.graph;
  }();
  return g;
}

void BM_KCoreDecomposition(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto d = kcore_decomposition(g);
    benchmark::DoNotOptimize(d.max_core);
  }
}
BENCHMARK(BM_KCoreDecomposition)->Unit(benchmark::kMillisecond);

void BM_KDenseSubgraph(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  const auto k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    auto sub = kdense_subgraph(g, k);
    benchmark::DoNotOptimize(sub.nodes.data());
  }
}
BENCHMARK(BM_KDenseSubgraph)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_EdgeDenseness(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto d = edge_denseness(g);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_EdgeDenseness)->Unit(benchmark::kMillisecond);

void BM_GceSeeds(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  GceOptions options;
  options.max_seeds = static_cast<std::size_t>(state.range(0));
  options.max_community_size = 40;
  for (auto _ : state) {
    auto communities = greedy_clique_expansion(g, options);
    benchmark::DoNotOptimize(communities.data());
  }
  }
BENCHMARK(BM_GceSeeds)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_Louvain(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto result = louvain_communities(g);
    benchmark::DoNotOptimize(result.modularity);
  }
}
BENCHMARK(BM_Louvain)->Unit(benchmark::kMillisecond);

void BM_CpmFullRange(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto result = run_cpm(g);
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_CpmFullRange)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
