// Extension ablation — robustness of the community structure under node
// removal (targeted hubs vs random failures), in the spirit of the k-core
// robustness studies the paper cites ([6]).
#include "harness.h"

#include "analysis/robustness.h"
#include "common/table.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  // Run at test scale: every point recomputes the full CPM.
  SynthParams params = SynthParams::test_scale();
  params.seed = config.pipeline.synth.seed;
  const AsEcosystem eco = generate_ecosystem(params);
  const Graph& g = eco.topology.graph;
  std::cout << "[run] robustness at test scale: " << g.num_nodes()
            << " ASes, " << g.num_edges() << " edges\n\n";

  const CpmResult baseline = run_cpm(g);
  std::cout << "Baseline: max k = " << baseline.max_k << ", "
            << baseline.total_communities() << " communities\n\n";

  TextTable table({"policy", "removed", "edges left", "giant comp",
                   "max k", "communities"});
  for (RemovalPolicy policy :
       {RemovalPolicy::kTargetedByDegree, RemovalPolicy::kRandom}) {
    RobustnessOptions options;
    options.policy = policy;
    options.fractions = {0.01, 0.05, 0.10};
    options.seed = params.seed;
    for (const RobustnessPoint& point : community_robustness(g, options)) {
      table.add(policy == RemovalPolicy::kTargetedByDegree ? "targeted"
                                                           : "random",
                percent(point.removed_fraction, 0), point.edges_left,
                point.giant_component, point.max_k,
                point.total_communities);
    }
  }
  std::cout << table;
  std::cout << "\nExpected shape: targeted removal of high-degree ASes "
               "guts the crown (max k collapses) and fragments the "
               "topology long before random failures do.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — community robustness under node removal",
      "hub attacks collapse the dense crown; random failures barely move it "
      "(cf. the k-core robustness literature the paper cites)",
      body);
}
