// Section 4 — overlap-fraction study between communities of the same k.
//
// Paper: every parallel community shares at least one AS with its main
// community (6 exceptions in 627); the parallel-vs-main overlap fraction
// averages 0.704 over k (variance 0.023, per-k mean always > 0.432);
// parallel-parallel overlap is too variable to summarise (variance 0.136).
#include "harness.h"

#include "common/table.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);

  TextTable table({"k", "parallel", "mean vs main", "disjoint from main",
                   "mean parallel-parallel", "disjoint pairs"});
  for (const auto& s : result.overlaps) {
    if (s.parallel_count == 0) continue;
    table.add(s.k, s.parallel_count, fixed(s.mean_parallel_vs_main, 3),
              s.disjoint_from_main, fixed(s.mean_parallel_parallel, 3),
              s.disjoint_parallel_pairs);
  }
  std::cout << table;

  const OverlapAggregate agg = aggregate_parallel_vs_main(result.overlaps);
  std::size_t disjoint_total = 0;
  for (const auto& s : result.overlaps) disjoint_total += s.disjoint_from_main;

  std::cout << "\n";
  TextTable summary({"metric", "paper", "measured"});
  summary.add("mean over k of parallel-vs-main fraction", "0.704",
              fixed(agg.mean, 3));
  summary.add("variance over k", "0.023", fixed(agg.variance, 3));
  summary.add("per-k minimum mean", "> 0.432", fixed(agg.min, 3));
  summary.add("parallel communities disjoint from main", "6",
              std::to_string(disjoint_total));
  std::cout << summary;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Section 4 — overlap fractions",
      "parallel-vs-main overlap fraction: mean 0.704, variance 0.023, per-k "
      "mean > 0.432; 6 parallel communities disjoint from their main",
      body);
}
