// Batch-apply vs from-scratch-recompute benchmark for the incremental CPM
// engine (docs/ALGORITHMS.md "Incremental updates").
//
// Builds the synthetic AS ecosystem at --scale, bootstraps a live
// cpm::IncrementalCpm, then runs `--rounds` churn rounds. Each round draws
// one valid batch of --churn * |E| edge updates (half removes, half adds,
// the serving scenario's "a few links flapped" shape), and measures
//
// Churn model: link flaps at the AS edge. Removals are drawn uniformly
// from edges incident to at least one low-degree node (degree <= 64 on
// the current graph), and adds from absent pairs under the same
// constraint — the customer/peering churn that dominates real AS-level
// dynamics, where the transit backbone mesh is quasi-stationary. The
// scoping is part of the claim, not a dodge: uniformly deleting edges
// *inside* the synthetic dense core erodes it toward K_n minus random
// edges, a maximal-clique factory (21k -> 40k maximal cliques within a
// few 1% batches) in which the structural delta of one batch approaches
// the whole table, so no incremental scheme can beat a recompute there —
// and the from-scratch baseline blows up just as badly (0.3 s -> 17 s
// per run). --core-churn lifts the degree restriction to measure exactly
// that regime; the committed gate runs without it. Correctness is
// model-independent either way (the digest check below runs regardless).
//
//   * apply    — IncrementalCpm::apply(batch) on the live state;
//   * recompute — a from-scratch sweep Engine run on the post-batch graph
//     (what a daemon without the incremental engine would have to do);
//   * materialize — IncrementalCpm::result(), reported separately because
//     a server only pays it when it actually refreshes its snapshot.
//
// The headline number is median(recompute) / median(apply). The run cannot
// be fast-because-wrong: after the last round the materialized result is
// digest-compared against the canonicalised from-scratch sweep, and any
// divergence aborts with exit 1. With --json the run is written in the
// BENCH_*.json manifest schema; --min-speedup turns it into a gate. The
// committed bench-scale run is bench/expected/BENCH_incr.json:
//
//   perf_incr --scale=bench --json=BENCH_incr.json --min-speedup=5

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/timer.h"
#include "cpm/engine.h"
#include "cpm/incr_cpm.h"
#include "obs/report.h"
#include "synth/as_topology.h"

namespace kcc {
namespace {

/// Endpoints at or below this degree mark an edge as flap-eligible under
/// the default (peripheral) churn model; see the header comment.
constexpr std::uint32_t kFlapDegreeMax = 64;

/// Draws a valid batch against `edges`: `ops/2` removes sampled from the
/// present edges, the rest adds rejection-sampled from the absent pairs.
/// Unless `core_churn`, both sides are restricted to pairs whose smaller
/// endpoint degree (on the pre-batch graph) is <= kFlapDegreeMax.
cpm::EdgeBatch draw_batch(const std::vector<std::pair<NodeId, NodeId>>& edges,
                          std::size_t num_nodes, std::size_t ops,
                          bool core_churn, Rng& rng) {
  cpm::EdgeBatch batch;
  std::vector<std::pair<NodeId, NodeId>> sorted = edges;
  for (auto& e : sorted) {
    if (e.first > e.second) std::swap(e.first, e.second);
  }
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> degree(num_nodes, 0);
  for (const auto& e : sorted) {
    ++degree[e.first];
    ++degree[e.second];
  }
  const auto flappable = [&](NodeId u, NodeId v) {
    return core_churn || std::min(degree[u], degree[v]) <= kFlapDegreeMax;
  };
  std::vector<std::pair<NodeId, NodeId>> pool;
  pool.reserve(sorted.size());
  for (const auto& e : sorted) {
    if (flappable(e.first, e.second)) pool.push_back(e);
  }
  require(!pool.empty(), "perf_incr: no flap-eligible edges to remove");
  const std::size_t removes = std::min<std::size_t>(ops / 2, pool.size());
  batch.remove = rng.sample_without_replacement(pool, removes);
  while (batch.add.size() < ops - removes) {
    const auto u = static_cast<NodeId>(rng.next_below(num_nodes));
    const auto v = static_cast<NodeId>(rng.next_below(num_nodes));
    if (u == v || !flappable(u, v)) continue;
    const std::pair<NodeId, NodeId> e{std::min(u, v), std::max(u, v)};
    if (std::binary_search(sorted.begin(), sorted.end(), e)) continue;
    if (std::find(batch.add.begin(), batch.add.end(), e) != batch.add.end()) {
      continue;
    }
    batch.add.push_back(e);
  }
  return batch;
}

/// Mirrors a batch onto the edge vector (canonical orientation, removes
/// first), so the from-scratch baseline sees exactly the mutated graph.
void apply_to_edges(std::vector<std::pair<NodeId, NodeId>>& edges,
                    const cpm::EdgeBatch& batch) {
  auto canon = [](std::pair<NodeId, NodeId> e) {
    if (e.first > e.second) std::swap(e.first, e.second);
    return e;
  };
  std::vector<std::pair<NodeId, NodeId>> removed;
  removed.reserve(batch.remove.size());
  for (const auto& e : batch.remove) removed.push_back(canon(e));
  std::sort(removed.begin(), removed.end());
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [&](const std::pair<NodeId, NodeId>& e) {
                               return std::binary_search(removed.begin(),
                                                         removed.end(),
                                                         canon(e));
                             }),
              edges.end());
  for (const auto& e : batch.add) edges.push_back(e);
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int run(int argc, char** argv) {
  CliArgs args(argc, argv, {"scale", "rounds", "churn", "seed", "json",
                            "min-speedup", "core-churn"});
  const std::string scale = args.get_string("scale", "test");
  const auto rounds = static_cast<std::size_t>(
      args.get_int("rounds", scale == "bench" ? 7 : 3));
  const double churn = args.get_double("churn", 0.01);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string json_out = args.get_string("json", "");
  const double min_speedup = args.get_double("min-speedup", 0.0);
  const bool core_churn = args.get_bool("core-churn", false);

  require(scale == "test" || scale == "bench",
          "perf_incr: --scale must be test or bench");
  require(churn > 0.0 && churn <= 0.01,
          "perf_incr: --churn must be in (0, 0.01] — the incremental claim "
          "is scoped to <= 1% churn per batch");
  require(rounds > 0, "perf_incr: --rounds must be positive");

  SynthParams params =
      scale == "bench" ? SynthParams::bench_scale() : SynthParams::test_scale();
  const Graph g = generate_ecosystem(params).topology.graph;
  const auto batch_ops = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(g.num_edges()) * churn));
  std::fprintf(stderr,
               "perf_incr: graph %zu nodes, %zu edges (%s scale), %zu ops "
               "per batch (%.2f%% churn, %s model), %zu rounds\n",
               g.num_nodes(), g.num_edges(), scale.c_str(), batch_ops,
               100.0 * static_cast<double>(batch_ops) /
                   static_cast<double>(g.num_edges()),
               core_churn ? "uniform core-churn" : "peripheral flap", rounds);

  Timer bootstrap_timer;
  cpm::IncrementalCpm state(g);
  const double bootstrap_seconds = bootstrap_timer.seconds();

  std::vector<std::pair<NodeId, NodeId>> edges = g.edges();
  std::size_t num_nodes = g.num_nodes();
  Rng rng(seed);

  std::vector<double> apply_s, recompute_s, materialize_s;
  cpm::Options sweep_options;
  sweep_options.engine = "sweep";
  for (std::size_t round = 0; round < rounds; ++round) {
    const cpm::EdgeBatch batch =
        draw_batch(edges, num_nodes, batch_ops, core_churn, rng);
    apply_to_edges(edges, batch);

    Timer apply_timer;
    state.apply(batch);
    apply_s.push_back(apply_timer.seconds());

    const Graph current = Graph::from_edges(num_nodes, edges);
    Timer recompute_timer;
    const cpm::Result fresh = cpm::Engine(sweep_options).run(current);
    recompute_s.push_back(recompute_timer.seconds());

    Timer materialize_timer;
    const cpm::Result live = state.result();
    materialize_s.push_back(materialize_timer.seconds());
    require(live.cpm.total_communities() == fresh.cpm.total_communities(),
            "perf_incr: community count diverged at round " +
                std::to_string(round));
  }

  // Honesty check: full digest identity on the final state.
  {
    cpm::Result fresh =
        cpm::Engine(sweep_options).run(Graph::from_edges(num_nodes, edges));
    cpm::canonicalise_clique_order(fresh);
    require(cpm::canonical_text(state.result()) == cpm::canonical_text(fresh),
            "perf_incr: final digest diverged from the from-scratch sweep — "
            "refusing to report timings for a wrong result");
  }

  const double apply_med = median(apply_s);
  const double recompute_med = median(recompute_s);
  const double materialize_med = median(materialize_s);
  const double speedup = apply_med > 0.0 ? recompute_med / apply_med : 0.0;

  std::printf(
      "perf_incr: apply %.3f ms vs recompute %.3f ms per batch (medians, "
      "%zu ops/batch): %.1fx; materialize %.3f ms; bootstrap %.3f s\n",
      apply_med * 1e3, recompute_med * 1e3, batch_ops, speedup,
      materialize_med * 1e3, bootstrap_seconds);

  if (!json_out.empty()) {
    bench::Json doc;
    doc.add("bench", "perf_incr --scale=" + scale);
    doc.add("manifest", bench::manifest_json(obs::collect_manifest("perf_incr")));
    bench::Json graph;
    graph.add("scale", scale);
    graph.add("nodes", static_cast<std::uint64_t>(g.num_nodes()));
    graph.add("edges", static_cast<std::uint64_t>(g.num_edges()));
    doc.add("graph", graph);
    bench::Json churn_json;
    churn_json.add("rounds", static_cast<std::uint64_t>(rounds));
    churn_json.add("batch_ops", static_cast<std::uint64_t>(batch_ops));
    churn_json.add("churn_fraction",
                   static_cast<double>(batch_ops) /
                       static_cast<double>(g.num_edges()));
    churn_json.add("model", core_churn ? std::string("uniform_core")
                                       : std::string("peripheral_flap"));
    if (!core_churn) {
      churn_json.add("flap_degree_max",
                     static_cast<std::uint64_t>(kFlapDegreeMax));
    }
    doc.add("churn", churn_json);
    bench::Json timings;
    timings.add("bootstrap_seconds", bootstrap_seconds);
    timings.add("apply_seconds_median", apply_med);
    timings.add("recompute_seconds_median", recompute_med);
    timings.add("materialize_seconds_median", materialize_med);
    timings.add("speedup_apply_vs_recompute", speedup);
    doc.add("timings", timings);
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    require(f != nullptr, "perf_incr: cannot write '" + json_out + "'");
    const std::string text = doc.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "perf_incr: wrote %s\n", json_out.c_str());
  }

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "perf_incr: FAIL: %.1fx apply-vs-recompute is below the "
                 "--min-speedup=%.1f gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kcc

int main(int argc, char** argv) {
  try {
    return kcc::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_incr: %s\n", e.what());
    return 1;
  }
}
