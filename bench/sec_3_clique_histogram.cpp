// Section 3 — maximal-clique census.
//
// Paper: the April-2010 topology has 2,730,916 maximal cliques, 88% of which
// have sizes in [18:28]; this distribution is what made CPM expensive
// (93 hours on 48 cores with LP-CPM).
#include "harness.h"

#include "clique/clique_stats.h"
#include "common/table.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);
  const CliqueStats stats = compute_clique_stats(result.cpm.cliques);

  std::cout << "Maximal cliques: " << stats.count
            << " (paper: 2,730,916)\n";
  std::cout << "Size range: [" << stats.min_size << ", " << stats.max_size
            << "], mean " << fixed(stats.mean_size, 2) << "\n\n";

  TextTable table({"size", "count", "share"});
  for (std::size_t s = 2; s < stats.histogram.size(); ++s) {
    if (stats.histogram[s] == 0) continue;
    table.add(s, stats.histogram[s],
              percent(double(stats.histogram[s]) / double(stats.count)));
  }
  std::cout << table;

  // The paper's bulk band, rescaled to our apex: [18:28] out of max 36 maps
  // to [apex/2 : apex*0.78].
  const std::size_t lo = stats.max_size / 2;
  const std::size_t hi = (stats.max_size * 78) / 100;
  std::cout << "\nFraction with size in [18:28] (paper): 88%\n";
  std::cout << "Measured fraction in [" << lo << ":" << hi
            << "] (rescaled band): "
            << percent(stats.fraction_in_range(lo, hi)) << "\n";
  std::cout << "Measured fraction in [3:" << stats.max_size << "]: "
            << percent(stats.fraction_in_range(3, stats.max_size)) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Section 3 — maximal-clique size histogram",
      "2,730,916 maximal cliques; 88% with k in [18:28]", body);
}
