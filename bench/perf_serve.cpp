// QPS / latency benchmark for the `kcc serve` daemon (docs/SERVING.md).
//
// Spins up an in-process serve::Server over a snapshot of the synthetic
// AS ecosystem, then measures two phases against it through real unix
// sockets:
//
//   * throughput — N client threads, each pipelining `--depth` requests per
//     batch over the paper-motivated query mix (membership 40%, community
//     25%, ancestry 15%, LCA 10%, overlap 10%). Pipelining amortizes the
//     syscall round trip, so a single core is protocol-bound, not RTT-bound.
//   * latency — one client, strict request/response round trips, reporting
//     p50/p90/p99/max microseconds.
//
// Every response in both phases is status-checked, and a sample of answers
// is verified against the in-memory cpm::Result oracle, so the numbers can
// not be "fast because wrong". With --json the run is written in the
// BENCH_*.json manifest schema (docs/FORMATS.md); --min-qps turns the run
// into a gate. The committed bench-scale run is
// bench/expected/BENCH_serve.json.
//
//   perf_serve --scale=bench --json=BENCH_serve.json --min-qps=10000

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "cpm/engine.h"
#include "io/snapshot.h"
#include "obs/report.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "synth/as_topology.h"

namespace kcc {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct MixCounts {
  std::uint64_t membership = 0;
  std::uint64_t community = 0;
  std::uint64_t ancestry = 0;
  std::uint64_t lca = 0;
  std::uint64_t overlap = 0;
};

/// Draws one request from the weighted mix, with arguments valid for the
/// snapshot (so every response is kOk and the mix measures the fast path).
std::vector<std::uint8_t> draw_request(Rng& rng,
                                       const snapshot::SnapshotView& view,
                                       MixCounts& counts) {
  const auto num_nodes = static_cast<std::uint32_t>(view.num_nodes());
  const auto min_k = static_cast<std::uint32_t>(view.min_k());
  const auto max_k = static_cast<std::uint32_t>(view.max_k());
  auto random_community = [&](std::uint32_t& k, std::uint32_t& id) {
    k = min_k + static_cast<std::uint32_t>(
                    rng.next_below(max_k - min_k + 1));
    id = static_cast<std::uint32_t>(rng.next_below(view.community_count(k)));
  };
  const std::uint64_t roll = rng.next_below(100);
  if (roll < 40) {
    ++counts.membership;
    return serve::encode_membership(
        static_cast<std::uint32_t>(rng.next_below(num_nodes)), 0);
  }
  if (roll < 65) {
    ++counts.community;
    std::uint32_t k = 0, id = 0;
    random_community(k, id);
    return serve::encode_community(k, id);
  }
  if (roll < 80) {
    ++counts.ancestry;
    std::uint32_t k = 0, id = 0;
    random_community(k, id);
    return serve::encode_ancestry(k, id);
  }
  if (roll < 90) {
    ++counts.lca;
    std::uint32_t k1 = 0, id1 = 0, k2 = 0, id2 = 0;
    random_community(k1, id1);
    random_community(k2, id2);
    return serve::encode_lca(k1, id1, k2, id2);
  }
  ++counts.overlap;
  return serve::encode_overlap(
      static_cast<std::uint32_t>(rng.next_below(num_nodes)),
      static_cast<std::uint32_t>(rng.next_below(num_nodes)));
}

/// One pipelining worker: `requests` queries in batches of `depth`.
void throughput_worker(const std::string& socket_path,
                       const snapshot::SnapshotView& view, std::uint64_t seed,
                       std::uint64_t requests, std::uint64_t depth,
                       MixCounts& counts, std::atomic<std::uint64_t>& failed) {
  serve::Client client(socket_path);
  Rng rng(seed);
  std::uint64_t sent = 0;
  while (sent < requests) {
    const std::uint64_t batch = std::min(depth, requests - sent);
    for (std::uint64_t i = 0; i < batch; ++i) {
      client.send_request(draw_request(rng, view, counts));
    }
    for (std::uint64_t i = 0; i < batch; ++i) {
      const auto payload = client.read_response();
      if (payload[0] != static_cast<std::uint8_t>(serve::Status::kOk)) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sent += batch;
  }
}

/// Spot-check: the served answers must match the in-memory result. Keeps
/// the benchmark honest without turning it into the (separate) test suite.
void verify_sample(serve::Client& client, const cpm::Result& result,
                   std::uint32_t num_nodes) {
  Rng rng(999);
  for (int i = 0; i < 200; ++i) {
    const auto node =
        static_cast<std::uint32_t>(rng.next_below(num_nodes + 1));
    std::vector<serve::Membership> expected;
    for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
      for (const Community& c : result.cpm.at(k).communities) {
        if (std::binary_search(c.nodes.begin(), c.nodes.end(), node)) {
          expected.push_back({static_cast<std::uint32_t>(k), c.id});
        }
      }
    }
    require(client.membership(node) == expected,
            "perf_serve: served membership diverges from the in-memory "
            "oracle at node " + std::to_string(node));
  }
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    const Community& c = result.cpm.at(k).communities[0];
    require(client.community(k, c.id) == c.nodes,
            "perf_serve: served community diverges at k=" +
                std::to_string(k));
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

int run(int argc, char** argv) {
  CliArgs args(argc, argv,
               {"scale", "clients", "depth", "requests", "latency-samples",
                "json", "min-qps", "seed"});
  const std::string scale = args.get_string("scale", "test");
  const auto clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const auto depth = static_cast<std::uint64_t>(args.get_int("depth", 64));
  const auto requests = static_cast<std::uint64_t>(
      args.get_int("requests", scale == "bench" ? 200000 : 20000));
  const auto latency_samples = static_cast<std::uint64_t>(
      args.get_int("latency-samples", scale == "bench" ? 20000 : 2000));
  const std::string json_out = args.get_string("json", "");
  const double min_qps = args.get_double("min-qps", 0.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  require(scale == "test" || scale == "bench",
          "perf_serve: --scale must be test or bench");
  require(clients > 0 && depth > 0 && requests > 0,
          "perf_serve: --clients/--depth/--requests must be positive");

  // Build the corpus: synthetic AS ecosystem -> sweep engine -> snapshot.
  SynthParams params =
      scale == "bench" ? SynthParams::bench_scale() : SynthParams::test_scale();
  const Graph& g = generate_ecosystem(params).topology.graph;
  std::fprintf(stderr, "perf_serve: graph %zu nodes, %zu edges (%s scale)\n",
               g.num_nodes(), g.num_edges(), scale.c_str());
  const cpm::Result result = cpm::Engine(cpm::Options{}).run(g);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "kcc_perf_serve").string();
  std::filesystem::create_directories(dir);
  const std::string snap_path = dir + "/ecosystem.snap";
  const std::string socket_path = dir + "/perf.sock";
  snapshot::write_snapshot_file(snap_path, result);
  const auto snapshot_bytes = std::filesystem::file_size(snap_path);

  serve::ServerOptions options;
  options.socket_path = socket_path;
  serve::Server server(snap_path, std::move(options));
  server.start();
  const snapshot::SnapshotView& view = server.view();
  std::fprintf(stderr,
               "perf_serve: serving %zu communities (k %zu..%zu), "
               "snapshot %llu bytes\n",
               view.num_communities(), view.min_k(), view.max_k(),
               static_cast<unsigned long long>(snapshot_bytes));

  // Phase 0: correctness spot-check against the in-memory result.
  {
    serve::Client client(socket_path);
    verify_sample(client, result, static_cast<std::uint32_t>(g.num_nodes()));
  }

  // Phase 1: pipelined throughput.
  std::vector<std::thread> workers;
  std::vector<MixCounts> counts(clients);
  std::atomic<std::uint64_t> failed{0};
  const std::uint64_t per_client = requests / clients;
  const double t0 = now_seconds();
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      throughput_worker(socket_path, view, seed + c, per_client, depth,
                        counts[c], failed);
    });
  }
  for (std::thread& w : workers) w.join();
  const double elapsed = now_seconds() - t0;
  const std::uint64_t total = per_client * clients;
  const double qps = static_cast<double>(total) / elapsed;
  require(failed.load() == 0,
          "perf_serve: " + std::to_string(failed.load()) +
              " requests answered non-kOk");

  MixCounts mix;
  for (const MixCounts& c : counts) {
    mix.membership += c.membership;
    mix.community += c.community;
    mix.ancestry += c.ancestry;
    mix.lca += c.lca;
    mix.overlap += c.overlap;
  }

  // Phase 2: unpipelined round-trip latency.
  std::vector<double> lat_us;
  lat_us.reserve(latency_samples);
  {
    serve::Client client(socket_path);
    Rng rng(seed + 7777);
    MixCounts ignored;
    for (std::uint64_t i = 0; i < latency_samples; ++i) {
      const auto request = draw_request(rng, view, ignored);
      const double start = now_seconds();
      client.send_request(request);
      const auto payload = client.read_response();
      lat_us.push_back((now_seconds() - start) * 1e6);
      require(payload[0] == static_cast<std::uint8_t>(serve::Status::kOk),
              "perf_serve: latency-phase request failed");
    }
  }
  std::sort(lat_us.begin(), lat_us.end());
  const double p50 = percentile(lat_us, 0.50);
  const double p90 = percentile(lat_us, 0.90);
  const double p99 = percentile(lat_us, 0.99);

  server.shutdown();

  std::printf(
      "perf_serve: %llu requests, %zu clients x depth %llu: %.0f QPS "
      "(%.2fs)\n",
      static_cast<unsigned long long>(total), clients,
      static_cast<unsigned long long>(depth), qps, elapsed);
  std::printf(
      "perf_serve: round-trip latency p50 %.1f us, p90 %.1f us, p99 %.1f "
      "us, max %.1f us (%zu samples)\n",
      p50, p90, p99, lat_us.empty() ? 0.0 : lat_us.back(), lat_us.size());

  if (!json_out.empty()) {
    bench::Json doc;
    doc.add("bench", "perf_serve --scale=" + scale);
    doc.add("manifest", bench::manifest_json(obs::collect_manifest("perf_serve")));
    bench::Json graph;
    graph.add("scale", scale);
    graph.add("nodes", static_cast<std::uint64_t>(g.num_nodes()));
    graph.add("edges", static_cast<std::uint64_t>(g.num_edges()));
    graph.add("communities",
              static_cast<std::uint64_t>(view.num_communities()));
    graph.add("min_k", static_cast<std::uint64_t>(view.min_k()));
    graph.add("max_k", static_cast<std::uint64_t>(view.max_k()));
    graph.add("snapshot_bytes", static_cast<std::uint64_t>(snapshot_bytes));
    doc.add("graph", graph);
    bench::Json mix_json;
    mix_json.add("membership", mix.membership);
    mix_json.add("community", mix.community);
    mix_json.add("ancestry", mix.ancestry);
    mix_json.add("lca", mix.lca);
    mix_json.add("overlap", mix.overlap);
    bench::Json throughput;
    throughput.add("requests", total);
    throughput.add("clients", static_cast<std::uint64_t>(clients));
    throughput.add("pipeline_depth", depth);
    throughput.add("seconds", elapsed);
    throughput.add("qps", qps);
    throughput.add("mix", mix_json);
    doc.add("throughput", throughput);
    bench::Json latency;
    latency.add("samples", static_cast<std::uint64_t>(lat_us.size()));
    latency.add("p50_us", p50);
    latency.add("p90_us", p90);
    latency.add("p99_us", p99);
    latency.add("max_us", lat_us.empty() ? 0.0 : lat_us.back());
    doc.add("latency", latency);
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    require(f != nullptr, "perf_serve: cannot write '" + json_out + "'");
    const std::string text = doc.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "perf_serve: wrote %s\n", json_out.c_str());
  }

  if (min_qps > 0.0 && qps < min_qps) {
    std::fprintf(stderr,
                 "perf_serve: FAIL: %.0f QPS is below the --min-qps=%.0f "
                 "gate\n",
                 qps, min_qps);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace kcc

int main(int argc, char** argv) {
  try {
    return kcc::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_serve: %s\n", e.what());
    return 1;
  }
}
