// Extension — CFinder-style cover statistics per k: coverage, membership
// numbers, community degrees, overlap sizes. Complements the paper's
// overlap-fraction study with the standard CPM cover characterisation.
#include "harness.h"

#include "common/table.h"
#include "metrics/cover_stats.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);
  const std::size_t n = result.eco.num_ases();

  TextTable table({"k", "coverage", "mean membership", "max membership",
                   "mean comm. degree", "overlapping pairs"});
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    const CoverStats stats = compute_cover_stats(result.cpm.at(k), n);
    table.add(k, percent(double(stats.covered_nodes) / double(n)),
              fixed(stats.mean_membership, 3), stats.max_membership,
              fixed(stats.mean_community_degree, 2),
              stats.overlapping_pairs);
  }
  std::cout << table;

  // Highlight the k with the richest overlap structure.
  std::size_t best_k = result.cpm.min_k;
  std::size_t best_pairs = 0;
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    const CoverStats stats = compute_cover_stats(result.cpm.at(k), n);
    if (stats.overlapping_pairs > best_pairs) {
      best_pairs = stats.overlapping_pairs;
      best_k = k;
    }
  }
  std::cout << "\nRichest overlap structure at k = " << best_k << " ("
            << best_pairs << " overlapping community pairs)\n";
  std::cout << "Shape: coverage decays with k (Fig. 4.3's member-union "
               "view); overlap is concentrated at low-to-mid k.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — cover statistics per k",
      "membership numbers, community degrees, and overlap sizes (the "
      "standard CPM cover characterisation of Palla et al.)",
      body);
}
