// Figure 4.2 — the k-clique community tree: main chain vs parallel
// branches, with crown/trunk/root banding. Also emits the tree as DOT.
#include "harness.h"

#include <fstream>

#include "common/table.h"
#include "io/dot_export.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);
  const CommunityTree& tree = result.tree;

  std::cout << "Tree: " << tree.nodes().size() << " communities, "
            << tree.main_count() << " main (paper: 34 + apex), "
            << tree.parallel_count() << " parallel\n";
  std::cout << "Derived bands: root k <= " << result.bands.root_max_k
            << ", trunk k <= " << result.bands.trunk_max_k
            << ", crown above (paper: 14 / 28)\n\n";

  TextTable table({"k", "band", "main", "parallel", "longest branch"});
  for (std::size_t k = tree.min_k(); k <= tree.max_k(); ++k) {
    std::size_t longest = 0;
    for (int idx : tree.level(k)) {
      if (!tree.nodes()[idx].is_main && tree.nodes()[idx].children.empty()) {
        longest = std::max(longest, tree.branch_length_above(idx));
      }
    }
    const auto& stats = result.level_stats[k - tree.min_k()];
    table.add(k, band_name(result.bands.band_of(k)), 1, stats.parallel_count,
              longest);
  }
  std::cout << table;

  const std::string dot_path = "fig_4_2_tree.dot";
  write_tree_dot_file(dot_path, tree, 6);
  std::cout << "\nDOT written to " << dot_path
            << " (render: dot -Tpng " << dot_path << " -o tree.png)\n";

  // Shape check: parallel branches exist (paper shows nested parallel
  // chains in several k ranges).
  std::size_t branches_len2 = 0;
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    if (!tree.nodes()[i].is_main && tree.nodes()[i].children.empty() &&
        tree.branch_length_above(static_cast<int>(i)) >= 2) {
      ++branches_len2;
    }
  }
  std::cout << "Parallel branches of length >= 2: " << branches_len2 << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Figure 4.2 — k-clique community tree",
      "one main community per k (filled nodes) plus parallel branches; "
      "root/trunk/crown bands",
      body);
}
