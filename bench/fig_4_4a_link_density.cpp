// Figure 4.4(a) — link density vs k, main vs parallel communities.
//
// Paper shape: main communities keep a low link density until k ~ 30 (long
// k-clique chains, not meshes); near the apex (k in [31:36]) and for most
// parallel communities the density approaches 1; small low-k parallel
// communities are highly variable.
#include "harness.h"

#include <algorithm>

#include "common/table.h"
#include "io/csv.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);

  TextTable table({"k", "main density", "parallel min", "parallel mean",
                   "parallel max"});
  CsvWriter csv({"k", "main", "parallel"});
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    double main_density = 0.0;
    std::vector<double> parallel;
    for (int idx : result.tree.level(k)) {
      const TreeNode& node = result.tree.nodes()[idx];
      const double d = result.metrics_of(k, node.community_id).density;
      if (node.is_main) {
        main_density = d;
      } else {
        parallel.push_back(d);
      }
    }
    std::string pmin = "-", pmean = "-", pmax = "-";
    if (!parallel.empty()) {
      double sum = 0.0;
      for (double d : parallel) sum += d;
      pmin = fixed(*std::min_element(parallel.begin(), parallel.end()), 3);
      pmean = fixed(sum / double(parallel.size()), 3);
      pmax = fixed(*std::max_element(parallel.begin(), parallel.end()), 3);
    }
    table.add(k, fixed(main_density, 4), pmin, pmean, pmax);
    std::string series;
    for (double d : parallel) {
      if (!series.empty()) series += ';';
      series += fixed(d, 4);
    }
    csv.add_row({std::to_string(k),
                 fixed(main_density, 4), series});
  }
  std::cout << table;
  csv.save("fig_4_4a.csv");

  const auto main_ids = main_ids_by_k(result.tree);
  const double low = result.metrics_of(3, main_ids[3 - result.cpm.min_k]).density;
  const double high =
      result
          .metrics_of(result.cpm.max_k,
                      main_ids[result.cpm.max_k - result.cpm.min_k])
          .density;
  std::cout << "\nShape check: main density " << fixed(low, 4)
            << " at k=3 vs " << fixed(high, 3) << " at k=" << result.cpm.max_k
            << " (paper: near 0 at low k, near 1 at the apex)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Figure 4.4(a) — link density vs k",
      "main communities: low density for k in [2:30], clique-like near the "
      "apex; parallel communities dense but variable at low k",
      body);
}
