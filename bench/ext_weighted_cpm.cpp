// Extension ablation — weighted CPM (CPMw) with IXP-derived peering
// weights: the intensity threshold isolates multi-IXP-backed cores.
#include "harness.h"

#include "common/table.h"
#include "cpm/weighted_cpm.h"
#include "graph/weighted_graph.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  SynthParams params = SynthParams::test_scale();
  params.seed = config.pipeline.synth.seed;
  const AsEcosystem eco = generate_ecosystem(params);
  const Graph& g = eco.topology.graph;
  const EdgeWeights weights = weights_from_ixps(g, eco.ixps);
  std::cout << "[run] weighted CPM at test scale: " << g.num_nodes()
            << " ASes; weights in [" << weights.min_weight() << ", "
            << weights.max_weight() << "]\n\n";

  for (std::size_t k : {3u, 4u}) {
    TextTable table({"k", "intensity threshold", "surviving cliques",
                     "communities", "largest"});
    for (const auto& point :
         intensity_sweep(g, weights, k, {0.0, 1.1, 1.5, 2.0})) {
      table.add(k, fixed(point.threshold, 1), point.surviving_cliques,
                point.community_count, point.largest_community);
    }
    std::cout << table << "\n";
  }
  std::cout << "Shape: thresholds > 1 prune k-cliques without IXP-backed "
               "links; the surviving communities are the dense IXP cores "
               "(crown/root), while hierarchy-only cliques vanish.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — weighted clique percolation (CPMw)",
      "intensity filtering over peering-strength weights isolates "
      "IXP-backed community cores",
      body);
}
