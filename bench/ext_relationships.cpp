// Extension — business-relationship composition of communities: the crown
// is settlement-free peering fabric, the low-k main community mixes in the
// customer-provider hierarchy. Quantifies the economic reading the paper
// gives its tree bands.
#include "harness.h"

#include "common/table.h"
#include "data/relationships.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  SynthParams params = SynthParams::test_scale();
  params.seed = config.pipeline.synth.seed;
  const AsEcosystem eco = generate_ecosystem(params);
  const Graph& g = eco.topology.graph;
  const auto [cp, peering] = eco.relationships.totals();
  std::cout << "[run] " << g.num_nodes() << " ASes; " << cp
            << " customer-provider links, " << peering
            << " peering links\n\n";

  const CpmResult cpm = run_cpm(g);
  TextTable table({"k", "communities", "mean peering fraction"});
  for (const auto& row : peering_by_k(g, eco.relationships, cpm)) {
    table.add(row.k, cpm.at(row.k).count(),
              fixed(row.mean_peering_fraction, 3));
  }
  std::cout << table;

  const auto& series = peering_by_k(g, eco.relationships, cpm);
  const double low = series[1].mean_peering_fraction;   // k = 3
  const double high = series.back().mean_peering_fraction;
  std::cout << "\nShape check: peering fraction rises from "
            << fixed(low, 3) << " at k=3 to " << fixed(high, 3)
            << " at the apex — communities become pure settlement-free "
               "fabric as k grows.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — relationship composition per k",
      "high-k communities are settlement-free peering fabric; low-k "
      "communities mix in the customer-provider hierarchy",
      body);
}
