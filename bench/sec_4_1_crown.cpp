// Section 4.1 — crown communities: the apex community and the big-three
// IXPs.
//
// Paper: 42 crown communities (k in [29:36]); the 36-clique community has 38
// ASes, shares 89% with AMS-IX (its max-share-IXP, no full-share), includes
// a few non-European / non-IXP exceptions; every crown max-share-IXP is one
// of AMS-IX, DE-CIX, LINX; the nine 34-clique communities split between the
// big three and overlap each other.
#include "harness.h"

#include "common/set_ops.h"
#include "common/table.h"
#include "metrics/overlap.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);
  const AsEcosystem& eco = result.eco;

  std::size_t crown_count = 0;
  std::size_t max_share_is_big = 0;
  for (const auto& p : result.profiles) {
    if (result.bands.band_of(p.k) != Band::kCrown) continue;
    ++crown_count;
    if (p.max_share &&
        std::find(eco.big_ixps.begin(), eco.big_ixps.end(),
                  p.max_share->ixp) != eco.big_ixps.end()) {
      ++max_share_is_big;
    }
  }
  std::cout << "Crown communities: " << crown_count << " (paper: 42)\n";
  std::cout << "Crown communities whose max-share-IXP is one of the big "
               "three: "
            << max_share_is_big << " of " << crown_count
            << " (paper: all)\n\n";

  // The apex community.
  const TreeNode& apex = result.tree.nodes()[result.tree.apex()];
  const Community& apex_community =
      result.cpm.at(apex.k).communities[apex.community_id];
  std::cout << "Apex community (k=" << apex.k << "): " << apex.size
            << " ASes (paper: 38 ASes at k=36)\n";
  for (const auto& p : result.profiles) {
    if (p.k == apex.k && p.id == apex.community_id && p.max_share) {
      std::cout << "  max-share-IXP: " << eco.ixps.ixp(p.max_share->ixp).name
                << " sharing " << percent(p.max_share->fraction)
                << " (paper: AMS-IX, 89%)\n";
      std::cout << "  full-share-IXP: "
                << (p.full_share.empty() ? "none (paper: none)" : "present")
                << "\n";
    }
  }
  std::size_t off_ixp = 0, non_eu = 0;
  for (NodeId v : apex_community.nodes) {
    if (!eco.ixps.is_on_ixp(v)) ++off_ixp;
    bool eu = false;
    for (CountryId c : eco.geo.locations_of(v)) {
      if (eco.geo.country(c).continent == "EU") eu = true;
    }
    if (!eu) ++non_eu;
  }
  std::cout << "  members on no IXP: " << off_ixp << " (paper: 3)\n";
  std::cout << "  members with no European presence: " << non_eu
            << " (paper: 4)\n\n";

  // Crown case study (paper: the nine 34-clique communities): pick the
  // crown level with the most communities.
  std::size_t case_k = result.bands.trunk_max_k + 1;
  std::size_t best = 0;
  for (std::size_t k = result.bands.trunk_max_k + 1; k <= result.cpm.max_k;
       ++k) {
    if (result.cpm.at(k).count() > best) {
      best = result.cpm.at(k).count();
      case_k = k;
    }
  }
  std::cout << "Case study: the " << best << " communities at k=" << case_k
            << " (paper: nine 34-clique communities)\n";
  TextTable table({"community", "size", "max-share IXP", "share", "full"});
  for (const auto& p : result.profiles) {
    if (p.k != case_k) continue;
    std::string name = "-", share = "-";
    if (p.max_share) {
      name = eco.ixps.ixp(p.max_share->ixp).name;
      share = percent(p.max_share->fraction);
    }
    table.add("k" + std::to_string(p.k) + "id" + std::to_string(p.id), p.size,
              name, share, p.full_share.empty() ? "no" : "yes");
  }
  std::cout << table;

  // Overlap among the case-study communities (paper: they all overlap; same
  // max-share-IXP pairs overlap more).
  const auto& communities = result.cpm.at(case_k).communities;
  std::size_t overlapping_pairs = 0, pairs = 0;
  for (std::size_t a = 0; a < communities.size(); ++a) {
    for (std::size_t b = a + 1; b < communities.size(); ++b) {
      ++pairs;
      if (community_overlap(communities[a], communities[b]) > 0) {
        ++overlapping_pairs;
      }
    }
  }
  if (pairs > 0) {
    std::cout << "\nOverlapping pairs at k=" << case_k << ": "
              << overlapping_pairs << " of " << pairs << " (paper: all)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Section 4.1 — crown communities",
      "42 crown communities; apex = 38 ASes, 89% shared with AMS-IX; all "
      "crown max-share-IXPs are AMS-IX / DE-CIX / LINX",
      body);
}
