// Section 4 — IXP interpretation of the tree: on-IXP fractions per k,
// full-share-IXP communities, and the band derivation.
//
// Paper: every community with k >= 16 is > 90% on-IXP ASes; 35 communities
// are subgraphs of an IXP-induced subgraph; full-share IXPs appear only for
// k > 28 (big three) and k < 14 (small IXPs), motivating crown/trunk/root.
#include "harness.h"

#include "common/table.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);

  // Per-k on-IXP fraction (min over communities) and full-share count.
  TextTable table({"k", "min on-IXP frac", "communities", "with full-share"});
  std::size_t total_full_share = 0;
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    double min_frac = 1.0;
    std::size_t count = 0, full = 0;
    for (const auto& p : result.profiles) {
      if (p.k != k) continue;
      ++count;
      min_frac = std::min(min_frac, p.on_ixp_fraction);
      if (!p.full_share.empty()) ++full;
    }
    total_full_share += full;
    table.add(k, fixed(min_frac, 3), count, full);
  }
  std::cout << table;

  std::cout << "\nCommunities fully inside an IXP-induced subgraph: "
            << total_full_share << " (paper: 35)\n";
  std::cout << "Derived bands: root k <= " << result.bands.root_max_k
            << ", trunk k <= " << result.bands.trunk_max_k
            << ", crown above (paper: root <= 14 < trunk <= 28 < crown)\n";

  // High-k on-IXP check (paper: all k >= 16 communities > 90% on-IXP).
  const std::size_t threshold_k = result.bands.trunk_max_k / 2 + 2;
  double worst = 1.0;
  for (const auto& p : result.profiles) {
    if (p.k >= threshold_k) worst = std::min(worst, p.on_ixp_fraction);
  }
  std::cout << "Minimum on-IXP fraction over communities with k >= "
            << threshold_k << ": " << percent(worst) << " (paper: > 90%)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Section 4 — IXP interpretation",
      "k >= 16 communities are > 90% on-IXP; 35 communities inside one "
      "IXP-induced subgraph; full-share bands define crown/trunk/root",
      body);
}
