// Section 4.2 — trunk communities: dense chains with no full-share IXP.
//
// Paper: 30 trunk communities (k in [15:28]); > 90% on-IXP members but no
// full-share IXP; parallel trunk communities share > 95% of members with
// their max-share IXP (the nested MSK-IX branch: sizes 21/32/39 at
// k = 20/19/18); trunk main communities are large dense chains whose members
// average Internet degree ~500 and are often worldwide/continental.
#include "harness.h"

#include "common/table.h"
#include "data/tags.h"
#include "graph/graph_algorithms.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);
  const AsEcosystem& eco = result.eco;

  std::size_t trunk_count = 0, with_full_share = 0;
  for (const auto& p : result.profiles) {
    if (result.bands.band_of(p.k) != Band::kTrunk) continue;
    ++trunk_count;
    if (!p.full_share.empty()) ++with_full_share;
  }
  std::cout << "Trunk communities: " << trunk_count << " (paper: 30)\n";
  std::cout << "Trunk communities with a full-share IXP: " << with_full_share
            << " (paper: 0)\n\n";

  TextTable table({"community", "size", "main", "on-IXP", "max-share IXP",
                   "share", "mean degree", "worldwide+continental"});
  for (const auto& p : result.profiles) {
    if (result.bands.band_of(p.k) != Band::kTrunk) continue;
    const Community& c = result.cpm.at(p.k).communities[p.id];
    std::string name = "-", share = "-";
    if (p.max_share) {
      name = eco.ixps.ixp(p.max_share->ixp).name;
      share = percent(p.max_share->fraction);
    }
    const double wc =
        geo_tag_fraction(eco.geo, c.nodes, GeoTag::kWorldwide) +
        geo_tag_fraction(eco.geo, c.nodes, GeoTag::kContinental);
    table.add("k" + std::to_string(p.k) + "id" + std::to_string(p.id), p.size,
              p.is_main ? "yes" : "no", percent(p.on_ixp_fraction), name,
              share, fixed(mean_degree(eco.topology.graph, c.nodes), 1),
              percent(wc));
  }
  std::cout << table;

  // Paper comparisons.
  double main_degree_sum = 0.0, stub_degree = 0.0;
  std::size_t mains = 0;
  for (const auto& p : result.profiles) {
    if (result.bands.band_of(p.k) != Band::kTrunk || !p.is_main) continue;
    const Community& c = result.cpm.at(p.k).communities[p.id];
    main_degree_sum += mean_degree(eco.topology.graph, c.nodes);
    ++mains;
  }
  const DegreeStats global = degree_stats(eco.topology.graph);
  stub_degree = global.median;
  if (mains > 0) {
    std::cout << "\nMean member degree of trunk main communities: "
              << fixed(main_degree_sum / double(mains), 1)
              << " vs global median degree " << fixed(stub_degree, 1)
              << " (paper: 500.2 vs low stub degrees)\n";
  }

  // Nested-branch check (the MSK-IX analogue): look for a parallel chain of
  // >= 2 nested levels inside the trunk band whose sizes grow as k drops.
  std::size_t nested_found = 0;
  for (std::size_t i = 0; i < result.tree.nodes().size(); ++i) {
    const TreeNode& node = result.tree.nodes()[i];
    if (node.is_main || result.bands.band_of(node.k) != Band::kTrunk) continue;
    if (node.children.size() == 1 &&
        !result.tree.nodes()[node.children[0]].is_main &&
        result.tree.nodes()[node.children[0]].size <= node.size) {
      ++nested_found;
    }
  }
  std::cout << "Nested parallel trunk pairs (child community inside a larger "
               "parent): "
            << nested_found
            << " (paper: the MSK-IX branch, sizes 21/32/39 at k=20/19/18)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Section 4.2 — trunk communities",
      "30 trunk communities; > 90% on-IXP yet no full-share IXP; nested "
      "MSK-IX branch; high member degree, worldwide/continental ASes",
      body);
}
