// Shared scaffolding for the experiment harness binaries.
//
// Every table_* / fig_* / sec_* binary runs the full pipeline on a synthetic
// ecosystem (bench scale by default; --scale test|bench|paper, --seed N) and
// prints one experiment's paper-vs-measured comparison. The shared engine
// flags --k-min/--k-max/--engine/--threads (cpm::engine_cli_flags) select
// the percolation engine; the sweep engine is the default.
//
// Observability: each harness accepts --log-level=, --trace-out=FILE,
// --metrics-out=FILE and --report-out=FILE (see docs/OBSERVABILITY.md; any
// FILE may be - for stdout). Unless disabled with an explicit empty
// --metrics-out=, every run writes a metrics sidecar next to the working
// directory (<binary>.metrics.json) so experiment records carry their
// counters. --report-out additionally captures the full run report:
// build/host manifest, per-stage wall + hw counters + RSS, metrics.
#pragma once

#include <iostream>
#include <string>

#include "analysis/pipeline.h"
#include "common/cli.h"
#include "obs/obs.h"

namespace kcc::bench {

struct HarnessConfig {
  PipelineOptions pipeline;
  std::string scale = "bench";
  obs::ObsOptions obs;
};

/// Parses the standard harness flags. argv[0] seeds the default metrics
/// sidecar path (<basename>.metrics.json).
HarnessConfig parse_harness_args(int argc, char** argv);

/// Runs the pipeline and prints the standard run header.
PipelineResult run_harness(const HarnessConfig& config);

/// Prints the experiment banner.
void banner(const std::string& experiment, const std::string& paper_claim);

/// Wraps main() bodies: configures observability, runs `body`, writes the
/// requested trace/metrics artifacts, catching and reporting errors.
int guarded_main(int argc, char** argv,
                 const std::string& experiment, const std::string& paper_claim,
                 int (*body)(const HarnessConfig&));

}  // namespace kcc::bench
