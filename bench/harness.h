// Shared scaffolding for the experiment harness binaries.
//
// Every table_* / fig_* / sec_* binary runs the full pipeline on a synthetic
// ecosystem (bench scale by default; --scale test|bench|paper, --seed N,
// --threads N) and prints one experiment's paper-vs-measured comparison.
#pragma once

#include <iostream>
#include <string>

#include "analysis/pipeline.h"
#include "common/cli.h"

namespace kcc::bench {

struct HarnessConfig {
  PipelineOptions pipeline;
  std::string scale = "bench";
};

/// Parses the standard harness flags.
HarnessConfig parse_harness_args(int argc, char** argv);

/// Runs the pipeline and prints the standard run header.
PipelineResult run_harness(const HarnessConfig& config);

/// Prints the experiment banner.
void banner(const std::string& experiment, const std::string& paper_claim);

/// Wraps main() bodies: runs `body`, catching and reporting errors.
int guarded_main(int argc, char** argv,
                 const std::string& experiment, const std::string& paper_claim,
                 int (*body)(const HarnessConfig&));

}  // namespace kcc::bench
