// Microbenchmarks: maximal-clique enumeration (the LP-CPM front end).
//
// Ablations from DESIGN.md: sequential vs parallel enumeration, and the
// inverted-index overlap computation vs the all-pairs scan.
//
// Special mode:
//   perf_cliques --bench-json[=FILE]
// times the three enumerators (sequential, parallel, streaming) on the
// test-scale ecosystem graph, checks they produce the same clique list, and
// writes the machine-readable BENCH_cliques.json snapshot (schema in
// docs/FORMATS.md) instead of running the registered benchmarks.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>

#include "bench_json.h"
#include "clique/bron_kerbosch.h"
#include "clique/clique_stream.h"
#include "clique/parallel_cliques.h"
#include "common/rng.h"
#include "common/set_ops.h"
#include "common/timer.h"
#include "cpm/clique_index.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::test_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

void BM_BronKerbosch_Random(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = random_graph(n, 0.1, 7);
  std::size_t cliques = 0;
  for (auto _ : state) {
    cliques = maximal_cliques(g, 2).size();
    benchmark::DoNotOptimize(cliques);
  }
  state.counters["cliques"] = static_cast<double>(cliques);
}
BENCHMARK(BM_BronKerbosch_Random)->Arg(100)->Arg(300)->Arg(1000);

void BM_BronKerbosch_AsTopology(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  std::size_t cliques = 0;
  for (auto _ : state) {
    cliques = maximal_cliques(g, 2).size();
    benchmark::DoNotOptimize(cliques);
  }
  state.counters["cliques"] = static_cast<double>(cliques);
}
BENCHMARK(BM_BronKerbosch_AsTopology)->Unit(benchmark::kMillisecond);

void BM_ParallelCliques_Threads(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cliques = parallel_maximal_cliques(g, pool, 2);
    benchmark::DoNotOptimize(cliques.data());
  }
}
BENCHMARK(BM_ParallelCliques_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_OverlapIndex_Inverted(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  const auto cliques = maximal_cliques(g, 3);
  for (auto _ : state) {
    auto overlaps =
        compute_clique_overlaps_sequential(cliques, g.num_nodes(), 2);
    benchmark::DoNotOptimize(overlaps.data());
  }
  state.counters["cliques"] = static_cast<double>(cliques.size());
}
BENCHMARK(BM_OverlapIndex_Inverted)->Unit(benchmark::kMillisecond);

void BM_OverlapIndex_AllPairs(benchmark::State& state) {
  // The ablation: quadratic pairwise intersection (what the inverted index
  // avoids). Runs on a capped clique set to stay in the milliseconds.
  const Graph& g = ecosystem_graph();
  auto cliques = maximal_cliques(g, 3);
  if (cliques.size() > 2000) cliques.resize(2000);
  for (auto _ : state) {
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < cliques.size(); ++a) {
      for (std::size_t b = a + 1; b < cliques.size(); ++b) {
        if (intersection_at_least(cliques[a], cliques[b], 2)) ++pairs;
      }
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["cliques"] = static_cast<double>(cliques.size());
}
BENCHMARK(BM_OverlapIndex_AllPairs)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- --bench-json

int bench_json(const std::string& json_path) {
  const Graph& g = ecosystem_graph();
  constexpr int kRounds = 3;

  struct Entry {
    const char* enumerator;
    double best_ms = 1e100;
    std::size_t cliques = 0;
  };
  Entry entries[] = {{"sequential"}, {"parallel"}, {"stream"}};

  std::vector<NodeSet> expected;
  for (int round = 0; round < kRounds; ++round) {
    {
      Timer t;
      auto cliques = maximal_cliques(g, 2);
      entries[0].best_ms = std::min(entries[0].best_ms, t.seconds() * 1e3);
      entries[0].cliques = cliques.size();
      if (round == 0) expected = std::move(cliques);
    }
    {
      ThreadPool pool(0);
      Timer t;
      auto cliques = parallel_maximal_cliques(g, pool, 2);
      entries[1].best_ms = std::min(entries[1].best_ms, t.seconds() * 1e3);
      entries[1].cliques = cliques.size();
      if (cliques != expected) {
        std::cerr << "bench-json: FAIL — parallel enumeration differs\n";
        return 1;
      }
    }
    {
      ThreadPool pool(0);
      CliqueStreamOptions options;
      options.min_size = 2;
      std::vector<NodeSet> cliques;
      Timer t;
      stream_maximal_cliques(g, pool, options, [&](NodeSet&& c) {
        cliques.push_back(std::move(c));
      });
      entries[2].best_ms = std::min(entries[2].best_ms, t.seconds() * 1e3);
      entries[2].cliques = cliques.size();
      if (cliques != expected) {
        std::cerr << "bench-json: FAIL — streaming enumeration differs\n";
        return 1;
      }
    }
  }

  std::vector<bench::Json> runs;
  for (const Entry& entry : entries) {
    bench::Json run;
    run.add("enumerator", entry.enumerator);
    run.add("wall_ms", entry.best_ms);
    run.add("cliques", entry.cliques);
    runs.push_back(std::move(run));
    std::cout << "bench-json: " << entry.enumerator << " "
              << entry.best_ms << " ms, " << entry.cliques << " cliques\n";
  }
  bench::Json graph;
  graph.add("scale", "test");
  graph.add("nodes", g.num_nodes());
  graph.add("edges", g.num_edges());
  bench::Json doc;
  doc.add("bench", "perf_cliques --bench-json");
  doc.add("rounds", static_cast<std::uint64_t>(kRounds));
  doc.add("graph", graph);
  doc.add_array("runs", runs);

  std::ofstream out(json_path);
  if (!out.good()) {
    std::cerr << "bench-json: cannot write " << json_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  std::cout << "bench-json: wrote " << json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0) {
      return bench_json("BENCH_cliques.json");
    }
    if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
      return bench_json(argv[i] + 13);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
