// Microbenchmarks: maximal-clique enumeration (the LP-CPM front end).
//
// Ablations from DESIGN.md: sequential vs parallel enumeration, and the
// inverted-index overlap computation vs the all-pairs scan.
//
// Special modes:
//   perf_cliques --bench-json[=FILE]
// times the three enumerators (sequential, parallel, streaming) on the
// test-scale ecosystem graph, checks they produce the same clique list, and
// writes the machine-readable BENCH_cliques.json snapshot (schema in
// docs/FORMATS.md) instead of running the registered benchmarks.
//
//   perf_cliques --scaling[=FILE] [--scaling-nodes=N,N,...]
//                [--scaling-threads=T,T,...] [--scaling-rounds=N]
//                [--scaling-eco=test|bench|none]
// the clique-backend scaling sweep: sparse vs bitset over the bench-scale
// ecosystem graph plus preferential-attachment synthetics with planted
// overlapping cliques (default 100k and 1M nodes), crossed with a thread
// axis. Verifies the backends agree (clique count + order-sensitive FNV
// digest per graph), reports the sparse/bitset speedup, and writes
// BENCH_clique_scaling.json (schema in docs/FORMATS.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "clique/bron_kerbosch.h"
#include "clique/clique_stream.h"
#include "clique/enumerator.h"
#include "clique/parallel_cliques.h"
#include "common/rng.h"
#include "common/set_ops.h"
#include "common/timer.h"
#include "cpm/clique_index.h"
#include "obs/metrics.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::test_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

void BM_BronKerbosch_Random(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = random_graph(n, 0.1, 7);
  std::size_t cliques = 0;
  for (auto _ : state) {
    cliques = maximal_cliques(g, 2).size();
    benchmark::DoNotOptimize(cliques);
  }
  state.counters["cliques"] = static_cast<double>(cliques);
}
BENCHMARK(BM_BronKerbosch_Random)->Arg(100)->Arg(300)->Arg(1000);

void BM_BronKerbosch_AsTopology(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  std::size_t cliques = 0;
  for (auto _ : state) {
    cliques = maximal_cliques(g, 2).size();
    benchmark::DoNotOptimize(cliques);
  }
  state.counters["cliques"] = static_cast<double>(cliques);
}
BENCHMARK(BM_BronKerbosch_AsTopology)->Unit(benchmark::kMillisecond);

void BM_ParallelCliques_Threads(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cliques = parallel_maximal_cliques(g, pool, 2);
    benchmark::DoNotOptimize(cliques.data());
  }
}
BENCHMARK(BM_ParallelCliques_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_OverlapIndex_Inverted(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  const auto cliques = maximal_cliques(g, 3);
  for (auto _ : state) {
    auto overlaps =
        compute_clique_overlaps_sequential(cliques, g.num_nodes(), 2);
    benchmark::DoNotOptimize(overlaps.data());
  }
  state.counters["cliques"] = static_cast<double>(cliques.size());
}
BENCHMARK(BM_OverlapIndex_Inverted)->Unit(benchmark::kMillisecond);

void BM_OverlapIndex_AllPairs(benchmark::State& state) {
  // The ablation: quadratic pairwise intersection (what the inverted index
  // avoids). Runs on a capped clique set to stay in the milliseconds.
  const Graph& g = ecosystem_graph();
  auto cliques = maximal_cliques(g, 3);
  if (cliques.size() > 2000) cliques.resize(2000);
  for (auto _ : state) {
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < cliques.size(); ++a) {
      for (std::size_t b = a + 1; b < cliques.size(); ++b) {
        if (intersection_at_least(cliques[a], cliques[b], 2)) ++pairs;
      }
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["cliques"] = static_cast<double>(cliques.size());
}
BENCHMARK(BM_OverlapIndex_AllPairs)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- --bench-json

int bench_json(const std::string& json_path) {
  const Graph& g = ecosystem_graph();
  constexpr int kRounds = 3;

  struct Entry {
    const char* enumerator;
    double best_ms = 1e100;
    std::size_t cliques = 0;
  };
  Entry entries[] = {{"sequential"}, {"parallel"}, {"stream"}};

  std::vector<NodeSet> expected;
  for (int round = 0; round < kRounds; ++round) {
    {
      Timer t;
      auto cliques = maximal_cliques(g, 2);
      entries[0].best_ms = std::min(entries[0].best_ms, t.seconds() * 1e3);
      entries[0].cliques = cliques.size();
      if (round == 0) expected = std::move(cliques);
    }
    {
      ThreadPool pool(0);
      Timer t;
      auto cliques = parallel_maximal_cliques(g, pool, 2);
      entries[1].best_ms = std::min(entries[1].best_ms, t.seconds() * 1e3);
      entries[1].cliques = cliques.size();
      if (cliques != expected) {
        std::cerr << "bench-json: FAIL — parallel enumeration differs\n";
        return 1;
      }
    }
    {
      ThreadPool pool(0);
      CliqueStreamOptions options;
      options.min_size = 2;
      std::vector<NodeSet> cliques;
      Timer t;
      stream_maximal_cliques(g, pool, options, [&](NodeSet&& c) {
        cliques.push_back(std::move(c));
      });
      entries[2].best_ms = std::min(entries[2].best_ms, t.seconds() * 1e3);
      entries[2].cliques = cliques.size();
      if (cliques != expected) {
        std::cerr << "bench-json: FAIL — streaming enumeration differs\n";
        return 1;
      }
    }
  }

  std::vector<bench::Json> runs;
  for (const Entry& entry : entries) {
    bench::Json run;
    run.add("enumerator", entry.enumerator);
    run.add("wall_ms", entry.best_ms);
    run.add("cliques", entry.cliques);
    runs.push_back(std::move(run));
    std::cout << "bench-json: " << entry.enumerator << " "
              << entry.best_ms << " ms, " << entry.cliques << " cliques\n";
  }
  bench::Json graph;
  graph.add("scale", "test");
  graph.add("nodes", g.num_nodes());
  graph.add("edges", g.num_edges());
  bench::Json doc;
  doc.add("bench", "perf_cliques --bench-json");
  doc.add("manifest",
          bench::manifest_json(obs::collect_manifest("perf_cliques")));
  doc.add("rounds", static_cast<std::uint64_t>(kRounds));
  doc.add("graph", graph);
  doc.add_array("runs", runs);

  std::ofstream out(json_path);
  if (!out.good()) {
    std::cerr << "bench-json: cannot write " << json_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  std::cout << "bench-json: wrote " << json_path << "\n";
  return 0;
}

// ------------------------------------------------------------- --scaling

// Preferential-attachment backbone (m edges per new node) with planted
// overlapping cliques: one clique of 8..24 uniformly random members per
// ~500 nodes. The backbone gives the power-law hub structure of an AS
// topology; the planted cliques give the enumerator real work at every
// scale (a bare PA graph is almost clique-free).
Graph synthetic_scaling_graph(std::size_t n, std::uint64_t seed) {
  constexpr std::size_t kAttach = 4;
  Rng rng(seed);
  GraphBuilder b(n);
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // edge endpoint lands in `endpoints`, so a uniform draw from it is a
  // draw proportional to current degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * kAttach * n);
  const std::size_t seed_nodes = std::min<std::size_t>(n, kAttach + 1);
  for (NodeId v = 1; v < seed_nodes; ++v) {
    b.add_edge(v - 1, v);
    endpoints.push_back(v - 1);
    endpoints.push_back(v);
  }
  for (NodeId v = static_cast<NodeId>(seed_nodes); v < n; ++v) {
    for (std::size_t e = 0; e < kAttach; ++e) {
      const NodeId target = endpoints[rng.next_below(endpoints.size())];
      if (target == v) continue;
      b.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  const std::size_t planted = n / 500;
  for (std::size_t c = 0; c < planted; ++c) {
    const std::size_t size = 8 + rng.next_below(17);  // 8..24
    std::vector<NodeId> members;
    members.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      members.push_back(static_cast<NodeId>(rng.next_below(n)));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        b.add_edge(members[i], members[j]);
      }
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

// Order-sensitive FNV-1a over the clique stream — equal iff both backends
// emit the same cliques in the same order (the canonical_digest invariant
// at the enumeration layer).
struct DigestSink {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  std::size_t cliques = 0;

  void operator()(std::span<const NodeId> clique) {
    ++cliques;
    for (const NodeId v : clique) {
      hash = (hash ^ v) * 0x100000001b3ULL;
    }
    hash = (hash ^ 0xfffffffful) * 0x100000001b3ULL;
  }
};

std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const char* what) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(std::stoull(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    std::cerr << "scaling: empty " << what << " list '" << text << "'\n";
    std::exit(1);
  }
  return out;
}

struct ScalingConfig {
  std::string json_path = "BENCH_clique_scaling.json";
  std::vector<std::size_t> nodes{100'000, 1'000'000};
  std::vector<std::size_t> threads;  // empty -> {1, hardware} deduped
  int rounds = 2;
  std::string eco = "bench";  // test | bench | none
};

int scaling(const ScalingConfig& config) {
  std::vector<std::size_t> threads = config.threads;
  if (threads.empty()) {
    threads = {1};
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (hw > 1) threads.push_back(hw);
  }

  struct GraphSpec {
    std::string name;
    Graph graph;
  };
  std::vector<GraphSpec> graphs;
  if (config.eco != "none") {
    SynthParams params = config.eco == "test" ? SynthParams::test_scale()
                                              : SynthParams::bench_scale();
    graphs.push_back({"ecosystem-" + config.eco,
                      generate_ecosystem(params).topology.graph});
  }
  for (const std::size_t n : config.nodes) {
    graphs.push_back({"pa-planted-" + std::to_string(n),
                      synthetic_scaling_graph(n, 42)});
  }

  const clique::Backend backends[] = {clique::Backend::kSparse,
                                      clique::Backend::kBitset};
  std::vector<bench::Json> runs;
  bool ok = true;
  for (const GraphSpec& spec : graphs) {
    std::cout << "scaling: " << spec.name << " (" << spec.graph.num_nodes()
              << " nodes, " << spec.graph.num_edges() << " edges)\n";
    std::uint64_t digests[2] = {0, 0};
    double t1_ms[2] = {0.0, 0.0};
    for (int bi = 0; bi < 2; ++bi) {
      const clique::Backend backend = backends[bi];
      clique::Options options;
      options.min_size = 2;
      options.backend = backend;
      const clique::Enumerator e(spec.graph, options);
      for (const std::size_t t : threads) {
        double best_ms = 1e100;
        std::size_t cliques = 0;
        std::uint64_t digest = 0;
        for (int round = 0; round < config.rounds; ++round) {
          DigestSink sink;
          Timer timer;
          if (t == 1) {
            e.for_each(sink);
          } else {
            ThreadPool pool(t);
            DigestSink& into = sink;
            e.stream(pool, into);
          }
          best_ms = std::min(best_ms, timer.seconds() * 1e3);
          cliques = sink.cliques;
          digest = sink.hash;
        }
        if (t == 1) {
          digests[bi] = digest;
          t1_ms[bi] = best_ms;
        }
        const double rss_mb =
            static_cast<double>(obs::current_rss_bytes()) / (1024.0 * 1024.0);
        bench::Json run;
        run.add("graph", spec.name);
        run.add("nodes", static_cast<std::uint64_t>(spec.graph.num_nodes()));
        run.add("edges", static_cast<std::uint64_t>(spec.graph.num_edges()));
        run.add("backend", clique::backend_name(backend));
        run.add("threads", static_cast<std::uint64_t>(t));
        run.add("wall_ms", best_ms);
        run.add("cliques", static_cast<std::uint64_t>(cliques));
        char digest_hex[32];
        std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                      static_cast<unsigned long long>(digest));
        run.add("digest", digest_hex);
        run.add("rss_mb", rss_mb);
        runs.push_back(std::move(run));
        std::cout << "  " << clique::backend_name(backend) << " t" << t
                  << ": " << best_ms << " ms, " << cliques << " cliques, rss "
                  << static_cast<std::size_t>(rss_mb) << " MB\n";
      }
    }
    if (digests[0] != digests[1]) {
      std::cerr << "scaling: FAIL — backend digests differ on " << spec.name
                << "\n";
      ok = false;
    } else {
      std::cout << "  digests match; sparse/bitset t1 speedup "
                << (t1_ms[1] > 0 ? t1_ms[0] / t1_ms[1] : 0.0) << "x\n";
    }
  }
  if (!ok) return 1;

  bench::Json doc;
  doc.add("bench", "perf_cliques --scaling");
  doc.add("manifest",
          bench::manifest_json(obs::collect_manifest("perf_cliques")));
  doc.add("rounds", static_cast<std::uint64_t>(config.rounds));
  doc.add("peak_rss_mb",
          static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0));
  doc.add_array("runs", runs);
  std::ofstream out(config.json_path);
  if (!out.good()) {
    std::cerr << "scaling: cannot write " << config.json_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  std::cout << "scaling: wrote " << config.json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool run_scaling = false;
  ScalingConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bench-json") == 0) {
      return bench_json("BENCH_cliques.json");
    }
    if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
      return bench_json(argv[i] + 13);
    }
    if (std::strcmp(argv[i], "--scaling") == 0) {
      run_scaling = true;
    } else if (std::strncmp(argv[i], "--scaling=", 10) == 0) {
      run_scaling = true;
      config.json_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--scaling-nodes=", 16) == 0) {
      config.nodes = parse_size_list(argv[i] + 16, "--scaling-nodes");
    } else if (std::strncmp(argv[i], "--scaling-threads=", 18) == 0) {
      config.threads = parse_size_list(argv[i] + 18, "--scaling-threads");
    } else if (std::strncmp(argv[i], "--scaling-rounds=", 17) == 0) {
      config.rounds = std::max(1, std::atoi(argv[i] + 17));
    } else if (std::strncmp(argv[i], "--scaling-eco=", 14) == 0) {
      config.eco = argv[i] + 14;
    }
  }
  if (run_scaling) return scaling(config);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
