// Microbenchmarks: maximal-clique enumeration (the LP-CPM front end).
//
// Ablations from DESIGN.md: sequential vs parallel enumeration, and the
// inverted-index overlap computation vs the all-pairs scan.
#include <benchmark/benchmark.h>

#include "clique/bron_kerbosch.h"
#include "clique/parallel_cliques.h"
#include "common/rng.h"
#include "common/set_ops.h"
#include "cpm/clique_index.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::test_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

void BM_BronKerbosch_Random(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = random_graph(n, 0.1, 7);
  std::size_t cliques = 0;
  for (auto _ : state) {
    cliques = maximal_cliques(g, 2).size();
    benchmark::DoNotOptimize(cliques);
  }
  state.counters["cliques"] = static_cast<double>(cliques);
}
BENCHMARK(BM_BronKerbosch_Random)->Arg(100)->Arg(300)->Arg(1000);

void BM_BronKerbosch_AsTopology(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  std::size_t cliques = 0;
  for (auto _ : state) {
    cliques = maximal_cliques(g, 2).size();
    benchmark::DoNotOptimize(cliques);
  }
  state.counters["cliques"] = static_cast<double>(cliques);
}
BENCHMARK(BM_BronKerbosch_AsTopology)->Unit(benchmark::kMillisecond);

void BM_ParallelCliques_Threads(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto cliques = parallel_maximal_cliques(g, pool, 2);
    benchmark::DoNotOptimize(cliques.data());
  }
}
BENCHMARK(BM_ParallelCliques_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_OverlapIndex_Inverted(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  const auto cliques = maximal_cliques(g, 3);
  for (auto _ : state) {
    auto overlaps =
        compute_clique_overlaps_sequential(cliques, g.num_nodes(), 2);
    benchmark::DoNotOptimize(overlaps.data());
  }
  state.counters["cliques"] = static_cast<double>(cliques.size());
}
BENCHMARK(BM_OverlapIndex_Inverted)->Unit(benchmark::kMillisecond);

void BM_OverlapIndex_AllPairs(benchmark::State& state) {
  // The ablation: quadratic pairwise intersection (what the inverted index
  // avoids). Runs on a capped clique set to stay in the milliseconds.
  const Graph& g = ecosystem_graph();
  auto cliques = maximal_cliques(g, 3);
  if (cliques.size() > 2000) cliques.resize(2000);
  for (auto _ : state) {
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < cliques.size(); ++a) {
      for (std::size_t b = a + 1; b < cliques.size(); ++b) {
        if (intersection_at_least(cliques[a], cliques[b], 2)) ++pairs;
      }
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["cliques"] = static_cast<double>(cliques.size());
}
BENCHMARK(BM_OverlapIndex_AllPairs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
