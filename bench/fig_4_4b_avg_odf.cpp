// Figure 4.4(b) — average Out Degree Fraction vs k, main vs parallel.
//
// Paper shape: main communities at low k have a low average ODF (most member
// links stay inside: the k=3 main community holds 69% of all ASes); crown
// communities have a high average ODF despite being clique-like, because
// their members' customer cones point outside.
#include "harness.h"

#include <algorithm>

#include "common/table.h"
#include "io/csv.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);

  TextTable table({"k", "main ODF", "parallel min", "parallel mean",
                   "parallel max"});
  CsvWriter csv({"k", "main", "parallel"});
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    double main_odf = 0.0;
    std::vector<double> parallel;
    for (int idx : result.tree.level(k)) {
      const TreeNode& node = result.tree.nodes()[idx];
      const double odf = result.metrics_of(k, node.community_id).avg_odf;
      if (node.is_main) {
        main_odf = odf;
      } else {
        parallel.push_back(odf);
      }
    }
    std::string pmin = "-", pmean = "-", pmax = "-";
    if (!parallel.empty()) {
      double sum = 0.0;
      for (double d : parallel) sum += d;
      pmin = fixed(*std::min_element(parallel.begin(), parallel.end()), 3);
      pmean = fixed(sum / double(parallel.size()), 3);
      pmax = fixed(*std::max_element(parallel.begin(), parallel.end()), 3);
    }
    table.add(k, fixed(main_odf, 4), pmin, pmean, pmax);
    std::string series;
    for (double d : parallel) {
      if (!series.empty()) series += ';';
      series += fixed(d, 4);
    }
    csv.add_row({std::to_string(k),
                 fixed(main_odf, 4), series});
  }
  std::cout << table;
  csv.save("fig_4_4b.csv");

  const auto main_ids = main_ids_by_k(result.tree);
  const double low = result.metrics_of(3, main_ids[3 - result.cpm.min_k]).avg_odf;
  const double high =
      result
          .metrics_of(result.cpm.max_k,
                      main_ids[result.cpm.max_k - result.cpm.min_k])
          .avg_odf;
  std::cout << "\nShape check: main avg ODF " << fixed(low, 3) << " at k=3 vs "
            << fixed(high, 3) << " at k=" << result.cpm.max_k
            << " (paper: low at low k, high at the apex)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Figure 4.4(b) — average ODF vs k",
      "main communities: low ODF at low k; crown communities cohesive yet "
      "high-ODF (external customer links dominate)",
      body);
}
