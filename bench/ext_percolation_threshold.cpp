// Extension — the k-clique percolation phase transition on G(n, p)
// (Derényi, Palla, Vicsek 2005): the giant k-clique community appears at
// p_c = [(k-1) n]^(-1/(k-1)). Validates the CPM engine against the theory
// the whole method rests on.
#include "harness.h"

#include "analysis/percolation_threshold.h"
#include "common/table.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  (void)config;
  for (std::size_t k : {3u, 4u}) {
    PercolationSweepOptions options;
    options.n = 300;
    options.k = k;
    options.ratios = {0.6, 0.8, 1.0, 1.2, 1.6, 2.0};
    options.trials = 3;
    options.seed = 11;
    const double pc = critical_probability(options.n, options.k);
    std::cout << "k = " << k << ", n = " << options.n
              << ", p_c = " << fixed(pc, 4) << "\n";
    TextTable table({"p/p_c", "p", "communities", "largest",
                     "largest fraction"});
    for (const auto& point : percolation_sweep(options)) {
      table.add(fixed(point.p_over_pc, 1), fixed(point.p, 4),
                point.communities, point.largest,
                fixed(point.largest_fraction, 3));
    }
    std::cout << table << "\n";
  }
  std::cout << "Shape: the largest-community fraction jumps across p/p_c = 1 "
               "— the published k-clique percolation transition.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — k-clique percolation critical point",
      "giant k-clique community emerges at p_c = [(k-1)n]^(-1/(k-1)) "
      "(Derényi-Palla-Vicsek)",
      body);
}
