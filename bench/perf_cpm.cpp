// Microbenchmarks: the Clique Percolation Method itself.
//
// The paper's LP-CPM needed 93 hours on 48 cores for the April-2010
// topology; these benchmarks demonstrate the same parallel structure
// (threads sweep) and the maximal-clique reduction vs the literal
// k-clique-graph construction (reference CPM) at small scale.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "cpm/cpm.h"
#include "cpm/reference_cpm.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::test_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

void BM_Cpm_Threads(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  CpmOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::size_t communities = 0;
  for (auto _ : state) {
    communities = run_cpm(g, options).total_communities();
    benchmark::DoNotOptimize(communities);
  }
  state.counters["communities"] = static_cast<double>(communities);
}
BENCHMARK(BM_Cpm_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Cpm_MaximalCliqueReduction(benchmark::State& state) {
  // Percolation over maximal cliques (ours) on a dense random graph.
  const Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 0.4, 3);
  for (auto _ : state) {
    auto result = run_cpm(g);
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_MaximalCliqueReduction)->Arg(20)->Arg(40)->Arg(80);

void BM_Cpm_ReferenceKCliqueGraph(benchmark::State& state) {
  // Ablation: the literal definition (enumerate k-cliques, pairwise
  // adjacency) — exponentially slower, hence the tiny sizes.
  const Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 0.4, 3);
  for (auto _ : state) {
    std::size_t total = 0;
    for (std::size_t k = 3; k <= 5; ++k) {
      total += reference_k_clique_communities(g, k).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Cpm_ReferenceKCliqueGraph)->Arg(20)->Arg(40);

void BM_Cpm_PerKScaling(benchmark::State& state) {
  // Cost of restricting the k range: percolating only high k is cheap.
  const Graph& g = ecosystem_graph();
  CpmOptions options;
  options.min_k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = run_cpm(g, options);
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_PerKScaling)->Arg(2)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
