// Microbenchmarks: the Clique Percolation Method itself.
//
// The paper's LP-CPM needed 93 hours on 48 cores for the April-2010
// topology; these benchmarks demonstrate the same parallel structure
// (threads sweep), the maximal-clique reduction vs the literal
// k-clique-graph construction (reference CPM) at small scale, and the
// single-sweep engine vs the per-k rescan for all-k extraction.
//
// Special modes (used by the perf_cpm_* ctests):
//   perf_cpm --verify-sweep
// runs both engines on the default synthetic graph, checks the sweep output
// is identical to the per-k oracle for every k (communities, clique ids and
// the nesting tree), prints the all-k extraction speedup, and exits without
// running the registered benchmarks.
//   perf_cpm --verify-stream [--json=FILE]
// runs per_k, sweep, the streaming engine (unbudgeted and under a 1 MiB
// budget that forces spilling) and almost_exact each in its own forked
// child, compares an FNV-1a digest of the full structural output (gate: all
// exact engines must agree; almost_exact is measured but exempt), measures
// per-engine wall time and peak-RSS growth, and writes the machine-readable
// BENCH_cpm.json snapshot (schema in docs/FORMATS.md).
//   perf_cpm --verify-almost [--json=FILE]
// scores the almost_exact engine against the exact sweep per graph family:
// per-k community F1 curves (gate: worst F1 >= 0.99 on every family),
// plus forked-child wall/peak-RSS comparisons over the full k range and a
// high-k restriction, written to the BENCH_cpm_almost.json snapshot.
#include <benchmark/benchmark.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_json.h"
#include "clique/parallel_cliques.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cpm/compare.h"
#include "cpm/engine.h"
#include "cpm/reference_cpm.h"
#include "cpm/stream_cpm.h"
#include "cpm/sweep_cpm.h"
#include "obs/metrics.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::test_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

// The suite's default experiment scale; large enough that the all-k
// comparison reflects real overlap-list sizes (~2M pairs).
const Graph& bench_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::bench_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

const std::vector<NodeSet>& bench_cliques() {
  static const std::vector<NodeSet> cliques = [] {
    ThreadPool pool(0);
    return parallel_maximal_cliques(bench_graph(), pool, 2);
  }();
  return cliques;
}

void BM_Cpm_Threads(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  CpmOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::size_t communities = 0;
  for (auto _ : state) {
    communities = run_cpm(g, options).total_communities();
    benchmark::DoNotOptimize(communities);
  }
  state.counters["communities"] = static_cast<double>(communities);
}
BENCHMARK(BM_Cpm_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// All-k extraction over pre-enumerated cliques: the tentpole comparison.
// The per-k path rescans the overlap list once per k; the sweep unites each
// pair exactly once and snapshots communities level by level.
void BM_Cpm_PerKAllK(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<NodeSet> cliques = bench_cliques();  // copy
    state.ResumeTiming();
    auto result = run_cpm_on_cliques(g, std::move(cliques), {});
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_PerKAllK)->Unit(benchmark::kMillisecond);

void BM_Cpm_SweepAllK(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<NodeSet> cliques = bench_cliques();  // copy
    state.ResumeTiming();
    auto result = run_sweep_cpm_on_cliques(g, std::move(cliques), {});
    benchmark::DoNotOptimize(result.cpm.total_communities());
    benchmark::DoNotOptimize(result.tree.nodes().size());
  }
}
BENCHMARK(BM_Cpm_SweepAllK)->Unit(benchmark::kMillisecond);

void BM_Cpm_MaximalCliqueReduction(benchmark::State& state) {
  // Percolation over maximal cliques (ours) on a dense random graph.
  const Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 0.4, 3);
  for (auto _ : state) {
    auto result = run_cpm(g);
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_MaximalCliqueReduction)->Arg(20)->Arg(40)->Arg(80);

void BM_Cpm_ReferenceKCliqueGraph(benchmark::State& state) {
  // Ablation: the literal definition (enumerate k-cliques, pairwise
  // adjacency) — exponentially slower, hence the tiny sizes.
  const Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 0.4, 3);
  for (auto _ : state) {
    std::size_t total = 0;
    for (std::size_t k = 3; k <= 5; ++k) {
      total += reference_k_clique_communities(g, k).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Cpm_ReferenceKCliqueGraph)->Arg(20)->Arg(40);

void BM_Cpm_PerKScaling(benchmark::State& state) {
  // Cost of restricting the k range: percolating only high k is cheap.
  const Graph& g = ecosystem_graph();
  CpmOptions options;
  options.min_k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = run_cpm(g, options);
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_PerKScaling)->Arg(2)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- --verify-sweep

bool same_communities(const CpmResult& a, const CpmResult& b) {
  if (a.min_k != b.min_k || a.max_k != b.max_k) return false;
  for (std::size_t k = a.min_k; k <= a.max_k; ++k) {
    const CommunitySet& sa = a.at(k);
    const CommunitySet& sb = b.at(k);
    if (sa.count() != sb.count()) return false;
    for (CommunityId id = 0; id < sa.count(); ++id) {
      if (sa.communities[id].nodes != sb.communities[id].nodes) return false;
      if (sa.communities[id].clique_ids != sb.communities[id].clique_ids) {
        return false;
      }
    }
    if (sa.community_of_clique != sb.community_of_clique) return false;
  }
  return true;
}

bool same_tree(const CommunityTree& a, const CommunityTree& b) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const TreeNode& na = a.nodes()[i];
    const TreeNode& nb = b.nodes()[i];
    if (na.k != nb.k || na.community_id != nb.community_id ||
        na.size != nb.size || na.parent != nb.parent ||
        na.is_main != nb.is_main) {
      return false;
    }
  }
  return true;
}

// Verifies sweep == per-k oracle on the default synthetic graph and reports
// the all-k extraction speedup. Gates only on identity: timing is printed
// for the record but never fails the check (CI machines are noisy).
int verify_sweep() {
  const Graph& g = bench_graph();
  const std::vector<NodeSet>& cliques = bench_cliques();
  std::cout << "verify-sweep: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, " << cliques.size()
            << " maximal cliques\n";

  constexpr int kRounds = 3;
  double best_per_k = 1e100;
  double best_sweep = 1e100;
  CpmResult per_k;
  SweepCpmResult sweep;
  for (int round = 0; round < kRounds; ++round) {
    {
      std::vector<NodeSet> copy = cliques;
      Timer t;
      per_k = run_cpm_on_cliques(g, std::move(copy), {});
      best_per_k = std::min(best_per_k, t.seconds());
    }
    {
      std::vector<NodeSet> copy = cliques;
      Timer t;
      sweep = run_sweep_cpm_on_cliques(g, std::move(copy), {});
      best_sweep = std::min(best_sweep, t.seconds());
    }
  }

  if (!same_communities(per_k, sweep.cpm)) {
    std::cerr << "verify-sweep: FAIL — sweep communities differ from the "
                 "per-k oracle\n";
    return 1;
  }
  const CommunityTree oracle_tree = CommunityTree::build(per_k);
  if (!same_tree(oracle_tree, sweep.tree)) {
    std::cerr << "verify-sweep: FAIL — sweep tree differs from "
                 "CommunityTree::build over the per-k result\n";
    return 1;
  }

  std::cout << "verify-sweep: OK — identical communities and tree for k in ["
            << per_k.min_k << ", " << per_k.max_k << "] ("
            << per_k.total_communities() << " communities)\n";
  std::cout << "verify-sweep: all-k extraction best of " << kRounds
            << ": per_k " << fixed(best_per_k * 1e3, 2) << " ms, sweep "
            << fixed(best_sweep * 1e3, 2) << " ms, speedup "
            << fixed(best_per_k / best_sweep, 2) << "x\n";
  return 0;
}

// -------------------------------------------------------- --verify-stream

// FNV-1a over the full structural output, so engine-identity across process
// boundaries reduces to one integer comparison.
class Fnv {
 public:
  void mix(std::uint64_t x) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ = (hash_ ^ (x & 0xff)) * 1099511628211ull;
      x >>= 8;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

std::uint64_t digest_result(const CpmResult& cpm, const CommunityTree& tree) {
  Fnv fnv;
  fnv.mix(cpm.min_k);
  fnv.mix(cpm.max_k);
  fnv.mix(cpm.cliques.size());
  for (const NodeSet& clique : cpm.cliques) {
    fnv.mix(clique.size());
    for (NodeId v : clique) fnv.mix(v);
  }
  for (const CommunitySet& set : cpm.by_k) {
    fnv.mix(set.k);
    fnv.mix(set.count());
    for (const Community& c : set.communities) {
      fnv.mix(c.nodes.size());
      for (NodeId v : c.nodes) fnv.mix(v);
      fnv.mix(c.clique_ids.size());
      for (CliqueId id : c.clique_ids) fnv.mix(id);
    }
    for (std::uint32_t id : set.community_of_clique) fnv.mix(id);
  }
  fnv.mix(tree.nodes().size());
  for (const TreeNode& node : tree.nodes()) {
    fnv.mix(node.k);
    fnv.mix(node.community_id);
    fnv.mix(node.size);
    fnv.mix(static_cast<std::uint64_t>(node.parent + 1));
    fnv.mix(node.is_main ? 1 : 0);
  }
  return fnv.value();
}

// One engine configuration of a forked measurement child: a registry
// engine name plus the options that distinguish the run.
struct EngineRun {
  const char* name;                 // registry name, see cpm::engine_registry()
  std::uint64_t memory_budget = 0;  // stream only
  std::size_t min_k = 2;            // raised for the high-k comparisons
  bool exact = true;                // exempt from the digest gate when false
};

// Everything a measurement child reports back through its pipe.
struct ChildReport {
  bool ok = false;
  double wall_ms = 0.0;
  std::uint64_t peak_rss_delta = 0;  // VmHWM growth during the run
  std::uint64_t digest = 0;
  std::uint64_t communities = 0;
  std::uint64_t pairs_total = 0;    // stream only, else 0
  std::uint64_t spilled_pairs = 0;  // stream only, else 0
};

// Runs one engine end to end (enumeration included) in a forked child and
// reports wall/peak/digest through a pipe. A fresh process per run is the
// only way to compare peak RSS: VmHWM is monotonic per process, so
// in-process back-to-back runs would all inherit the first run's peak.
// The child measures its own VmHWM right after fork as the baseline (the
// parent's already-resident graph is shared copy-on-write), so the delta
// isolates what the engine itself allocated.
ChildReport run_engine_in_child(const Graph& g, const EngineRun& config) {
  int fds[2];
  ChildReport report;
  if (pipe(fds) != 0) return report;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return report;
  }
  if (pid == 0) {
    close(fds[0]);
    const std::uint64_t baseline = obs::peak_rss_bytes();
    Timer t;
    std::uint64_t digest = 0;
    std::uint64_t communities = 0;
    std::uint64_t pairs_total = 0;
    std::uint64_t spilled_pairs = 0;
    if (std::strcmp(config.name, "stream") == 0) {
      // Direct call: the facade does not surface the spill statistics.
      StreamCpmOptions options;
      options.memory_budget = config.memory_budget;
      options.min_k = config.min_k;
      const StreamCpmResult result = run_stream_cpm(g, options);
      digest = digest_result(result.cpm, result.tree);
      communities = result.cpm.total_communities();
      pairs_total = result.stats.pairs_total;
      spilled_pairs = result.stats.spilled_pairs;
    } else {
      cpm::Options options;
      options.engine = config.name;
      options.min_k = config.min_k;
      const cpm::Result result = cpm::Engine(options).run(g);
      digest = digest_result(result.cpm, result.tree);
      communities = result.cpm.total_communities();
    }
    const double wall_ms = t.seconds() * 1e3;
    const std::uint64_t peak_delta = obs::peak_rss_bytes() - baseline;
    std::ostringstream line;
    line << wall_ms << " " << peak_delta << " " << digest << " "
         << communities << " " << pairs_total << " " << spilled_pairs << "\n";
    const std::string text = line.str();
    const ssize_t written = write(fds[1], text.data(), text.size());
    close(fds[1]);
    _exit(written == static_cast<ssize_t>(text.size()) ? 0 : 1);
  }
  close(fds[1]);
  std::string text;
  char buf[256];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) text.append(buf, n);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return report;
  std::istringstream fields(text);
  fields >> report.wall_ms >> report.peak_rss_delta >> report.digest >>
      report.communities >> report.pairs_total >> report.spilled_pairs;
  report.ok = !fields.fail();
  return report;
}

// Compares per_k / sweep / stream / stream-under-budget end to end (plus an
// almost_exact measurement row): digest identity across the exact engines
// gates the exit code; wall and peak-RSS numbers are printed and written to
// `json_path`. Timing/memory never fail the check (CI machines are noisy) —
// the committed snapshot is what documents the expectation.
int verify_stream(const std::string& json_path) {
  // Small enough that the bench graph's overlap pairs overflow it and the
  // spill path is actually exercised (resident pairs stay under ~1 MiB).
  const std::uint64_t budget = 1024 * 1024;
  const Graph& g = bench_graph();
  std::cout << "verify-stream: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";

  const EngineRun configs[] = {
      {"per_k"},
      {"sweep"},
      {"stream"},
      {"stream", budget},
      {"almost_exact", 0, 2, /*exact=*/false},
  };
  constexpr int kConfigs = 5;
  constexpr int kRounds = 2;
  ChildReport best[kConfigs];
  for (int i = 0; i < kConfigs; ++i) {
    for (int round = 0; round < kRounds; ++round) {
      const ChildReport report = run_engine_in_child(g, configs[i]);
      if (!report.ok) {
        std::cerr << "verify-stream: FAIL — " << configs[i].name
                  << " child did not report\n";
        return 1;
      }
      if (round == 0) {
        best[i] = report;
      } else {  // digest/communities are identical across rounds
        best[i].wall_ms = std::min(best[i].wall_ms, report.wall_ms);
        best[i].peak_rss_delta =
            std::min(best[i].peak_rss_delta, report.peak_rss_delta);
      }
    }
    std::cout << "verify-stream: " << configs[i].name;
    if (configs[i].memory_budget > 0) {
      std::cout << " (budget " << configs[i].memory_budget / (1024 * 1024)
                << "M, " << best[i].spilled_pairs << " pairs spilled)";
    }
    std::cout << ": " << fixed(best[i].wall_ms, 2) << " ms, peak +"
              << best[i].peak_rss_delta / (1024 * 1024) << " MiB, "
              << best[i].communities << " communities\n";
  }

  for (int i = 1; i < kConfigs; ++i) {
    if (!configs[i].exact) continue;  // almost_exact: measured, not gated
    if (best[i].digest != best[0].digest) {
      std::cerr << "verify-stream: FAIL — " << configs[i].name
                << (configs[i].memory_budget ? " (budgeted)" : "")
                << " output digest differs from the per-k oracle\n";
      return 1;
    }
  }
  if (best[3].spilled_pairs == 0) {
    std::cerr << "verify-stream: FAIL — the budgeted run never spilled; the "
                 "budget is not exercising the spill path at this scale\n";
    return 1;
  }

  const double peak_ratio = best[2].peak_rss_delta == 0
                                ? 0.0
                                : static_cast<double>(best[1].peak_rss_delta) /
                                      static_cast<double>(best[2].peak_rss_delta);
  const double wall_ratio = best[1].wall_ms == 0.0
                                ? 0.0
                                : best[2].wall_ms / best[1].wall_ms;
  std::cout << "verify-stream: OK — identical digests across all exact "
               "engines\n";
  std::cout << "verify-stream: stream peak is " << fixed(peak_ratio, 2)
            << "x below sweep; stream wall is " << fixed(wall_ratio, 2)
            << "x sweep\n";

  std::vector<bench::Json> runs;
  for (int i = 0; i < kConfigs; ++i) {
    const bool is_stream = std::strcmp(configs[i].name, "stream") == 0;
    bench::Json run;
    run.add("engine", configs[i].name);
    run.add("exact", configs[i].exact);
    if (is_stream) {
      run.add("memory_budget_bytes", configs[i].memory_budget);
    }
    run.add("wall_ms", best[i].wall_ms);
    run.add("peak_rss_delta_bytes", best[i].peak_rss_delta);
    run.add("communities", best[i].communities);
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(best[i].digest));
    run.add("digest", digest);
    if (is_stream) {
      run.add("pairs_total", best[i].pairs_total);
      run.add("spilled_pairs", best[i].spilled_pairs);
    }
    runs.push_back(std::move(run));
  }
  bench::Json graph;
  graph.add("scale", "bench");
  graph.add("nodes", g.num_nodes());
  graph.add("edges", g.num_edges());
  bench::Json derived;
  derived.add("sweep_over_stream_peak_ratio", peak_ratio);
  derived.add("stream_over_sweep_wall_ratio", wall_ratio);
  bench::Json doc;
  doc.add("bench", "perf_cpm --verify-stream");
  doc.add("manifest", bench::manifest_json(obs::collect_manifest("perf_cpm")));
  doc.add("rounds", static_cast<std::uint64_t>(kRounds));
  doc.add("graph", graph);
  doc.add_array("runs", runs);
  doc.add("derived", derived);

  std::ofstream out(json_path);
  if (!out.good()) {
    std::cerr << "verify-stream: cannot write " << json_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  std::cout << "verify-stream: wrote " << json_path << "\n";
  return 0;
}

// -------------------------------------------------------- --verify-almost

// Scores the almost_exact engine (Baudin et al. 2021, bounded-memory
// percolation without the overlap join) against the exact sweep, per graph
// family. The gate is the exactness gap: worst per-k community F1 must stay
// >= kMinF1 on every family. Wall/peak-RSS comparisons run in forked
// children (full k range plus a high-k restriction, where the exact
// engines' overlap pair list is most wasteful); timing and memory are
// recorded in the BENCH_cpm_almost.json snapshot but never fail the check.
int verify_almost(const std::string& json_path) {
  constexpr double kMinF1 = 0.99;
  constexpr int kRounds = 2;

  struct Family {
    const char* name;
    const Graph* graph;
  };
  const Graph dense = random_graph(150, 0.3, 11);
  const Family families[] = {
      {"ecosystem_bench", &bench_graph()},
      {"ecosystem_test", &ecosystem_graph()},
      {"dense_random_150", &dense},
  };

  bool ok = true;
  std::vector<bench::Json> family_docs;
  for (const Family& family : families) {
    const Graph& g = *family.graph;
    std::cout << "verify-almost: " << family.name << ": " << g.num_nodes()
              << " nodes, " << g.num_edges() << " edges\n";

    // Exactness gap, in-process: the timing children below redo the runs
    // cold, so warm caches here cost nothing.
    cpm::Options exact_options;
    exact_options.engine = "sweep";
    const cpm::Result exact = cpm::Engine(exact_options).run(g);
    cpm::Options almost_options;
    almost_options.engine = "almost_exact";
    const cpm::Result almost = cpm::Engine(almost_options).run(g);
    cpm::CompareOptions compare_options;
    compare_options.min_f1 = kMinF1;
    const cpm::Comparison gap =
        cpm::compare_results(exact, almost, compare_options);
    std::cout << "verify-almost: " << family.name << ": " << gap.summary
              << "\n";
    if (!gap.ok) {
      std::cerr << "verify-almost: FAIL — " << family.name
                << " exceeds the exactness gap (worst F1 "
                << fixed(gap.worst_f1, 4) << " at k=" << gap.worst_k
                << ", threshold " << fixed(kMinF1, 2) << ")\n";
      ok = false;
    }

    // High-k restriction: percolate only the top third of the k range.
    const std::size_t max_k = exact.cpm.max_k;
    const std::size_t high_k =
        std::max<std::size_t>(3, std::min(max_k, (max_k * 2) / 3));

    const EngineRun configs[] = {
        {"sweep"},
        {"almost_exact", 0, 2, /*exact=*/false},
        {"sweep", 0, high_k},
        {"almost_exact", 0, high_k, /*exact=*/false},
    };
    constexpr int kConfigs = 4;
    ChildReport best[kConfigs];
    for (int i = 0; i < kConfigs; ++i) {
      for (int round = 0; round < kRounds; ++round) {
        const ChildReport report = run_engine_in_child(g, configs[i]);
        if (!report.ok) {
          std::cerr << "verify-almost: FAIL — " << configs[i].name
                    << " child did not report on " << family.name << "\n";
          return 1;
        }
        if (round == 0) {
          best[i] = report;
        } else {
          best[i].wall_ms = std::min(best[i].wall_ms, report.wall_ms);
          best[i].peak_rss_delta =
              std::min(best[i].peak_rss_delta, report.peak_rss_delta);
        }
      }
      std::cout << "verify-almost: " << configs[i].name << " k>="
                << configs[i].min_k << ": " << fixed(best[i].wall_ms, 2)
                << " ms, peak +" << best[i].peak_rss_delta / (1024 * 1024)
                << " MiB, " << best[i].communities << " communities\n";
    }

    auto ratio = [](double sweep_value, double almost_value) {
      return almost_value == 0.0 ? 0.0 : sweep_value / almost_value;
    };
    const double full_wall = ratio(best[0].wall_ms, best[1].wall_ms);
    const double full_peak = ratio(
        static_cast<double>(best[0].peak_rss_delta),
        static_cast<double>(best[1].peak_rss_delta));
    const double high_wall = ratio(best[2].wall_ms, best[3].wall_ms);
    const double high_peak = ratio(
        static_cast<double>(best[2].peak_rss_delta),
        static_cast<double>(best[3].peak_rss_delta));
    std::cout << "verify-almost: " << family.name << " k>=" << high_k
              << ": sweep wall is " << fixed(high_wall, 2)
              << "x almost, sweep peak is " << fixed(high_peak, 2)
              << "x almost\n";

    std::vector<bench::Json> levels;
    for (const cpm::LevelGap& level : gap.levels) {
      bench::Json row;
      row.add("k", static_cast<std::uint64_t>(level.k));
      row.add("baseline_communities",
              static_cast<std::uint64_t>(level.communities_baseline));
      row.add("candidate_communities",
              static_cast<std::uint64_t>(level.communities_candidate));
      row.add("recall", level.recall);
      row.add("precision", level.precision);
      row.add("f1", level.f1);
      levels.push_back(std::move(row));
    }
    bench::Json gap_doc;
    gap_doc.add("identical", gap.identical);
    gap_doc.add("worst_f1", gap.worst_f1);
    gap_doc.add("worst_k", static_cast<std::uint64_t>(gap.worst_k));
    gap_doc.add_array("levels", levels);

    std::vector<bench::Json> runs;
    for (int i = 0; i < kConfigs; ++i) {
      bench::Json run;
      run.add("engine", configs[i].name);
      run.add("exact", configs[i].exact);
      run.add("min_k", static_cast<std::uint64_t>(configs[i].min_k));
      run.add("wall_ms", best[i].wall_ms);
      run.add("peak_rss_delta_bytes", best[i].peak_rss_delta);
      run.add("communities", best[i].communities);
      runs.push_back(std::move(run));
    }
    bench::Json derived;
    derived.add("full_sweep_over_almost_wall_ratio", full_wall);
    derived.add("full_sweep_over_almost_peak_ratio", full_peak);
    derived.add("high_k_sweep_over_almost_wall_ratio", high_wall);
    derived.add("high_k_sweep_over_almost_peak_ratio", high_peak);

    bench::Json fam;
    fam.add("name", family.name);
    fam.add("nodes", g.num_nodes());
    fam.add("edges", g.num_edges());
    fam.add("high_k", static_cast<std::uint64_t>(high_k));
    fam.add("gap", gap_doc);
    fam.add_array("runs", runs);
    fam.add("derived", derived);
    family_docs.push_back(std::move(fam));
  }

  bench::Json doc;
  doc.add("bench", "perf_cpm --verify-almost");
  doc.add("manifest", bench::manifest_json(obs::collect_manifest("perf_cpm")));
  doc.add("rounds", static_cast<std::uint64_t>(kRounds));
  doc.add("min_f1", kMinF1);
  doc.add_array("families", family_docs);
  std::ofstream out(json_path);
  if (!out.good()) {
    std::cerr << "verify-almost: cannot write " << json_path << "\n";
    return 1;
  }
  out << doc.str() << "\n";
  std::cout << "verify-almost: wrote " << json_path << "\n";
  if (ok) {
    std::cout << "verify-almost: OK — worst community F1 within "
              << fixed(kMinF1, 2) << " of the exact sweep on all "
              << family_docs.size() << " families\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify_stream_mode = false;
  bool verify_almost_mode = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify-sweep") == 0) return verify_sweep();
    if (std::strcmp(argv[i], "--verify-stream") == 0) {
      verify_stream_mode = true;
    } else if (std::strcmp(argv[i], "--verify-almost") == 0) {
      verify_almost_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  if (verify_stream_mode) {
    return verify_stream(json_path.empty() ? "BENCH_cpm.json" : json_path);
  }
  if (verify_almost_mode) {
    return verify_almost(json_path.empty() ? "BENCH_cpm_almost.json"
                                           : json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
