// Microbenchmarks: the Clique Percolation Method itself.
//
// The paper's LP-CPM needed 93 hours on 48 cores for the April-2010
// topology; these benchmarks demonstrate the same parallel structure
// (threads sweep), the maximal-clique reduction vs the literal
// k-clique-graph construction (reference CPM) at small scale, and the
// single-sweep engine vs the per-k rescan for all-k extraction.
//
// Special mode (used by the `perf_cpm_verify_sweep` ctest):
//   perf_cpm --verify-sweep
// runs both engines on the default synthetic graph, checks the sweep output
// is identical to the per-k oracle for every k (communities, clique ids and
// the nesting tree), prints the all-k extraction speedup, and exits without
// running the registered benchmarks.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "clique/parallel_cliques.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cpm/engine.h"
#include "cpm/reference_cpm.h"
#include "cpm/sweep_cpm.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

Graph random_graph(std::size_t n, double p, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(n);
  return b.build();
}

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::test_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

// The suite's default experiment scale; large enough that the all-k
// comparison reflects real overlap-list sizes (~2M pairs).
const Graph& bench_graph() {
  static const Graph g = [] {
    SynthParams params = SynthParams::bench_scale();
    return generate_ecosystem(params).topology.graph;
  }();
  return g;
}

const std::vector<NodeSet>& bench_cliques() {
  static const std::vector<NodeSet> cliques = [] {
    ThreadPool pool(0);
    return parallel_maximal_cliques(bench_graph(), pool, 2);
  }();
  return cliques;
}

void BM_Cpm_Threads(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  CpmOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  std::size_t communities = 0;
  for (auto _ : state) {
    communities = run_cpm(g, options).total_communities();
    benchmark::DoNotOptimize(communities);
  }
  state.counters["communities"] = static_cast<double>(communities);
}
BENCHMARK(BM_Cpm_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// All-k extraction over pre-enumerated cliques: the tentpole comparison.
// The per-k path rescans the overlap list once per k; the sweep unites each
// pair exactly once and snapshots communities level by level.
void BM_Cpm_PerKAllK(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<NodeSet> cliques = bench_cliques();  // copy
    state.ResumeTiming();
    auto result = run_cpm_on_cliques(g, std::move(cliques), {});
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_PerKAllK)->Unit(benchmark::kMillisecond);

void BM_Cpm_SweepAllK(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<NodeSet> cliques = bench_cliques();  // copy
    state.ResumeTiming();
    auto result = run_sweep_cpm_on_cliques(g, std::move(cliques), {});
    benchmark::DoNotOptimize(result.cpm.total_communities());
    benchmark::DoNotOptimize(result.tree.nodes().size());
  }
}
BENCHMARK(BM_Cpm_SweepAllK)->Unit(benchmark::kMillisecond);

void BM_Cpm_MaximalCliqueReduction(benchmark::State& state) {
  // Percolation over maximal cliques (ours) on a dense random graph.
  const Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 0.4, 3);
  for (auto _ : state) {
    auto result = run_cpm(g);
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_MaximalCliqueReduction)->Arg(20)->Arg(40)->Arg(80);

void BM_Cpm_ReferenceKCliqueGraph(benchmark::State& state) {
  // Ablation: the literal definition (enumerate k-cliques, pairwise
  // adjacency) — exponentially slower, hence the tiny sizes.
  const Graph g = random_graph(static_cast<std::size_t>(state.range(0)), 0.4, 3);
  for (auto _ : state) {
    std::size_t total = 0;
    for (std::size_t k = 3; k <= 5; ++k) {
      total += reference_k_clique_communities(g, k).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Cpm_ReferenceKCliqueGraph)->Arg(20)->Arg(40);

void BM_Cpm_PerKScaling(benchmark::State& state) {
  // Cost of restricting the k range: percolating only high k is cheap.
  const Graph& g = ecosystem_graph();
  CpmOptions options;
  options.min_k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = run_cpm(g, options);
    benchmark::DoNotOptimize(result.total_communities());
  }
}
BENCHMARK(BM_Cpm_PerKScaling)->Arg(2)->Arg(6)->Arg(12)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- --verify-sweep

bool same_communities(const CpmResult& a, const CpmResult& b) {
  if (a.min_k != b.min_k || a.max_k != b.max_k) return false;
  for (std::size_t k = a.min_k; k <= a.max_k; ++k) {
    const CommunitySet& sa = a.at(k);
    const CommunitySet& sb = b.at(k);
    if (sa.count() != sb.count()) return false;
    for (CommunityId id = 0; id < sa.count(); ++id) {
      if (sa.communities[id].nodes != sb.communities[id].nodes) return false;
      if (sa.communities[id].clique_ids != sb.communities[id].clique_ids) {
        return false;
      }
    }
    if (sa.community_of_clique != sb.community_of_clique) return false;
  }
  return true;
}

bool same_tree(const CommunityTree& a, const CommunityTree& b) {
  if (a.nodes().size() != b.nodes().size()) return false;
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const TreeNode& na = a.nodes()[i];
    const TreeNode& nb = b.nodes()[i];
    if (na.k != nb.k || na.community_id != nb.community_id ||
        na.size != nb.size || na.parent != nb.parent ||
        na.is_main != nb.is_main) {
      return false;
    }
  }
  return true;
}

// Verifies sweep == per-k oracle on the default synthetic graph and reports
// the all-k extraction speedup. Gates only on identity: timing is printed
// for the record but never fails the check (CI machines are noisy).
int verify_sweep() {
  const Graph& g = bench_graph();
  const std::vector<NodeSet>& cliques = bench_cliques();
  std::cout << "verify-sweep: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, " << cliques.size()
            << " maximal cliques\n";

  constexpr int kRounds = 3;
  double best_per_k = 1e100;
  double best_sweep = 1e100;
  CpmResult per_k;
  SweepCpmResult sweep;
  for (int round = 0; round < kRounds; ++round) {
    {
      std::vector<NodeSet> copy = cliques;
      Timer t;
      per_k = run_cpm_on_cliques(g, std::move(copy), {});
      best_per_k = std::min(best_per_k, t.seconds());
    }
    {
      std::vector<NodeSet> copy = cliques;
      Timer t;
      sweep = run_sweep_cpm_on_cliques(g, std::move(copy), {});
      best_sweep = std::min(best_sweep, t.seconds());
    }
  }

  if (!same_communities(per_k, sweep.cpm)) {
    std::cerr << "verify-sweep: FAIL — sweep communities differ from the "
                 "per-k oracle\n";
    return 1;
  }
  const CommunityTree oracle_tree = CommunityTree::build(per_k);
  if (!same_tree(oracle_tree, sweep.tree)) {
    std::cerr << "verify-sweep: FAIL — sweep tree differs from "
                 "CommunityTree::build over the per-k result\n";
    return 1;
  }

  std::cout << "verify-sweep: OK — identical communities and tree for k in ["
            << per_k.min_k << ", " << per_k.max_k << "] ("
            << per_k.total_communities() << " communities)\n";
  std::cout << "verify-sweep: all-k extraction best of " << kRounds
            << ": per_k " << fixed(best_per_k * 1e3, 2) << " ms, sweep "
            << fixed(best_sweep * 1e3, 2) << " ms, speedup "
            << fixed(best_per_k / best_sweep, 2) << "x\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify-sweep") == 0) return verify_sweep();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
