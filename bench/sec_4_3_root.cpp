// Section 4.3 — root communities: small regional cliques.
//
// Paper: 554 root communities (k in [2:14]); parallel roots average 5.09
// ASes; 14 have a full-share IXP (often small/non-European IXPs: WIX, KhIX,
// SIX, ...); 382 are fully contained in one country — regional multi-homing
// cliques.
#include "harness.h"

#include <map>

#include "common/table.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const PipelineResult result = kcc::bench::run_harness(config);
  const AsEcosystem& eco = result.eco;

  std::size_t root_count = 0, root_parallel = 0, full_share = 0,
              country_contained = 0;
  double parallel_size_sum = 0.0;
  std::map<std::string, std::size_t> full_share_countries;
  for (const auto& p : result.profiles) {
    if (result.bands.band_of(p.k) != Band::kRoot) continue;
    ++root_count;
    if (p.is_main) continue;
    ++root_parallel;
    parallel_size_sum += double(p.size);
    if (!p.full_share.empty()) {
      ++full_share;
      ++full_share_countries[eco.ixps.ixp(p.full_share.front()).country];
    }
    if (!p.containing_country.empty()) ++country_contained;
  }

  TextTable table({"metric", "paper", "measured"});
  table.add("root communities", 554, root_count);
  table.add("mean parallel size", "5.09",
            fixed(root_parallel ? parallel_size_sum / double(root_parallel)
                                : 0.0,
                  2));
  table.add("parallel with full-share IXP", 14, full_share);
  table.add("country-contained communities", 382, country_contained);
  std::cout << table;

  std::cout << "\nCountries hosting full-share root IXPs ("
            << full_share_countries.size()
            << " distinct; paper: NZ, RU, US, SK, AU, IN, BR, CZ, CH, IT, "
               "AT...):\n";
  for (const auto& [country, count] : full_share_countries) {
    std::cout << "  " << country << ": " << count << "\n";
  }

  const double contained_share =
      root_parallel ? double(country_contained) / double(root_parallel) : 0.0;
  std::cout << "\nShape check: " << percent(contained_share)
            << " of root parallel communities are country-contained "
            << "(paper: 382 of ~540 parallel roots, ~70%)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Section 4.3 — root communities",
      "554 root communities, mean parallel size 5.09; 14 full-share (small "
      "IXPs worldwide); 382 country-contained regional cliques",
      body);
}
