// Extension — community evolution across churned snapshots (AS birth,
// rehoming, link loss), in the spirit of the AS-evolution study the paper
// cites as [22].
#include "harness.h"

#include "analysis/temporal.h"
#include "common/table.h"
#include "synth/as_topology.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  SynthParams params = SynthParams::test_scale();
  params.seed = config.pipeline.synth.seed;
  const AsEcosystem eco = generate_ecosystem(params);
  std::cout << "[run] temporal tracking at test scale: " << eco.num_ases()
            << " ASes\n\n";

  TextTable table({"churn level", "k", "snapshots", "survivals", "births",
                   "deaths", "mean survivor Jaccard"});
  for (double churn_scale : {0.5, 1.0, 2.0}) {
    ChurnParams churn;
    churn.stub_rewire_fraction = 0.05 * churn_scale;
    churn.edge_drop_fraction = 0.02 * churn_scale;
    churn.new_edges = static_cast<std::size_t>(60 * churn_scale);
    for (std::size_t k : {3u, 5u}) {
      const TemporalSummary summary = track_communities(
          eco.topology.graph, k, 3, churn, params.seed);
      table.add(fixed(churn_scale, 1) + "x", k,
                summary.community_counts.size(), summary.survivals,
                summary.births, summary.deaths,
                fixed(summary.mean_survivor_jaccard, 3));
    }
  }
  std::cout << table;
  std::cout << "\nShape: higher churn lowers survivor similarity and raises "
               "birth/death turnover; higher k communities (denser cores) "
               "survive churn better than k=3 fringes.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — temporal community evolution",
      "k-clique communities tracked across topology churn: stable cores vs "
      "volatile fringes",
      body);
}
