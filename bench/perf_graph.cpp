// Microbenchmarks: the graph substrate underneath everything — degeneracy
// peeling (Bron–Kerbosch front end and the k-core baseline), connected
// components (k=2 percolation fast path), triangle counting, edge tests,
// and induced subgraphs (tag analysis).
//
// Special mode:
//   perf_graph --verify-has-edge
// the has_edge micro-benchmark assertion: checks the galloping edge test
// against a naive linear-scan reference on hub/star/ecosystem/random
// fixtures (positive, negative, boundary and out-of-range queries), times
// a query sweep, and exits non-zero on any disagreement. Registered as the
// tier-1 ctest perf_graph_verify_has_edge.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "common/rng.h"
#include "common/timer.h"
#include "graph/clustering.h"
#include "graph/degeneracy.h"
#include "graph/graph_algorithms.h"
#include "graph/subgraph.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    return generate_ecosystem(SynthParams::test_scale()).topology.graph;
  }();
  return g;
}

void BM_DegeneracyOrder(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto r = degeneracy_order(g);
    benchmark::DoNotOptimize(r.degeneracy);
  }
}
BENCHMARK(BM_DegeneracyOrder);

void BM_ConnectedComponents(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto labels = connected_components(g);
    benchmark::DoNotOptimize(labels.count);
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_TriangleCount(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto t = triangle_count(g);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TriangleCount);

void BM_InducedSubgraph(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  // Half the nodes, deterministic selection.
  NodeSet nodes;
  for (NodeId v = 0; v < g.num_nodes(); v += 2) nodes.push_back(v);
  for (auto _ : state) {
    auto sub = induced_subgraph(g, nodes);
    benchmark::DoNotOptimize(sub.graph.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph);

void BM_GraphBuild(benchmark::State& state) {
  const auto edges = ecosystem_graph().edges();
  const std::size_t n = ecosystem_graph().num_nodes();
  for (auto _ : state) {
    Graph g = Graph::from_edges(n, edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphBuild);

void BM_EcosystemGeneration(benchmark::State& state) {
  SynthParams params = SynthParams::test_scale();
  for (auto _ : state) {
    params.seed += 1;  // avoid measuring a warm deterministic path
    auto eco = generate_ecosystem(params);
    benchmark::DoNotOptimize(eco.topology.graph.num_edges());
  }
}
BENCHMARK(BM_EcosystemGeneration)->Unit(benchmark::kMillisecond);

void BM_HasEdge_Ecosystem(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  Rng rng(11);
  std::vector<std::pair<NodeId, NodeId>> queries;
  for (int i = 0; i < 4096; ++i) {
    queries.emplace_back(static_cast<NodeId>(rng.next_below(g.num_nodes())),
                         static_cast<NodeId>(rng.next_below(g.num_nodes())));
  }
  std::size_t hits = 0;
  for (auto _ : state) {
    for (const auto& [u, v] : queries) hits += g.has_edge(u, v) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_HasEdge_Ecosystem);

// ------------------------------------------------------ --verify-has-edge

// Naive reference: scan the full adjacency list of u.
bool has_edge_naive(const Graph& g, NodeId u, NodeId v) {
  if (u >= g.num_nodes() || v >= g.num_nodes() || u == v) return false;
  for (const NodeId w : g.neighbors(u)) {
    if (w == v) return true;
  }
  return false;
}

int verify_has_edge() {
  struct Fixture {
    std::string name;
    Graph graph;
  };
  std::vector<Fixture> fixtures;
  {
    // Hub: node 0 adjacent to everyone — the galloping case. The probe
    // always runs on the degree-1 side, but querying hub-to-hub after
    // adding a clique among high ids exercises long-list search too.
    GraphBuilder b(4000);
    for (NodeId v = 1; v < 4000; ++v) b.add_edge(0, v);
    for (NodeId v = 3990; v < 4000; ++v) {
      for (NodeId w = v + 1; w < 4000; ++w) b.add_edge(v, w);
    }
    fixtures.push_back({"hub", b.build()});
  }
  {
    // Star chain: short lists, exercises the linear-scan path.
    GraphBuilder b(64);
    for (NodeId v = 1; v < 64; ++v) b.add_edge(v - 1, v);
    fixtures.push_back({"chain", b.build()});
  }
  fixtures.push_back(
      {"ecosystem",
       generate_ecosystem(SynthParams::test_scale()).topology.graph});
  {
    Rng rng(5);
    GraphBuilder b(500);
    for (int e = 0; e < 6000; ++e) {
      const auto u = static_cast<NodeId>(rng.next_below(500));
      const auto v = static_cast<NodeId>(rng.next_below(500));
      if (u != v) b.add_edge(u, v);
    }
    b.ensure_nodes(500);
    fixtures.push_back({"random", b.build()});
  }

  std::size_t checked = 0;
  for (const Fixture& fixture : fixtures) {
    const Graph& g = fixture.graph;
    const std::size_t n = g.num_nodes();
    // Every real edge, in both orientations.
    for (const auto& [u, v] : g.edges()) {
      if (!g.has_edge(u, v) || !g.has_edge(v, u)) {
        std::cerr << "verify-has-edge: FAIL on " << fixture.name
                  << ": missing edge (" << u << ", " << v << ")\n";
        return 1;
      }
      checked += 2;
    }
    // Random queries (mostly negative), self-loops, boundaries, out of
    // range — all against the naive reference.
    Rng rng(99);
    std::vector<std::pair<NodeId, NodeId>> probes;
    for (int i = 0; i < 20000; ++i) {
      probes.emplace_back(static_cast<NodeId>(rng.next_below(n)),
                          static_cast<NodeId>(rng.next_below(n)));
    }
    for (NodeId v = 0; v < std::min<std::size_t>(n, 64); ++v) {
      probes.emplace_back(v, v);                              // self-loop
      probes.emplace_back(v, 0);                              // boundary low
      probes.emplace_back(v, static_cast<NodeId>(n - 1));     // boundary high
      probes.emplace_back(v, static_cast<NodeId>(n));         // out of range
      probes.emplace_back(static_cast<NodeId>(n + 17), v);    // out of range
    }
    for (const auto& [u, v] : probes) {
      if (g.has_edge(u, v) != has_edge_naive(g, u, v)) {
        std::cerr << "verify-has-edge: FAIL on " << fixture.name << ": ("
                  << u << ", " << v << ") galloping="
                  << g.has_edge(u, v) << " naive=" << has_edge_naive(g, u, v)
                  << "\n";
        return 1;
      }
      ++checked;
    }
    // Micro-benchmark assertion: time the sweep so a pathological
    // regression (e.g. accidental O(degree) scan on hubs) is visible in
    // the test log.
    Timer timer;
    std::size_t hits = 0;
    for (const auto& [u, v] : probes) hits += g.has_edge(u, v) ? 1 : 0;
    std::cout << "verify-has-edge: " << fixture.name << ": " << probes.size()
              << " probes in " << timer.seconds() * 1e3 << " ms (" << hits
              << " hits)\n";
  }
  std::cout << "verify-has-edge: OK — " << checked << " queries agree with "
            << "the naive reference\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify-has-edge") == 0) {
      return verify_has_edge();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
