// Microbenchmarks: the graph substrate underneath everything — degeneracy
// peeling (Bron–Kerbosch front end and the k-core baseline), connected
// components (k=2 percolation fast path), triangle counting, and induced
// subgraphs (tag analysis).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/clustering.h"
#include "graph/degeneracy.h"
#include "graph/graph_algorithms.h"
#include "graph/subgraph.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

const Graph& ecosystem_graph() {
  static const Graph g = [] {
    return generate_ecosystem(SynthParams::test_scale()).topology.graph;
  }();
  return g;
}

void BM_DegeneracyOrder(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto r = degeneracy_order(g);
    benchmark::DoNotOptimize(r.degeneracy);
  }
}
BENCHMARK(BM_DegeneracyOrder);

void BM_ConnectedComponents(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto labels = connected_components(g);
    benchmark::DoNotOptimize(labels.count);
  }
}
BENCHMARK(BM_ConnectedComponents);

void BM_TriangleCount(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  for (auto _ : state) {
    auto t = triangle_count(g);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TriangleCount);

void BM_InducedSubgraph(benchmark::State& state) {
  const Graph& g = ecosystem_graph();
  // Half the nodes, deterministic selection.
  NodeSet nodes;
  for (NodeId v = 0; v < g.num_nodes(); v += 2) nodes.push_back(v);
  for (auto _ : state) {
    auto sub = induced_subgraph(g, nodes);
    benchmark::DoNotOptimize(sub.graph.num_edges());
  }
}
BENCHMARK(BM_InducedSubgraph);

void BM_GraphBuild(benchmark::State& state) {
  const auto edges = ecosystem_graph().edges();
  const std::size_t n = ecosystem_graph().num_nodes();
  for (auto _ : state) {
    Graph g = Graph::from_edges(n, edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphBuild);

void BM_EcosystemGeneration(benchmark::State& state) {
  SynthParams params = SynthParams::test_scale();
  for (auto _ : state) {
    params.seed += 1;  // avoid measuring a warm deterministic path
    auto eco = generate_ecosystem(params);
    benchmark::DoNotOptimize(eco.topology.graph.num_edges());
  }
}
BENCHMARK(BM_EcosystemGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
