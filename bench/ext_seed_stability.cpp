// Extension — seed stability of the reproduction: headline aggregates
// across independently generated ecosystems. A reproduction whose shape
// claims only hold for one lucky seed would be worthless; this harness
// quantifies the spread.
#include "harness.h"

#include <cmath>

#include "common/table.h"

namespace {

struct Stats {
  double mean = 0.0;
  double stddev = 0.0;
};

Stats stats_of(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= double(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / double(xs.size()));
  return s;
}

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  constexpr int kSeeds = 5;
  std::vector<double> total_communities, max_k, apex_size, crown_full_share,
      root_country_contained, overlap_mean;

  for (int s = 0; s < kSeeds; ++s) {
    PipelineOptions options;
    options.synth = SynthParams::test_scale();
    options.synth.seed = config.pipeline.synth.seed + std::uint64_t(s) * 101;
    const PipelineResult r = run_pipeline(options);

    total_communities.push_back(double(r.cpm.total_communities()));
    max_k.push_back(double(r.cpm.max_k));
    const TreeNode& apex = r.tree.nodes()[r.tree.apex()];
    apex_size.push_back(double(apex.size));
    std::size_t crown_fs = 0, root_cc = 0;
    for (const auto& p : r.profiles) {
      if (r.bands.band_of(p.k) == Band::kCrown && !p.full_share.empty()) {
        ++crown_fs;
      }
      if (r.bands.band_of(p.k) == Band::kRoot && !p.is_main &&
          !p.containing_country.empty()) {
        ++root_cc;
      }
    }
    crown_full_share.push_back(double(crown_fs));
    root_country_contained.push_back(double(root_cc));
    overlap_mean.push_back(aggregate_parallel_vs_main(r.overlaps).mean);
  }

  TextTable table({"metric", "mean", "stddev"});
  auto row = [&](const char* name, const std::vector<double>& xs) {
    const Stats s = stats_of(xs);
    table.add(name, fixed(s.mean, 2), fixed(s.stddev, 2));
  };
  row("total communities", total_communities);
  row("max k", max_k);
  row("apex community size", apex_size);
  row("crown full-share communities", crown_full_share);
  row("root country-contained communities", root_country_contained);
  row("mean parallel-vs-main overlap", overlap_mean);
  std::cout << kSeeds << " independent seeds at test scale:\n" << table;
  std::cout << "\nShape claims hold across seeds when the stddev stays small "
               "relative to the mean.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Extension — seed stability",
      "headline reproduction aggregates across independent generator seeds",
      body);
}
