// Table 2.1 — IXP tagging summary: on-IXP vs not-on-IXP AS counts.
#include "harness.h"

#include "common/table.h"
#include "data/tags.h"

namespace {

int body(const kcc::bench::HarnessConfig& config) {
  using namespace kcc;
  const AsEcosystem eco = generate_ecosystem(config.pipeline.synth);
  const IxpTagCounts counts = count_ixp_tags(eco.ixps, eco.num_ases());
  const double n = static_cast<double>(eco.num_ases());

  TextTable table({"series", "on-IXP", "not-on-IXP", "on-IXP share"});
  table.add("paper (35,390 ASes)", 4462, 30928, percent(4462.0 / 35390.0));
  table.add("measured (" + std::to_string(eco.num_ases()) + " ASes)",
            counts.on_ixp, counts.not_on_ixp,
            percent(double(counts.on_ixp) / n));
  std::cout << table;
  std::cout << "\nShape check: on-IXP ASes are a clear minority ("
            << percent(double(counts.on_ixp) / n) << " vs paper "
            << percent(4462.0 / 35390.0) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return kcc::bench::guarded_main(
      argc, argv, "Table 2.1 — IXP tagging",
      "4,462 on-IXP ASes vs 30,928 not-on-IXP ASes (12.6% on-IXP)", body);
}
