// Regional (root-band) community analysis, paper Sec. 4.3: small parallel
// communities whose members all share one country — the multi-homing
// customer/provider cliques.
//
//   ./regional_communities --scale=test|bench --seed=42

#include <algorithm>
#include <iostream>
#include <map>

#include "analysis/pipeline.h"
#include "common/cli.h"
#include "common/table.h"
#include "data/tags.h"

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    const CliArgs args(argc, argv, {"scale", "seed"});
    PipelineOptions options;
    options.synth = args.get_string("scale", "bench") == "test"
                        ? SynthParams::test_scale()
                        : SynthParams::bench_scale();
    options.synth.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const PipelineResult result = run_pipeline(options);
    const GeoDataset& geo = result.eco.geo;

    std::size_t root_total = 0, root_contained = 0;
    double size_sum = 0.0;
    std::map<std::string, std::size_t> by_country;
    for (const CommunityTagProfile& p : result.profiles) {
      if (result.bands.band_of(p.k) != Band::kRoot || p.is_main) continue;
      ++root_total;
      size_sum += static_cast<double>(p.size);
      if (!p.containing_country.empty()) {
        ++root_contained;
        ++by_country[geo.country(p.containing_country.front()).code];
      }
    }

    std::cout << "Root parallel communities: " << root_total
              << " (mean size "
              << fixed(root_total ? size_sum / double(root_total) : 0.0, 2)
              << ")\n";
    std::cout << "Country-contained (all members share a country): "
              << root_contained << "\n\n";

    std::cout << "Top countries by contained communities:\n";
    TextTable table({"country", "communities"});
    std::vector<std::pair<std::size_t, std::string>> ranked;
    for (const auto& [code, count] : by_country) {
      ranked.emplace_back(count, code);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    for (std::size_t i = 0; i < std::min<std::size_t>(12, ranked.size()); ++i) {
      table.add(ranked[i].second, ranked[i].first);
    }
    std::cout << table;

    // Geo tag mix inside root communities vs the whole topology.
    std::cout << "\nGeo tag fractions inside root parallel communities:\n";
    TextTable tags({"tag", "fraction"});
    for (GeoTag tag : {GeoTag::kNational, GeoTag::kContinental,
                       GeoTag::kWorldwide, GeoTag::kUnknown}) {
      double sum = 0.0;
      std::size_t n = 0;
      for (const CommunityTagProfile& p : result.profiles) {
        if (result.bands.band_of(p.k) != Band::kRoot || p.is_main) continue;
        const Community& c =
            result.cpm.at(p.k).communities[p.id];
        sum += geo_tag_fraction(geo, c.nodes, tag);
        ++n;
      }
      tags.add(geo_tag_name(tag), fixed(n ? sum / double(n) : 0.0, 3));
    }
    std::cout << tags;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
