// Full paper pipeline on a synthetic AS ecosystem: generate the topology +
// IXP + geography triple, extract every k-clique community, build the
// community tree, and print the Sec. 4 analysis.
//
//   ./as_topology_analysis --scale=test|bench|paper --seed=42 --threads=0
//   ./as_topology_analysis --dot=tree.dot      # also dump Fig. 4.2 as DOT

#include <iostream>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"
#include "common/timer.h"
#include "io/dot_export.h"

namespace {

kcc::SynthParams scale_params(const std::string& scale) {
  if (scale == "test") return kcc::SynthParams::test_scale();
  if (scale == "bench") return kcc::SynthParams::bench_scale();
  if (scale == "paper") return kcc::SynthParams::paper_scale();
  throw kcc::Error("unknown --scale '" + scale + "' (test|bench|paper)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    const CliArgs args(argc, argv, {"scale", "seed", "threads", "dot"});
    PipelineOptions options;
    options.synth = scale_params(args.get_string("scale", "bench"));
    options.synth.seed =
        static_cast<std::uint64_t>(args.get_int("seed", 42));
    options.cpm.threads =
        static_cast<std::size_t>(args.get_int("threads", 0));

    Timer timer;
    const PipelineResult result = run_pipeline(options);
    std::cout << "Pipeline completed in " << fixed(timer.seconds(), 2)
              << " s\n\n";

    print_ecosystem_summary(std::cout, result.eco);
    std::cout << "\nMaximal cliques: " << result.cpm.cliques.size()
              << " (largest: " << result.cpm.max_k << ")\n";
    std::cout << "k-clique communities: " << result.cpm.total_communities()
              << " over k in [" << result.cpm.min_k << ", " << result.cpm.max_k
              << "]\n";
    std::cout << "Unique-community k values:";
    for (std::size_t k : result.cpm.unique_community_ks()) {
      std::cout << " " << k;
    }
    std::cout << "\n\nPer-k structure:\n";
    print_level_table(std::cout, result);
    std::cout << "\n";
    print_band_summary(std::cout, result);
    std::cout << "\n";
    print_overlap_summary(std::cout, result);

    if (args.has("dot")) {
      const std::string path = args.get_string("dot", "tree.dot");
      write_tree_dot_file(path, result.tree, 6);
      std::cout << "\nCommunity tree written to " << path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
