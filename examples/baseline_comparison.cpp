// Why the paper picks k-clique communities over partitions and over GCE
// (paper Sec. 1): k-core/k-dense partition the graph (no overlap), and the
// GCE fitness function rejects Tier-1-style communities whose members have
// far more external (customer) links than internal ones.
//
//   ./baseline_comparison --seed=42

#include <algorithm>
#include <iostream>

#include "analysis/pipeline.h"
#include "baselines/gce.h"
#include "baselines/kcore.h"
#include "baselines/kdense.h"
#include "common/cli.h"
#include "common/table.h"
#include "metrics/community_metrics.h"

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    const CliArgs args(argc, argv, {"seed", "engine"});
    SynthParams params = SynthParams::test_scale();
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    const AsEcosystem eco = generate_ecosystem(params);
    const Graph& g = eco.topology.graph;

    std::cout << "Topology: " << g.num_nodes() << " ASes, " << g.num_edges()
              << " edges\n\n";

    // --- cover vs partition ---
    cpm::Options cpm_options;
    if (args.has("engine")) {
      cpm_options.engine = args.get_string("engine", "");
      cpm::engine_info(cpm_options.engine);  // fail fast on unknown names
    }
    const CpmResult cpm = cpm::Engine(cpm_options).run(g).cpm;
    const KCoreDecomposition kcore = kcore_decomposition(g);
    TextTable table({"method", "structure", "count", "overlap allowed"});
    table.add("k-clique communities (CPM)", "cover",
              cpm.total_communities(), "yes");
    table.add("k-core shells", "partition",
              static_cast<std::size_t>(kcore.max_core) + 1, "no");
    std::size_t kdense_count = 0;
    for (std::uint32_t k = 3; k <= kcore.max_core + 2; ++k) {
      kdense_count += kdense_components(g, k).size();
    }
    table.add("k-dense components (all k)", "nested partition", kdense_count,
              "no");
    std::cout << table << "\n";

    // --- the Tier-1 argument ---
    // The Tier-1 mesh is nodes [0, num_tier1): a genuine community (full
    // mesh!) whose members direct almost all links outside (customers).
    NodeSet tier1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (eco.roles[v] == AsRole::kTier1) tier1.push_back(v);
    }
    std::cout << "Tier-1 mesh: " << tier1.size() << " ASes, link density "
              << fixed(link_density(g, tier1), 3) << ", average ODF "
              << fixed(average_odf(g, tier1), 3)
              << " (almost all links lead outside)\n";
    std::cout << "GCE fitness of the Tier-1 mesh: "
              << fixed(gce_fitness(g, tier1, 1.0), 4)
              << "  — near zero, so GCE will never report it\n";

    // Does CPM capture it? Find the largest k whose communities contain the
    // whole mesh.
    std::size_t best_k = 0;
    for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
      for (const Community& c : cpm.at(k).communities) {
        if (std::includes(c.nodes.begin(), c.nodes.end(), tier1.begin(),
                          tier1.end())) {
          best_k = k;
          break;
        }
      }
    }
    std::cout << "CPM: the Tier-1 mesh is contained in a community up to k = "
              << best_k << "\n\n";

    // --- GCE on the full graph (bounded seeds for runtime) ---
    GceOptions gce;
    gce.max_seeds = 1000;
    gce.max_community_size = 40;
    const auto gce_communities = greedy_clique_expansion(g, gce);
    std::cout << "GCE (1000 largest seeds): " << gce_communities.size()
              << " communities\n";
    std::size_t covering_tier1 = 0;
    for (const auto& c : gce_communities) {
      if (std::includes(c.begin(), c.end(), tier1.begin(), tier1.end())) {
        ++covering_tier1;
      }
    }
    std::cout << "GCE communities containing the Tier-1 mesh: "
              << covering_tier1 << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
