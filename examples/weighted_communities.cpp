// Weighted CPM extension: weight AS links by peering strength (1 + number
// of shared IXPs) and sweep the intensity threshold — high thresholds
// isolate the IXP-backed cores of each community.
//
//   ./weighted_communities --k=4 --seed=42

#include <algorithm>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "cpm/engine.h"
#include "graph/weighted_graph.h"
#include "synth/as_topology.h"

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    const CliArgs args(argc, argv, {"k", "seed"});
    const auto k = static_cast<std::size_t>(args.get_int("k", 4));
    SynthParams params = SynthParams::test_scale();
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const AsEcosystem eco = generate_ecosystem(params);
    const Graph& g = eco.topology.graph;
    const EdgeWeights weights = weights_from_ixps(g, eco.ixps);
    std::cout << "Topology: " << g.num_nodes() << " ASes, " << g.num_edges()
              << " links; peering weights in [" << weights.min_weight()
              << ", " << weights.max_weight() << "]\n\n";

    const std::vector<double> thresholds{0.0, 1.1, 1.5, 2.0, 3.0};
    TextTable table({"intensity threshold", "communities", "largest"});
    for (double threshold : thresholds) {
      cpm::Options options;
      options.min_k = k;
      options.max_k = k;
      options.intensity_threshold = threshold;
      const cpm::Result result =
          cpm::Engine(options).run_weighted(g, weights);
      std::size_t count = 0, largest = 0;
      if (result.cpm.has_k(k)) {
        count = result.cpm.at(k).count();
        for (const Community& c : result.cpm.at(k).communities) {
          largest = std::max(largest, c.size());
        }
      }
      table.add(fixed(threshold, 1), count, largest);
    }
    std::cout << table;
    std::cout << "\nInterpretation: raising the intensity threshold prunes "
                 "k-cliques with weak (single-IXP or no-IXP) links, leaving "
                 "the multi-IXP-backed community cores.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
