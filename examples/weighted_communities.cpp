// Weighted CPM extension: weight AS links by peering strength (1 + number
// of shared IXPs) and sweep the intensity threshold — high thresholds
// isolate the IXP-backed cores of each community.
//
//   ./weighted_communities --k=4 --seed=42

#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "cpm/weighted_cpm.h"
#include "graph/weighted_graph.h"
#include "synth/as_topology.h"

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    const CliArgs args(argc, argv, {"k", "seed"});
    const auto k = static_cast<std::size_t>(args.get_int("k", 4));
    SynthParams params = SynthParams::test_scale();
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const AsEcosystem eco = generate_ecosystem(params);
    const Graph& g = eco.topology.graph;
    const EdgeWeights weights = weights_from_ixps(g, eco.ixps);
    std::cout << "Topology: " << g.num_nodes() << " ASes, " << g.num_edges()
              << " links; peering weights in [" << weights.min_weight()
              << ", " << weights.max_weight() << "]\n\n";

    const std::vector<double> thresholds{0.0, 1.1, 1.5, 2.0, 3.0};
    TextTable table({"intensity threshold", "surviving k-cliques",
                     "communities", "largest"});
    for (const auto& point : intensity_sweep(g, weights, k, thresholds)) {
      table.add(fixed(point.threshold, 1), point.surviving_cliques,
                point.community_count, point.largest_community);
    }
    std::cout << table;
    std::cout << "\nInterpretation: raising the intensity threshold prunes "
                 "k-cliques with weak (single-IXP or no-IXP) links, leaving "
                 "the multi-IXP-backed community cores.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
