// Quickstart: build a small graph, extract its k-clique communities, and
// print the community tree.
//
// The example graph is the classic CPM illustration: two 5-cliques sharing
// three nodes, plus a 4-clique pendant — small enough to verify by hand.
//
//   ./quickstart            # run on the built-in graph
//   ./quickstart --edges=my_graph.txt   # run on an edge-list file
//   ./quickstart --engine=per_k         # compare against the per-k engine

#include <iostream>

#include "common/cli.h"
#include "cpm/engine.h"
#include "io/dot_export.h"
#include "io/edge_list.h"

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    std::vector<std::string> known{"edges"};
    for (const std::string& flag : cpm::engine_cli_flags()) {
      known.push_back(flag);
    }
    const CliArgs args(argc, argv, known);

    LabeledGraph input;
    if (args.has("edges")) {
      input = read_edge_list_file(args.get_string("edges", ""));
    } else {
      // Two 5-cliques {0..4} and {2,3,4,5,6} sharing {2,3,4}, plus a
      // 4-clique {6,7,8,9} hanging off node 6.
      GraphBuilder builder;
      auto mesh = [&](std::initializer_list<NodeId> nodes) {
        std::vector<NodeId> v(nodes);
        for (std::size_t i = 0; i < v.size(); ++i) {
          for (std::size_t j = i + 1; j < v.size(); ++j) {
            builder.add_edge(v[i], v[j]);
          }
        }
      };
      mesh({0, 1, 2, 3, 4});
      mesh({2, 3, 4, 5, 6});
      mesh({6, 7, 8, 9});
      input = with_identity_labels(builder.build());
    }

    std::cout << "Graph: " << input.graph.num_nodes() << " nodes, "
              << input.graph.num_edges() << " edges\n\n";

    // One engine call yields communities for every k AND the nesting tree.
    const cpm::Result result =
        cpm::Engine(cpm::options_from_cli(args)).run(input.graph);
    const CpmResult& cpm = result.cpm;
    std::cout << "k-clique communities (k in [" << cpm.min_k << ", "
              << cpm.max_k << "], " << cpm.total_communities() << " total, "
              << result.engine_name << " engine):\n";
    for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
      for (const Community& c : cpm.at(k).communities) {
        std::cout << "  k" << k << "id" << c.id << " = {";
        for (std::size_t i = 0; i < c.nodes.size(); ++i) {
          std::cout << (i ? ", " : " ") << input.labels[c.nodes[i]];
        }
        std::cout << " }\n";
      }
    }

    const CommunityTree& tree = result.tree;
    std::cout << "\nCommunity tree (" << tree.main_count() << " main, "
              << tree.parallel_count() << " parallel):\n";
    for (const TreeNode& node : tree.nodes()) {
      std::cout << "  k" << node.k << "id" << node.community_id
                << (node.is_main ? " [main]" : "        ") << " size "
                << node.size;
      if (node.parent >= 0) {
        const TreeNode& parent = tree.nodes()[node.parent];
        std::cout << "  parent k" << parent.k << "id" << parent.community_id;
      }
      std::cout << "\n";
    }

    std::cout << "\nDOT output (render with `dot -Tpng`):\n";
    write_tree_dot(std::cout, tree);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
