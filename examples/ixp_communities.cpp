// IXP-centric community interpretation (paper Sec. 4.1): which IXP shares
// the most members with each community, which communities live entirely
// inside one IXP, and what the communities inside a single big IXP's
// induced subgraph look like.
//
//   ./ixp_communities --scale=test|bench --seed=42

#include <iostream>

#include "analysis/pipeline.h"
#include "common/cli.h"
#include "common/table.h"
#include "cpm/engine.h"
#include "graph/subgraph.h"

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    std::vector<std::string> known{"scale", "seed"};
    for (const std::string& flag : cpm::engine_cli_flags()) {
      known.push_back(flag);
    }
    const CliArgs args(argc, argv, known);
    PipelineOptions options;
    options.synth = args.get_string("scale", "bench") == "test"
                        ? SynthParams::test_scale()
                        : SynthParams::bench_scale();
    options.synth.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    options.cpm = cpm::options_from_cli(args, options.cpm);

    const PipelineResult result = run_pipeline(options);
    const AsEcosystem& eco = result.eco;

    // --- max-share / full-share table for the crown band ---
    std::cout << "Crown communities (k > " << result.bands.trunk_max_k
              << ") and their IXPs:\n";
    TextTable crown({"community", "size", "max-share IXP", "shared",
                     "fraction", "full-share"});
    for (const CommunityTagProfile& p : result.profiles) {
      if (result.bands.band_of(p.k) != Band::kCrown) continue;
      std::string name = "-", shared = "-", fraction = "-";
      if (p.max_share) {
        name = eco.ixps.ixp(p.max_share->ixp).name;
        shared = std::to_string(p.max_share->shared);
        fraction = percent(p.max_share->fraction);
      }
      std::string full = p.full_share.empty()
                             ? "no"
                             : eco.ixps.ixp(p.full_share.front()).name;
      crown.add("k" + std::to_string(p.k) + "id" + std::to_string(p.id),
                p.size, name, shared, fraction, full);
    }
    std::cout << crown << "\n";

    // --- full-share IXPs in the root band (paper: WIX, KhIX, SIX, ...) ---
    std::cout << "Root communities fully inside one IXP:\n";
    TextTable root({"community", "size", "full-share IXP", "IXP country"});
    std::size_t root_full = 0;
    for (const CommunityTagProfile& p : result.profiles) {
      if (result.bands.band_of(p.k) != Band::kRoot || p.full_share.empty() ||
          p.is_main) {
        continue;
      }
      ++root_full;
      const Ixp& ixp = eco.ixps.ixp(p.full_share.front());
      if (root.row_count() < 20) {
        root.add("k" + std::to_string(p.k) + "id" + std::to_string(p.id),
                 p.size, ixp.name, ixp.country);
      }
    }
    std::cout << root;
    std::cout << "(" << root_full << " root parallel communities total with a "
              << "full-share IXP)\n\n";

    // --- communities inside one big IXP's induced subgraph ---
    const IxpId big = eco.big_ixps.front();
    const Ixp& big_ixp = eco.ixps.ixp(big);
    const InducedSubgraph sub =
        induced_subgraph(eco.topology.graph, big_ixp.participants);
    std::cout << big_ixp.name << "-induced subgraph: "
              << sub.graph.num_nodes() << " ASes, " << sub.graph.num_edges()
              << " edges\n";
    cpm::Options inner = options.cpm;
    inner.min_k = 3;
    inner.build_tree = false;  // only the per-k counts matter here
    const CpmResult sub_cpm = cpm::Engine(inner).run(sub.graph).cpm;
    std::cout << "Communities inside it: " << sub_cpm.total_communities()
              << " over k in [" << sub_cpm.min_k << ", " << sub_cpm.max_k
              << "]\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
