// Temporal extension: track k-clique communities across churned snapshots
// of the AS topology (AS birth, multi-homing changes, edge loss) and report
// the community lifecycle — survivals, births, deaths (in the spirit of
// Palla et al. 2007 and the AS-evolution work the paper cites as [22]).
//
//   ./community_evolution --steps=4 --k=4 --seed=42

#include <iostream>

#include "analysis/temporal.h"
#include "common/cli.h"
#include "common/table.h"
#include "synth/as_topology.h"

int main(int argc, char** argv) {
  using namespace kcc;
  try {
    const CliArgs args(argc, argv, {"steps", "k", "seed"});
    const auto steps = static_cast<std::size_t>(args.get_int("steps", 4));
    const auto k = static_cast<std::size_t>(args.get_int("k", 4));
    SynthParams params = SynthParams::test_scale();
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    const AsEcosystem eco = generate_ecosystem(params);
    std::cout << "Initial topology: " << eco.num_ases() << " ASes, "
              << eco.topology.graph.num_edges() << " edges\n";

    ChurnParams churn;  // defaults: 5% stub rewires, 2% edge loss per step
    const TemporalSummary summary = track_communities(
        eco.topology.graph, k, steps, churn, params.seed);

    TextTable counts({"snapshot", "communities at k=" + std::to_string(k)});
    for (std::size_t t = 0; t < summary.community_counts.size(); ++t) {
      counts.add("t" + std::to_string(t), summary.community_counts[t]);
    }
    std::cout << counts << "\n";

    TextTable events({"event", "count"});
    events.add("survivals", summary.survivals);
    events.add("births", summary.births);
    events.add("deaths", summary.deaths);
    std::cout << events;
    std::cout << "\nMean Jaccard similarity of surviving communities: "
              << fixed(summary.mean_survivor_jaccard, 3) << "\n";
    std::cout << "(stable cores persist across churn; small root "
                 "communities are volatile)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
