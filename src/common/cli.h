// Minimal command-line flag parsing for examples and experiment binaries.
//
// Supported forms: --name=value and bare --flag (boolean true). The
// ambiguous "--name value" form is intentionally unsupported. Unknown flags
// raise kcc::Error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace kcc {

class CliArgs {
 public:
  /// Parses argv. `known_flags` lists every accepted flag name (without the
  /// leading dashes); pass an empty list to accept anything.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> known_flags = {});

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace kcc
