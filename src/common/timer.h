// Wall-clock stopwatch for benches and progress reporting.
#pragma once

#include <chrono>

namespace kcc {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  /// Seconds since construction, the last restart(), or the last lap() —
  /// whichever came last. Lets one Timer meter a sequence of phases
  /// (pipeline stages, tracer flush intervals) without resetting seconds().
  double lap() {
    const Clock::time_point now = Clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

  void restart() { start_ = Clock::now(); lap_ = start_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_ = start_;
};

}  // namespace kcc
