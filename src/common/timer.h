// Wall-clock stopwatch for benches and progress reporting.
#pragma once

#include <chrono>

namespace kcc {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

  void restart() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kcc
