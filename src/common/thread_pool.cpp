#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kcc {
namespace {

// Pool instrumentation, registered once and shared by every pool instance.
// Hot-path cost per task: a few relaxed atomic ops plus two steady_clock
// reads — negligible against the chunked jobs parallel_for submits.
struct PoolMetrics {
  obs::Counter& tasks = obs::metrics().counter("thread_pool_tasks_total");
  obs::Counter& idle_micros =
      obs::metrics().counter("thread_pool_idle_micros_total");
  obs::Gauge& queue_depth = obs::metrics().gauge("thread_pool_queue_depth");
  obs::Histogram& task_seconds = obs::metrics().histogram(
      "thread_pool_task_seconds",
      obs::Histogram::exponential_bounds(1e-5, 4.0, 12));
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pool_metrics();  // register instruments before workers can race to use them
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(job));
  }
  pool_metrics().queue_depth.add(1);
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  PoolMetrics& m = pool_metrics();
  for (;;) {
    std::function<void()> job;
    Timer idle_timer;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with drained queue
      job = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    m.queue_depth.add(-1);
    m.idle_micros.inc(static_cast<std::uint64_t>(idle_timer.seconds() * 1e6));
    {
      obs::ScopedSpan span("pool_task");
      Timer task_timer;
      job();
      m.task_seconds.observe(task_timer.seconds());
    }
    m.tasks.inc();
    {
      std::unique_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void TaskGroup::run(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, job = std::move(job)] {
    job();
    std::lock_guard lock(mutex_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.thread_count() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

void parallel_for_dynamic(
    ThreadPool& pool, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t worker, std::size_t begin,
                             std::size_t end)>& fn) {
  if (count == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t ranges = (count + grain - 1) / grain;
  const std::size_t jobs =
      std::max<std::size_t>(1, std::min(pool.thread_count(), ranges));
  std::atomic<std::size_t> cursor{0};
  TaskGroup group(pool);
  for (std::size_t worker = 0; worker < jobs; ++worker) {
    group.run([&fn, &cursor, count, grain, worker] {
      for (;;) {
        const std::size_t begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= count) return;
        fn(worker, begin, std::min(count, begin + grain));
      }
    });
  }
  group.wait();
}

}  // namespace kcc
