#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace kcc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with drained queue
      job = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    job();
    {
      std::unique_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.thread_count() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace kcc
