// Plain-text table rendering for the experiment harness binaries.
//
// Every table_* / fig_* / sec_* bench prints paper-reported values next to
// measured values through this class, so outputs are uniform and diffable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace kcc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arithmetic cells with operator<<.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({to_cell(cells)...});
  }

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns and a header separator.
  std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(const T& v) {
    return format_number(static_cast<double>(v), is_integral_value(v));
  }
  static bool is_integral_value(double) { return false; }
  static bool is_integral_value(float) { return false; }
  template <typename T>
  static bool is_integral_value(T) {
    return true;
  }
  static std::string format_number(double v, bool integral);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits.
std::string fixed(double v, int digits = 3);

/// Formats a ratio as a percentage string, e.g. "89.2%".
std::string percent(double ratio, int digits = 1);

}  // namespace kcc
