// Fixed-size worker pool used by the Lightweight Parallel CPM and the
// parallel maximal-clique enumerator.
//
// The pool is deliberately simple: a mutex-protected FIFO of type-erased
// jobs, with wait_idle() as the only synchronisation primitive callers need.
// Determinism of results is achieved by the *callers* (each parallel stage
// writes to pre-allocated per-task slots and merges in task order), never by
// relying on scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kcc {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 means std::thread::hardware_concurrency,
  /// floored at 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a job. Jobs must not throw; exceptions escaping a job
  /// terminate the process (matching the noexcept worker loop).
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Tracks a subset of jobs submitted to a pool so a caller can wait for
/// *its* jobs only. ThreadPool::wait_idle() drains the whole queue, which
/// serialises pipelines that keep more than one batch in flight (the
/// streaming CPM engine enumerates window w+1 while window w is being
/// joined); a TaskGroup waits for exactly the jobs routed through it.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Waits for outstanding jobs before destruction.
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `job` to the pool and tracks it. Jobs must not throw.
  void run(std::function<void()> job);

  /// Blocks until every job submitted through this group has finished.
  void wait();

  ThreadPool& pool() const { return pool_; }

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t pending_ = 0;
};

/// Runs fn(i) for i in [0, count) across `pool`, blocking until all
/// iterations complete. Iterations are distributed in contiguous chunks to
/// keep per-job overhead low; `fn` must be safe to call concurrently.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Work-stealing variant for loops with wildly uneven iteration costs (the
/// clique enumerator's vertex subproblems span orders of magnitude): one
/// long-lived job per pool worker self-schedules `grain`-sized ranges off a
/// shared atomic cursor, so a worker that drew cheap ranges immediately
/// claims more instead of idling behind a statically assigned chunk.
/// fn(worker, begin, end) is called with worker in [0, thread_count()) —
/// distinct concurrent calls always see distinct worker ids, so `worker`
/// can index per-worker scratch. Blocks until all iterations complete.
void parallel_for_dynamic(
    ThreadPool& pool, std::size_t count, std::size_t grain,
    const std::function<void(std::size_t worker, std::size_t begin,
                             std::size_t end)>& fn);

}  // namespace kcc
