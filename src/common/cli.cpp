#include "common/cli.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"

namespace kcc {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> known_flags) {
  auto is_known = [&](const std::string& name) {
    return known_flags.empty() ||
           std::find(known_flags.begin(), known_flags.end(), name) !=
               known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      // Bare boolean flag. (--name value is NOT supported: it is ambiguous
      // with positional arguments.)
      name = body;
      value = "true";
    }
    require(is_known(name), "CliArgs: unknown flag --" + name);
    values_[name] = value;
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  require(end != it->second.c_str() && *end == '\0',
          "CliArgs: flag --" + name + " expects an integer, got '" +
              it->second + "'");
  return v;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  require(end != it->second.c_str() && *end == '\0',
          "CliArgs: flag --" + name + " expects a number, got '" + it->second +
              "'");
  return v;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw Error("CliArgs: flag --" + name + " expects a boolean, got '" + v +
              "'");
}

}  // namespace kcc
