// Disjoint-set union with union-by-size and path halving.
//
// Clique percolation reduces community extraction at each k to connected
// components of a "cliques sharing >= k-1 nodes" relation; UnionFind is the
// engine behind that reduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kcc {

class UnionFind {
 public:
  /// Creates `n` singleton sets with ids [0, n).
  explicit UnionFind(std::size_t n = 0);

  /// Resets to `n` singleton sets.
  void reset(std::size_t n);

  /// Number of elements.
  std::size_t size() const { return parent_.size(); }

  /// Number of disjoint sets currently present.
  std::size_t set_count() const { return set_count_; }

  /// Representative of the set containing `x` (with path halving).
  std::uint32_t find(std::uint32_t x);

  /// Merges the sets of `a` and `b`; returns true when they were distinct.
  bool unite(std::uint32_t a, std::uint32_t b);

  /// True when `a` and `b` are in the same set.
  bool connected(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

  /// Size of the set containing `x`.
  std::size_t set_size(std::uint32_t x) { return size_[find(x)]; }

  /// Groups element ids by set. Each inner vector is sorted ascending;
  /// groups are ordered by their smallest element.
  std::vector<std::vector<std::uint32_t>> groups();

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t set_count_ = 0;
};

}  // namespace kcc
