// Core scalar types shared across the library.
#pragma once

#include <cstdint>
#include <vector>

namespace kcc {

/// Identifier of a node (an Autonomous System) in a Graph. Node ids are
/// dense: a Graph with N nodes uses ids [0, N).
using NodeId = std::uint32_t;

/// Identifier of an edge in a Graph, dense in [0, M).
using EdgeId = std::uint64_t;

/// Identifier of a maximal clique produced by an enumerator.
using CliqueId = std::uint32_t;

/// Identifier of a community within one CommunitySet (one value of k).
using CommunityId = std::uint32_t;

/// A set of nodes stored as a sorted, duplicate-free vector. All community
/// and clique node sets in the library use this representation so that set
/// algebra (intersection size, containment) runs in linear time.
using NodeSet = std::vector<NodeId>;

}  // namespace kcc
