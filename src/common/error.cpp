#include "common/error.h"

namespace kcc {

void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace kcc
