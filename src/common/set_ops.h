// Set algebra over sorted duplicate-free vectors (the NodeSet invariant).
//
// Every clique and community node set in the library is stored sorted, which
// lets intersection size, containment and merge run as linear scans instead
// of hash-table lookups; this matters because clique percolation performs
// millions of pairwise overlap queries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace kcc {

/// True when `v` is sorted ascending with no duplicates.
template <typename T>
bool is_sorted_unique(const std::vector<T>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (!(v[i - 1] < v[i])) return false;
  }
  return true;
}

/// Sorts and deduplicates `v` in place, establishing the NodeSet invariant.
template <typename T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// |a ∩ b| for sorted unique inputs.
template <typename T>
std::size_t intersection_size(const std::vector<T>& a,
                              const std::vector<T>& b) {
  std::size_t n = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

/// Early-exit variant: true iff |a ∩ b| >= threshold. Prunes the scan as
/// soon as the remaining elements cannot reach the threshold.
template <typename T>
bool intersection_at_least(const std::vector<T>& a, const std::vector<T>& b,
                           std::size_t threshold) {
  if (threshold == 0) return true;
  std::size_t n = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.size() - i < threshold - n || b.size() - j < threshold - n)
      return false;
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      if (++n >= threshold) return true;
      ++i;
      ++j;
    }
  }
  return false;
}

/// a ∩ b for sorted unique inputs.
template <typename T>
std::vector<T> set_intersection(const std::vector<T>& a,
                                const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// a ∪ b for sorted unique inputs.
template <typename T>
std::vector<T> set_union(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// a \ b for sorted unique inputs.
template <typename T>
std::vector<T> set_difference(const std::vector<T>& a,
                              const std::vector<T>& b) {
  std::vector<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// True iff `sub` ⊆ `super` for sorted unique inputs.
template <typename T>
bool is_subset(const std::vector<T>& sub, const std::vector<T>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

/// Binary-search membership test on a sorted unique vector.
template <typename T>
bool contains(const std::vector<T>& sorted, const T& value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

}  // namespace kcc
