#include "common/union_find.h"

#include <algorithm>

#include "common/error.h"

namespace kcc {

UnionFind::UnionFind(std::size_t n) { reset(n); }

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
  set_count_ = n;
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  require(x < parent_.size(), "UnionFind::find: element out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --set_count_;
  return true;
}

std::vector<std::vector<std::uint32_t>> UnionFind::groups() {
  std::vector<std::vector<std::uint32_t>> by_root(parent_.size());
  for (std::uint32_t i = 0; i < parent_.size(); ++i)
    by_root[find(i)].push_back(i);
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(set_count_);
  for (auto& g : by_root) {
    if (!g.empty()) out.push_back(std::move(g));
  }
  // by_root iteration order already yields groups keyed by root id; re-order
  // by smallest member for a deterministic, representation-independent order.
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

}  // namespace kcc
