// Deterministic, seedable random number generation.
//
// All synthetic-data generation in the library flows through Rng so that a
// (seed, parameters) pair fully determines the generated ecosystem. The
// implementation is SplitMix64 for seeding and xoshiro256++ for the stream
// (public-domain algorithms by Blackman & Vigna); we avoid std::mt19937 so
// results are stable across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <vector>

#include "common/error.h"

namespace kcc {

/// Deterministic PRNG (xoshiro256++) with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the stream from `seed` via SplitMix64 expansion.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    require(bound > 0, "Rng::next_below: bound must be positive");
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "Rng::next_int: empty range");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Zipf-distributed rank in [0, n) with exponent `s` (> 0). Uses the
  /// inverse-CDF over precomputable weights for small n, rejection otherwise.
  std::size_t next_zipf(std::size_t n, double s) {
    require(n > 0, "Rng::next_zipf: n must be positive");
    // Rejection-inversion would be overkill for our n (<= a few thousand);
    // draw by linear scan over the normalised harmonic weights.
    double h = 0.0;
    for (std::size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(double(i), s);
    double u = next_double() * h;
    for (std::size_t i = 1; i <= n; ++i) {
      u -= 1.0 / std::pow(double(i), s);
      if (u <= 0.0) return i - 1;
    }
    return n - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `count` distinct elements from `pool` (order unspecified).
  /// `count` must not exceed pool.size().
  template <typename T>
  std::vector<T> sample_without_replacement(const std::vector<T>& pool,
                                            std::size_t count) {
    require(count <= pool.size(),
            "Rng::sample_without_replacement: count exceeds pool size");
    // Partial Fisher-Yates on an index copy.
    std::vector<std::size_t> idx(pool.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::vector<T> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t j = i + next_below(idx.size() - i);
      std::swap(idx[i], idx[j]);
      out.push_back(pool[idx[i]]);
    }
    return out;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kcc
