#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace kcc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(),
          "TextTable::add_row: arity mismatch with header");
  rows_.push_back(std::move(row));
}

std::string TextTable::format_number(double v, bool integral) {
  char buf[64];
  if (integral) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string percent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace kcc
