// Library error type. All precondition violations and I/O failures raise
// kcc::Error; internal invariants use assertions.
#pragma once

#include <stdexcept>
#include <string>

namespace kcc {

/// Exception thrown on invalid arguments, malformed input files, and
/// violated API preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws kcc::Error with `message` when `condition` is false.
void require(bool condition, const std::string& message);

}  // namespace kcc
