// Tagging (paper Sec. 2.4, Tables 2.1 and 2.2).
//
// IXP tag: an AS is "on-IXP" when it appears in at least one IXP participant
// list. Geo tag: "national" when all locations are in one country,
// "continental" when they span several countries of one continent,
// "worldwide" when they span two or more continents, "unknown" when the AS
// has no known location.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"
#include "data/geography.h"
#include "data/ixp.h"

namespace kcc {

enum class GeoTag { kNational, kContinental, kWorldwide, kUnknown };

const char* geo_tag_name(GeoTag tag);

/// Classifies node `v` from its location list.
GeoTag classify_geo(const GeoDataset& geo, NodeId v);

/// Table 2.1 counts.
struct IxpTagCounts {
  std::size_t on_ixp = 0;
  std::size_t not_on_ixp = 0;
};

IxpTagCounts count_ixp_tags(const IxpDataset& ixps, std::size_t num_nodes);

/// Table 2.2 counts.
struct GeoTagCounts {
  std::size_t national = 0;
  std::size_t continental = 0;
  std::size_t worldwide = 0;
  std::size_t unknown = 0;
};

GeoTagCounts count_geo_tags(const GeoDataset& geo, std::size_t num_nodes);

/// Fraction of `nodes` that are on-IXP (Sec. 4: > 90 % for k >= 16).
double on_ixp_fraction(const IxpDataset& ixps, const NodeSet& nodes);

/// Fraction of `nodes` carrying `tag`.
double geo_tag_fraction(const GeoDataset& geo, const NodeSet& nodes,
                        GeoTag tag);

}  // namespace kcc
