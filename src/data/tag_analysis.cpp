#include "data/tag_analysis.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"
#include "data/tags.h"

namespace kcc {

std::optional<IxpShare> max_share_ixp(const IxpDataset& ixps,
                                      const Community& community) {
  std::optional<IxpShare> best;
  for (IxpId id = 0; id < ixps.count(); ++id) {
    const Ixp& ixp = ixps.ixp(id);
    const std::size_t shared =
        intersection_size(community.nodes, ixp.participants);
    if (shared == 0) continue;
    const bool better =
        !best || shared > best->shared ||
        (shared == best->shared &&
         ixp.participant_count() > ixps.ixp(best->ixp).participant_count());
    if (better) {
      IxpShare share;
      share.ixp = id;
      share.shared = shared;
      share.fraction =
          static_cast<double>(shared) / static_cast<double>(community.size());
      share.full_share = shared == community.size();
      best = share;
    }
  }
  return best;
}

std::vector<IxpId> full_share_ixps(const IxpDataset& ixps,
                                   const Community& community) {
  std::vector<IxpId> out;
  for (IxpId id = 0; id < ixps.count(); ++id) {
    if (is_subset(community.nodes, ixps.ixp(id).participants)) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<CountryId> containing_countries(const GeoDataset& geo,
                                            const Community& community) {
  require(!community.nodes.empty(), "containing_countries: empty community");
  // Intersect the location lists of all members; empty as soon as any member
  // has no known location.
  std::vector<CountryId> common = geo.locations_of(community.nodes.front());
  for (std::size_t i = 1; i < community.nodes.size() && !common.empty(); ++i) {
    common = set_intersection(common, geo.locations_of(community.nodes[i]));
  }
  return common;
}

std::vector<CommunityTagProfile> profile_communities(
    const CpmResult& cpm, const CommunityTree& tree, const IxpDataset& ixps,
    const GeoDataset& geo) {
  std::vector<CommunityTagProfile> out;
  for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
    const CommunitySet& set = cpm.at(k);
    for (const Community& community : set.communities) {
      CommunityTagProfile profile;
      profile.k = k;
      profile.id = community.id;
      profile.size = community.size();
      const int idx = tree.index_of(k, community.id);
      profile.is_main = idx >= 0 && tree.nodes()[idx].is_main;
      profile.on_ixp_fraction = on_ixp_fraction(ixps, community.nodes);
      profile.max_share = max_share_ixp(ixps, community);
      profile.full_share = full_share_ixps(ixps, community);
      profile.containing_country = containing_countries(geo, community);
      out.push_back(std::move(profile));
    }
  }
  return out;
}

BandThresholds derive_bands(const std::vector<CommunityTagProfile>& profiles,
                            std::size_t min_k, std::size_t max_k,
                            const BandThresholds& fallback) {
  if (max_k < min_k) return fallback;
  // has_full_share[k - min_k]: any community at k with a full-share IXP.
  std::vector<bool> has_full_share(max_k - min_k + 1, false);
  for (const auto& p : profiles) {
    if (!p.full_share.empty() && p.k >= min_k && p.k <= max_k) {
      has_full_share[p.k - min_k] = true;
    }
  }
  // Widest run of "false" strictly between two "true" positions.
  std::ptrdiff_t first_true = -1, last_true = -1;
  for (std::size_t i = 0; i < has_full_share.size(); ++i) {
    if (has_full_share[i]) {
      if (first_true < 0) first_true = static_cast<std::ptrdiff_t>(i);
      last_true = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (first_true < 0 || first_true == last_true) return fallback;

  std::size_t best_start = 0, best_len = 0;
  std::size_t run_start = 0, run_len = 0;
  for (std::ptrdiff_t i = first_true; i <= last_true; ++i) {
    if (!has_full_share[static_cast<std::size_t>(i)]) {
      if (run_len == 0) run_start = static_cast<std::size_t>(i);
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_len = 0;
    }
  }
  if (best_len == 0) return fallback;  // no gap: cannot separate three bands

  BandThresholds thresholds;
  thresholds.root_max_k = min_k + best_start - 1;
  thresholds.trunk_max_k = min_k + best_start + best_len - 1;
  return thresholds;
}

std::vector<BandSummary> summarize_bands(
    const std::vector<CommunityTagProfile>& profiles,
    const BandThresholds& thresholds) {
  std::vector<BandSummary> out(3);
  out[0].band = Band::kRoot;
  out[1].band = Band::kTrunk;
  out[2].band = Band::kCrown;
  std::vector<double> size_sum(3, 0.0), ixp_sum(3, 0.0);
  for (const auto& p : profiles) {
    const std::size_t b = static_cast<std::size_t>(thresholds.band_of(p.k));
    BandSummary& s = out[b];
    ++s.community_count;
    size_sum[b] += static_cast<double>(p.size);
    ixp_sum[b] += p.on_ixp_fraction;
    if (!p.full_share.empty()) ++s.with_full_share_ixp;
    if (!p.containing_country.empty()) ++s.country_contained;
  }
  for (std::size_t b = 0; b < 3; ++b) {
    if (out[b].community_count > 0) {
      out[b].mean_size = size_sum[b] / double(out[b].community_count);
      out[b].mean_on_ixp_fraction = ixp_sum[b] / double(out[b].community_count);
    }
  }
  return out;
}

}  // namespace kcc
