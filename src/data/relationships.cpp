#include "data/relationships.h"

#include <algorithm>

#include "common/error.h"

namespace kcc {

const char* link_type_name(LinkType type) {
  switch (type) {
    case LinkType::kCustomerProvider:
      return "customer-provider";
    case LinkType::kPeering:
      return "peering";
  }
  return "?";
}

RelationshipMap::RelationshipMap(const Graph& g, std::vector<LinkType> types)
    : edges_(g.edges()), types_(std::move(types)) {
  require(types_.size() == edges_.size(),
          "RelationshipMap: type count does not match edge count");
}

LinkType RelationshipMap::type(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(),
                                   std::make_pair(u, v));
  require(it != edges_.end() && *it == std::make_pair(u, v),
          "RelationshipMap::type: no such edge");
  return types_[static_cast<std::size_t>(it - edges_.begin())];
}

std::pair<std::size_t, std::size_t> RelationshipMap::totals() const {
  std::size_t cp = 0, peering = 0;
  for (LinkType t : types_) {
    (t == LinkType::kCustomerProvider ? cp : peering) += 1;
  }
  return {cp, peering};
}

double peering_fraction(const Graph& g, const RelationshipMap& rel,
                        const NodeSet& community) {
  std::size_t internal = 0, peering = 0;
  for (NodeId v : community) {
    require(v < g.num_nodes(), "peering_fraction: node out of range");
    for (NodeId w : g.neighbors(v)) {
      if (w <= v || !std::binary_search(community.begin(), community.end(), w)) {
        continue;
      }
      ++internal;
      if (rel.type(v, w) == LinkType::kPeering) ++peering;
    }
  }
  if (internal == 0) return 0.0;
  return static_cast<double>(peering) / static_cast<double>(internal);
}

std::vector<PeeringByK> peering_by_k(const Graph& g,
                                     const RelationshipMap& rel,
                                     const CpmResult& cpm) {
  std::vector<PeeringByK> out;
  for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
    PeeringByK row;
    row.k = k;
    const auto& communities = cpm.at(k).communities;
    if (!communities.empty()) {
      double sum = 0.0;
      for (const Community& c : communities) {
        sum += peering_fraction(g, rel, c.nodes);
      }
      row.mean_peering_fraction = sum / double(communities.size());
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace kcc
