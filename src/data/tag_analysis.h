// Interpretation of communities through the IXP and geographical datasets
// (paper Sec. 4, 4.1-4.3).
//
// Key notions:
//  * max-share-IXP of a community — the IXP sharing the most participants
//    with it;
//  * full-share-IXP — an IXP whose participant list contains the whole
//    community (the community is a subset of that IXP-induced subgraph);
//  * country containment — all community members have a presence in one
//    common country (the paper found 382 such root communities).
// The distribution of full-share-IXPs over k is what motivates the
// crown/trunk/root banding, and derive_bands() reconstructs the bands from
// it rather than hard-coding the paper's [2:14]/[15:28]/[29:36].
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "cpm/community.h"
#include "cpm/community_tree.h"
#include "data/geography.h"
#include "data/ixp.h"

namespace kcc {

/// Share of one community with one IXP.
struct IxpShare {
  IxpId ixp = 0;
  std::size_t shared = 0;    // |community ∩ participants|
  double fraction = 0.0;     // shared / community size
  bool full_share = false;   // community ⊆ participants
};

/// max-share-IXP of a community; nullopt when the dataset is empty or no
/// IXP shares a member. Ties break towards the larger IXP, then lower id.
std::optional<IxpShare> max_share_ixp(const IxpDataset& ixps,
                                      const Community& community);

/// Every IXP that fully contains the community (ascending ids).
std::vector<IxpId> full_share_ixps(const IxpDataset& ixps,
                                   const Community& community);

/// Countries containing every community member (ascending ids).
std::vector<CountryId> containing_countries(const GeoDataset& geo,
                                            const Community& community);

/// Per-community tag interpretation row.
struct CommunityTagProfile {
  std::size_t k = 0;
  CommunityId id = 0;
  std::size_t size = 0;
  bool is_main = false;
  double on_ixp_fraction = 0.0;
  std::optional<IxpShare> max_share;
  std::vector<IxpId> full_share;            // may be empty
  std::vector<CountryId> containing_country; // may be empty
};

/// Profiles every community in `cpm`, marking mains per `tree`.
std::vector<CommunityTagProfile> profile_communities(
    const CpmResult& cpm, const CommunityTree& tree, const IxpDataset& ixps,
    const GeoDataset& geo);

/// Derives crown/trunk/root thresholds from the full-share structure: the
/// trunk is the widest contiguous run of k values without any full-share
/// community, strictly between k values that have one. Falls back to
/// `fallback` when the data has no such three-band structure.
BandThresholds derive_bands(const std::vector<CommunityTagProfile>& profiles,
                            std::size_t min_k, std::size_t max_k,
                            const BandThresholds& fallback = {});

/// Summary of one band (crown/trunk/root rows of Sec. 4.1-4.3).
struct BandSummary {
  Band band = Band::kRoot;
  std::size_t community_count = 0;
  double mean_size = 0.0;
  std::size_t with_full_share_ixp = 0;
  std::size_t country_contained = 0;
  double mean_on_ixp_fraction = 0.0;
};

std::vector<BandSummary> summarize_bands(
    const std::vector<CommunityTagProfile>& profiles,
    const BandThresholds& thresholds);

}  // namespace kcc
