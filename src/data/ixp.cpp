#include "data/ixp.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

IxpDataset::IxpDataset(std::vector<Ixp> ixps) : ixps_(std::move(ixps)) {
  for (const Ixp& ixp : ixps_) {
    require(is_sorted_unique(ixp.participants),
            "IxpDataset: participant lists must be sorted and unique");
  }
  rebuild_membership_index();
}

void IxpDataset::rebuild_membership_index() {
  std::size_t max_node = 0;
  for (const Ixp& ixp : ixps_) {
    if (!ixp.participants.empty()) {
      max_node = std::max<std::size_t>(max_node, ixp.participants.back() + 1);
    }
  }
  membership_.assign(max_node, {});
  for (IxpId id = 0; id < ixps_.size(); ++id) {
    for (NodeId v : ixps_[id].participants) membership_[v].push_back(id);
  }
}

const Ixp& IxpDataset::ixp(IxpId id) const {
  require(id < ixps_.size(), "IxpDataset::ixp: id out of range");
  return ixps_[id];
}

IxpId IxpDataset::find(const std::string& name) const {
  for (IxpId id = 0; id < ixps_.size(); ++id) {
    if (ixps_[id].name == name) return id;
  }
  throw Error("IxpDataset::find: no IXP named '" + name + "'");
}

NodeSet IxpDataset::on_ixp_nodes() const {
  NodeSet out;
  for (const Ixp& ixp : ixps_) {
    out.insert(out.end(), ixp.participants.begin(), ixp.participants.end());
  }
  sort_unique(out);
  return out;
}

bool IxpDataset::is_on_ixp(NodeId v) const {
  return v < membership_.size() && !membership_[v].empty();
}

std::vector<IxpId> IxpDataset::ixps_of(NodeId v) const {
  if (v >= membership_.size()) return {};
  return membership_[v];
}

}  // namespace kcc
