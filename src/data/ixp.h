// IXP dataset model (paper Sec. 2.2).
//
// An Internet Exchange Point is a facility where participant ASes establish
// peering sessions. The paper's dataset lists 232 IXPs, each with a
// geographical location and a participant AS list; IXP membership turns out
// to explain the dense (crown/root) parts of the community tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace kcc {

using IxpId = std::uint32_t;

struct Ixp {
  std::string name;
  std::string country;        // ISO-like country code of the facility
  NodeSet participants;       // sorted member node ids

  std::size_t participant_count() const { return participants.size(); }
};

class IxpDataset {
 public:
  IxpDataset() = default;
  explicit IxpDataset(std::vector<Ixp> ixps);

  std::size_t count() const { return ixps_.size(); }
  const Ixp& ixp(IxpId id) const;
  const std::vector<Ixp>& all() const { return ixps_; }

  /// Id of the IXP with the given name; throws when absent.
  IxpId find(const std::string& name) const;

  /// Sorted set of every node participating in at least one IXP
  /// (the "on-IXP" tag of Sec. 2.4, Table 2.1).
  NodeSet on_ixp_nodes() const;

  /// True when `v` participates in at least one IXP.
  bool is_on_ixp(NodeId v) const;

  /// IXP ids `v` participates in (ascending).
  std::vector<IxpId> ixps_of(NodeId v) const;

 private:
  void rebuild_membership_index();

  std::vector<Ixp> ixps_;
  std::vector<std::vector<IxpId>> membership_;  // node -> ixp ids
};

}  // namespace kcc
