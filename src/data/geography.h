// Geographical dataset model (paper Sec. 2.3).
//
// Each AS maps to the set of countries where it has at least one point of
// presence; countries map to continents. The tags of Sec. 2.4 (national /
// continental / worldwide / unknown) derive from this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace kcc {

using CountryId = std::uint16_t;

struct Country {
  std::string code;       // e.g. "DE"
  std::string continent;  // e.g. "EU"
};

class GeoDataset {
 public:
  GeoDataset() = default;
  GeoDataset(std::vector<Country> countries,
             std::vector<std::vector<CountryId>> locations_of_node);

  std::size_t country_count() const { return countries_.size(); }
  const Country& country(CountryId id) const;
  const std::vector<Country>& all_countries() const { return countries_; }

  /// Country id by code; throws when absent.
  CountryId find_country(const std::string& code) const;

  /// Countries where node `v` has a presence (empty = unknown AS).
  const std::vector<CountryId>& locations_of(NodeId v) const;

  /// Number of nodes with at least one known location (paper: 34,190).
  std::size_t known_node_count() const;

  /// Sorted set of nodes with a presence in `country`
  /// (the country-induced tag set of Sec. 2.4).
  NodeSet nodes_in_country(CountryId country) const;

  std::size_t node_capacity() const { return locations_.size(); }

 private:
  std::vector<Country> countries_;
  std::vector<std::vector<CountryId>> locations_;
  std::vector<CountryId> empty_;
};

}  // namespace kcc
