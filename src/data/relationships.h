// AS business relationships per link.
//
// The paper treats the topology as undirected (Sec. 2.1), but its economic
// interpretation leans on the customer-provider vs settlement-free-peering
// distinction throughout (Tier-1 mesh, customer cones driving ODF, IXP
// peering fabrics creating the crown). The synthetic generator knows which
// mechanism created each link, so it can annotate them; this module stores
// and analyses those annotations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "cpm/community.h"
#include "graph/graph.h"

namespace kcc {

enum class LinkType : std::uint8_t {
  kCustomerProvider,  // hierarchy: one side pays the other for transit
  kPeering,           // settlement-free: IXP fabric, Tier-1 mesh, planted
                      // dense structures
};

const char* link_type_name(LinkType type);

/// Immutable link-type table keyed by the graph's canonical edge order.
class RelationshipMap {
 public:
  RelationshipMap() = default;

  /// `types` aligned with g.edges().
  RelationshipMap(const Graph& g, std::vector<LinkType> types);

  LinkType type(NodeId u, NodeId v) const;
  std::size_t edge_count() const { return types_.size(); }

  /// Count of each type over the whole graph: {customer-provider, peering}.
  std::pair<std::size_t, std::size_t> totals() const;

 private:
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<LinkType> types_;
};

/// Fraction of a community's *internal* links that are peering links.
/// The paper's crown communities should be almost pure peering fabric,
/// while the low-k main community mixes in customer-provider edges.
double peering_fraction(const Graph& g, const RelationshipMap& rel,
                        const NodeSet& community);

/// Per-k series of the mean peering fraction over communities.
struct PeeringByK {
  std::size_t k = 0;
  double mean_peering_fraction = 0.0;
};

std::vector<PeeringByK> peering_by_k(const Graph& g,
                                     const RelationshipMap& rel,
                                     const CpmResult& cpm);

}  // namespace kcc
