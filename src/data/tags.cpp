#include "data/tags.h"

namespace kcc {

const char* geo_tag_name(GeoTag tag) {
  switch (tag) {
    case GeoTag::kNational:
      return "national";
    case GeoTag::kContinental:
      return "continental";
    case GeoTag::kWorldwide:
      return "worldwide";
    case GeoTag::kUnknown:
      return "unknown";
  }
  return "?";
}

GeoTag classify_geo(const GeoDataset& geo, NodeId v) {
  const auto& locations = geo.locations_of(v);
  if (locations.empty()) return GeoTag::kUnknown;
  if (locations.size() == 1) return GeoTag::kNational;
  const std::string& continent = geo.country(locations.front()).continent;
  for (CountryId c : locations) {
    if (geo.country(c).continent != continent) return GeoTag::kWorldwide;
  }
  return GeoTag::kContinental;
}

IxpTagCounts count_ixp_tags(const IxpDataset& ixps, std::size_t num_nodes) {
  IxpTagCounts counts;
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (ixps.is_on_ixp(v)) {
      ++counts.on_ixp;
    } else {
      ++counts.not_on_ixp;
    }
  }
  return counts;
}

GeoTagCounts count_geo_tags(const GeoDataset& geo, std::size_t num_nodes) {
  GeoTagCounts counts;
  for (NodeId v = 0; v < num_nodes; ++v) {
    switch (classify_geo(geo, v)) {
      case GeoTag::kNational:
        ++counts.national;
        break;
      case GeoTag::kContinental:
        ++counts.continental;
        break;
      case GeoTag::kWorldwide:
        ++counts.worldwide;
        break;
      case GeoTag::kUnknown:
        ++counts.unknown;
        break;
    }
  }
  return counts;
}

double on_ixp_fraction(const IxpDataset& ixps, const NodeSet& nodes) {
  if (nodes.empty()) return 0.0;
  std::size_t on = 0;
  for (NodeId v : nodes) on += ixps.is_on_ixp(v) ? 1 : 0;
  return static_cast<double>(on) / static_cast<double>(nodes.size());
}

double geo_tag_fraction(const GeoDataset& geo, const NodeSet& nodes,
                        GeoTag tag) {
  if (nodes.empty()) return 0.0;
  std::size_t count = 0;
  for (NodeId v : nodes) count += classify_geo(geo, v) == tag ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(nodes.size());
}

}  // namespace kcc
