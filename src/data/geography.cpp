#include "data/geography.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

GeoDataset::GeoDataset(std::vector<Country> countries,
                       std::vector<std::vector<CountryId>> locations_of_node)
    : countries_(std::move(countries)), locations_(std::move(locations_of_node)) {
  for (auto& locs : locations_) {
    sort_unique(locs);
    for (CountryId c : locs) {
      require(c < countries_.size(), "GeoDataset: location out of range");
    }
  }
}

const Country& GeoDataset::country(CountryId id) const {
  require(id < countries_.size(), "GeoDataset::country: id out of range");
  return countries_[id];
}

CountryId GeoDataset::find_country(const std::string& code) const {
  for (CountryId id = 0; id < countries_.size(); ++id) {
    if (countries_[id].code == code) return id;
  }
  throw Error("GeoDataset::find_country: no country '" + code + "'");
}

const std::vector<CountryId>& GeoDataset::locations_of(NodeId v) const {
  if (v >= locations_.size()) return empty_;
  return locations_[v];
}

std::size_t GeoDataset::known_node_count() const {
  std::size_t count = 0;
  for (const auto& locs : locations_) count += locs.empty() ? 0 : 1;
  return count;
}

NodeSet GeoDataset::nodes_in_country(CountryId country) const {
  require(country < countries_.size(),
          "GeoDataset::nodes_in_country: id out of range");
  NodeSet out;
  for (NodeId v = 0; v < locations_.size(); ++v) {
    if (contains(locations_[v], country)) out.push_back(v);
  }
  return out;
}

}  // namespace kcc
