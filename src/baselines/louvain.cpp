#include "baselines/louvain.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "metrics/modularity.h"

namespace kcc {
namespace {

// Weighted multigraph used for the aggregation levels. Self-loops carry the
// weight of edges internal to an aggregated community.
struct WeightedLevelGraph {
  std::size_t n = 0;
  // adjacency[v] = (neighbor, weight); self-loop allowed (v, w_self).
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
  std::vector<double> strength;  // weighted degree incl. 2 * self-loop
  double total_weight2 = 0.0;    // 2m (sum of strengths)

  static WeightedLevelGraph from_graph(const Graph& g) {
    WeightedLevelGraph lg;
    lg.n = g.num_nodes();
    lg.adjacency.resize(lg.n);
    lg.strength.assign(lg.n, 0.0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (NodeId w : g.neighbors(v)) {
        lg.adjacency[v].push_back({w, 1.0});
      }
      lg.strength[v] = static_cast<double>(g.degree(v));
      lg.total_weight2 += lg.strength[v];
    }
    return lg;
  }
};

// One level of local moves; returns the labelling and whether anything
// improved.
bool local_moves(const WeightedLevelGraph& lg, const LouvainOptions& options,
                 std::vector<std::uint32_t>& community_of) {
  const double m2 = lg.total_weight2;
  if (m2 == 0.0) return false;

  // Total strength per community.
  std::vector<double> community_strength(lg.n, 0.0);
  for (std::uint32_t v = 0; v < lg.n; ++v) {
    community_strength[community_of[v]] += lg.strength[v];
  }

  bool improved_any = false;
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double gain_total = 0.0;
    for (std::uint32_t v = 0; v < lg.n; ++v) {
      const std::uint32_t current = community_of[v];
      // Weight from v to each neighbouring community (self-loops excluded:
      // they move with v and cancel in the gain).
      std::map<std::uint32_t, double> to_community;
      to_community[current];  // ensure the current community is considered
      for (const auto& [w, weight] : lg.adjacency[v]) {
        if (w != v) to_community[community_of[w]] += weight;
      }
      community_strength[current] -= lg.strength[v];

      std::uint32_t best = current;
      double best_gain = to_community[current] -
                         community_strength[current] * lg.strength[v] / m2;
      for (const auto& [candidate, weight] : to_community) {
        const double gain =
            weight - community_strength[candidate] * lg.strength[v] / m2;
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && candidate < best)) {
          best_gain = gain;
          best = candidate;
        }
      }
      if (best != current) {
        gain_total +=
            best_gain - (to_community[current] -
                         community_strength[current] * lg.strength[v] / m2);
        community_of[v] = best;
        improved_any = true;
      }
      community_strength[community_of[v]] += lg.strength[v];
    }
    if (gain_total < options.min_gain * m2) break;
  }
  return improved_any;
}

// Aggregates communities into super-nodes.
WeightedLevelGraph aggregate(const WeightedLevelGraph& lg,
                             const std::vector<std::uint32_t>& community_of,
                             std::vector<std::uint32_t>& dense_id_of) {
  // Dense re-labelling of the surviving communities.
  dense_id_of.assign(lg.n, 0);
  std::map<std::uint32_t, std::uint32_t> dense;
  for (std::uint32_t v = 0; v < lg.n; ++v) {
    const auto [it, inserted] = dense.try_emplace(
        community_of[v], static_cast<std::uint32_t>(dense.size()));
    dense_id_of[v] = it->second;
    (void)inserted;
  }

  WeightedLevelGraph next;
  next.n = dense.size();
  next.adjacency.resize(next.n);
  next.strength.assign(next.n, 0.0);
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> weights;
  for (std::uint32_t v = 0; v < lg.n; ++v) {
    for (const auto& [w, weight] : lg.adjacency[v]) {
      const std::uint32_t a = dense_id_of[v];
      const std::uint32_t b = dense_id_of[w];
      if (a <= b) {
        // Each undirected edge appears twice in adjacency (once per
        // endpoint) except self-loops; normalise below by summing halves.
        weights[{a, b}] += weight / (a == b ? 1.0 : 2.0);
      }
    }
  }
  for (const auto& [key, weight] : weights) {
    const auto [a, b] = key;
    if (a == b) {
      next.adjacency[a].push_back({a, weight / 2.0});
      next.strength[a] += weight;
    } else {
      next.adjacency[a].push_back({b, weight});
      next.adjacency[b].push_back({a, weight});
      next.strength[a] += weight;
      next.strength[b] += weight;
    }
  }
  for (double s : next.strength) next.total_weight2 += s;
  return next;
}

}  // namespace

LouvainResult louvain_communities(const Graph& g,
                                  const LouvainOptions& options) {
  LouvainResult result;
  result.community_of.resize(g.num_nodes());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
    result.community_of[v] = v;
  }
  if (g.num_edges() == 0) {
    result.community_count = g.num_nodes();
    return result;
  }

  WeightedLevelGraph level = WeightedLevelGraph::from_graph(g);
  // mapping from original node to current level node.
  std::vector<std::uint32_t> node_of(g.num_nodes());
  for (std::uint32_t v = 0; v < g.num_nodes(); ++v) node_of[v] = v;

  for (std::size_t depth = 0; depth < options.max_levels; ++depth) {
    std::vector<std::uint32_t> community_of(level.n);
    for (std::uint32_t v = 0; v < level.n; ++v) community_of[v] = v;
    if (!local_moves(level, options, community_of)) break;

    std::vector<std::uint32_t> dense_id_of;
    level = aggregate(level, community_of, dense_id_of);
    for (std::uint32_t v = 0; v < g.num_nodes(); ++v) {
      node_of[v] = dense_id_of[community_of[node_of[v]]];
    }
    ++result.levels;
    if (level.n == 1) break;
  }

  result.community_of = node_of;
  // Re-label densely by first appearance for stable output.
  std::map<std::uint32_t, std::uint32_t> dense;
  for (auto& c : result.community_of) {
    const auto [it, inserted] =
        dense.try_emplace(c, static_cast<std::uint32_t>(dense.size()));
    c = it->second;
    (void)inserted;
  }
  result.community_count = dense.size();
  result.modularity = modularity(g, result.community_of);
  return result;
}

}  // namespace kcc
