// Louvain modularity maximisation (Blondel, Guillaume, Lambiotte, Lefebvre
// 2008 — the paper's reference [5]).
//
// The classic fast partition method the AS-community literature uses; it
// produces non-overlapping communities, which is exactly the limitation the
// paper's Sec. 1 argues against for the Internet (worldwide carriers and
// multi-IXP ASes belong to several communities at once). Implemented as the
// strongest partition baseline: local-move passes plus graph aggregation
// until modularity stops improving.
//
// Determinism: node sweeps run in fixed id order and ties resolve to the
// lowest community id, so results are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

struct LouvainOptions {
  double min_gain = 1e-7;       // stop a pass when total gain falls below
  std::size_t max_levels = 32;  // aggregation depth cap
  std::size_t max_sweeps = 64;  // local-move sweeps per level
};

struct LouvainResult {
  /// Final community id per original node (dense ids).
  std::vector<std::uint32_t> community_of;
  double modularity = 0.0;
  std::size_t levels = 0;        // aggregation levels performed
  std::size_t community_count = 0;
};

LouvainResult louvain_communities(const Graph& g,
                                  const LouvainOptions& options = {});

}  // namespace kcc
