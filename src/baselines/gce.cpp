#include "baselines/gce.h"

#include <algorithm>
#include <cmath>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/set_ops.h"
#include "metrics/community_metrics.h"

namespace kcc {

double gce_fitness(const Graph& g, const NodeSet& members, double alpha) {
  require(is_sorted_unique(members), "gce_fitness: members must be sorted");
  std::size_t internal2 = 0;  // twice the internal edges
  std::size_t boundary = 0;
  for (NodeId v : members) {
    const std::size_t in = internal_degree(g, v, members);
    internal2 += in;
    boundary += g.degree(v) - in;
  }
  const double denom = static_cast<double>(internal2 + boundary);
  if (denom == 0.0) return 0.0;
  return static_cast<double>(internal2) / std::pow(denom, alpha);
}

namespace {

// Candidate frontier: nodes adjacent to the community but outside it.
NodeSet frontier(const Graph& g, const NodeSet& members) {
  NodeSet out;
  for (NodeId v : members) {
    for (NodeId w : g.neighbors(v)) {
      if (!contains(members, w)) out.push_back(w);
    }
  }
  sort_unique(out);
  return out;
}

}  // namespace

std::vector<NodeSet> greedy_clique_expansion(const Graph& g,
                                             const GceOptions& options) {
  require(options.min_clique_size >= 2,
          "greedy_clique_expansion: min_clique_size must be >= 2");
  clique::Options copt;
  copt.min_size = options.min_clique_size;
  std::vector<NodeSet> seeds = clique::Enumerator(g, copt).collect();
  // Largest seeds first (GCE processes seeds in decreasing size).
  std::sort(seeds.begin(), seeds.end(), [](const NodeSet& a, const NodeSet& b) {
    return a.size() != b.size() ? a.size() > b.size() : a < b;
  });
  if (options.max_seeds > 0 && seeds.size() > options.max_seeds) {
    seeds.resize(options.max_seeds);
  }

  std::vector<NodeSet> communities;
  for (const NodeSet& seed : seeds) {
    NodeSet members = seed;
    // Maintain k_in (twice internal edges) and k_out incrementally: adding
    // node c with d_in links into S changes k_in by 2*d_in and k_out by
    // deg(c) - 2*d_in. This makes each candidate evaluation O(deg).
    std::size_t internal2 = 0, boundary = 0;
    for (NodeId v : members) {
      const std::size_t in = internal_degree(g, v, members);
      internal2 += in;
      boundary += g.degree(v) - in;
    }
    auto fitness_of = [&](std::size_t k_in2, std::size_t k_out) {
      const double denom = static_cast<double>(k_in2 + k_out);
      return denom == 0.0
                 ? 0.0
                 : static_cast<double>(k_in2) / std::pow(denom, options.alpha);
    };
    double fitness = fitness_of(internal2, boundary);
    for (;;) {
      if (options.max_community_size > 0 &&
          members.size() >= options.max_community_size) {
        break;
      }
      const NodeSet candidates = frontier(g, members);
      NodeId best_node = 0;
      double best_fitness = fitness;
      std::size_t best_internal2 = 0, best_boundary = 0;
      bool improved = false;
      for (NodeId candidate : candidates) {
        const std::size_t d_in = internal_degree(g, candidate, members);
        const std::size_t k_in2 = internal2 + 2 * d_in;
        const std::size_t k_out =
            boundary + g.degree(candidate) - 2 * d_in;
        const double f = fitness_of(k_in2, k_out);
        if (f > best_fitness) {
          best_fitness = f;
          best_node = candidate;
          best_internal2 = k_in2;
          best_boundary = k_out;
          improved = true;
        }
      }
      if (!improved) break;
      members.insert(
          std::lower_bound(members.begin(), members.end(), best_node),
          best_node);
      internal2 = best_internal2;
      boundary = best_boundary;
      fitness = best_fitness;
    }

    // Near-duplicate elimination: discard when too similar to an accepted
    // community (overlap fraction above 1 - overlap_discard).
    bool duplicate = false;
    for (const NodeSet& accepted : communities) {
      const std::size_t shared = intersection_size(members, accepted);
      const std::size_t smaller = std::min(members.size(), accepted.size());
      if (smaller > 0 &&
          static_cast<double>(shared) / static_cast<double>(smaller) >=
              1.0 - options.overlap_discard) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) communities.push_back(std::move(members));
  }
  std::sort(communities.begin(), communities.end());
  return communities;
}

}  // namespace kcc
