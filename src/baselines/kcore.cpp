#include "baselines/kcore.h"

#include <algorithm>

#include "graph/degeneracy.h"
#include "graph/graph_algorithms.h"
#include "graph/subgraph.h"

namespace kcc {

NodeSet KCoreDecomposition::core_nodes(std::uint32_t k) const {
  NodeSet out;
  for (NodeId v = 0; v < core_number.size(); ++v) {
    if (core_number[v] >= k) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> KCoreDecomposition::shell_sizes() const {
  std::vector<std::size_t> out(max_core + 1, 0);
  for (auto c : core_number) ++out[c];
  return out;
}

KCoreDecomposition kcore_decomposition(const Graph& g) {
  const DegeneracyResult deg = degeneracy_order(g);
  KCoreDecomposition result;
  result.core_number = deg.core_number;
  result.max_core = deg.degeneracy;
  return result;
}

std::vector<NodeSet> kcore_components(const Graph& g, std::uint32_t k) {
  const KCoreDecomposition decomposition = kcore_decomposition(g);
  const NodeSet members = decomposition.core_nodes(k);
  const InducedSubgraph sub = induced_subgraph(g, members);
  const ComponentLabeling labels = connected_components(sub.graph);
  std::vector<NodeSet> components(labels.count);
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    components[labels.component_of[v]].push_back(sub.to_parent[v]);
  }
  std::sort(components.begin(), components.end());
  return components;
}

}  // namespace kcc
