// Greedy Clique Expansion baseline (Lee, Reid, McDaid, Hurley 2010).
//
// The paper declines GCE for AS-level analysis because its local fitness
// function F(S) = k_in / (k_in + k_out)^alpha rewards subgraphs with more
// internal than external links — which Tier-1-style communities (dense core,
// enormous customer cone) never satisfy. We implement GCE so that the
// sec_1_baseline_comparison harness can demonstrate exactly that failure.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

struct GceOptions {
  std::size_t min_clique_size = 4;   // seed threshold (GCE default)
  double alpha = 1.0;                // fitness exponent
  double overlap_discard = 0.25;     // discard seed communities whose
                                     // near-duplicate distance is below this
  std::size_t max_seeds = 0;         // 0 = no cap
  std::size_t max_community_size = 0;  // stop expanding beyond this (0 = off)
};

/// Community fitness F(S) = k_in / (k_in + k_out)^alpha, where k_in counts
/// twice each internal edge and k_out the boundary edges.
double gce_fitness(const Graph& g, const NodeSet& members, double alpha);

/// Runs GCE: maximal-clique seeds, greedy expansion while fitness improves,
/// near-duplicate elimination. Returns sorted communities (lexicographic).
std::vector<NodeSet> greedy_clique_expansion(const Graph& g,
                                             const GceOptions& options = {});

}  // namespace kcc
