// k-core decomposition baseline (Seidman 1983; Batagelj–Zaversnik peeling).
//
// The paper's related work (Sec. 1) contrasts k-clique *covers* with
// partition-style structure such as k-cores; this module provides that
// comparator. The k-core is the maximal subgraph in which every node has
// degree >= k inside the subgraph; cores are nested and partition-like
// (every node has one core number).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

struct KCoreDecomposition {
  std::vector<std::uint32_t> core_number;  // per node
  std::uint32_t max_core = 0;

  /// Sorted node set of the k-core (nodes with core number >= k).
  NodeSet core_nodes(std::uint32_t k) const;

  /// Number of nodes in each shell (core_number == k exactly).
  std::vector<std::size_t> shell_sizes() const;
};

KCoreDecomposition kcore_decomposition(const Graph& g);

/// Connected components of the k-core, as sorted node sets (deterministic
/// order by smallest member). These are the "k-core communities" used by
/// partition-style AS studies.
std::vector<NodeSet> kcore_components(const Graph& g, std::uint32_t k);

}  // namespace kcc
