// k-dense decomposition baseline (Saito, Yamada, Kazama 2008).
//
// The k-dense subgraph is the maximal subgraph where every remaining edge
// (u, v) has at least k-2 common neighbours *inside the subgraph*; it sits
// between the k-core (degree condition) and the k-clique (full-mesh
// condition). Used by the AS-structure studies the paper builds on ([12]).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// Edges and nodes of the k-dense subgraph of `g` (k >= 2; k = 2 returns
/// every non-isolated node).
struct KDenseSubgraph {
  NodeSet nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;  // u < v, sorted
};

KDenseSubgraph kdense_subgraph(const Graph& g, std::uint32_t k);

/// Connected components of the k-dense subgraph, sorted node sets.
std::vector<NodeSet> kdense_components(const Graph& g, std::uint32_t k);

/// Per-edge denseness: the largest k such that the edge survives in the
/// k-dense subgraph. Returned in the order of Graph::edges().
std::vector<std::uint32_t> edge_denseness(const Graph& g);

}  // namespace kcc
