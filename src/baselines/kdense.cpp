#include "baselines/kdense.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"
#include "common/union_find.h"
#include "graph/graph.h"

namespace kcc {
namespace {

// Iteratively removes edges with fewer than `threshold` common neighbours in
// the surviving subgraph. `alive` flags edges; adjacency is rebuilt per
// round (simple and fast enough at library scale).
struct Peeler {
  const std::vector<std::pair<NodeId, NodeId>> all_edges;
  std::size_t num_nodes;
  std::vector<bool> alive;

  Peeler(const Graph& g)
      : all_edges(g.edges()), num_nodes(g.num_nodes()),
        alive(all_edges.size(), true) {}

  // Adjacency over alive edges (sorted).
  std::vector<std::vector<NodeId>> adjacency() const {
    std::vector<std::vector<NodeId>> adj(num_nodes);
    for (std::size_t e = 0; e < all_edges.size(); ++e) {
      if (!alive[e]) continue;
      adj[all_edges[e].first].push_back(all_edges[e].second);
      adj[all_edges[e].second].push_back(all_edges[e].first);
    }
    for (auto& list : adj) std::sort(list.begin(), list.end());
    return adj;
  }

  // One peeling pass; returns number of removed edges.
  std::size_t peel_once(std::uint32_t threshold) {
    const auto adj = adjacency();
    std::size_t removed = 0;
    for (std::size_t e = 0; e < all_edges.size(); ++e) {
      if (!alive[e]) continue;
      const auto& [u, v] = all_edges[e];
      if (intersection_size(adj[u], adj[v]) < threshold) {
        alive[e] = false;
        ++removed;
      }
    }
    return removed;
  }

  void peel_to_fixpoint(std::uint32_t threshold) {
    while (peel_once(threshold) > 0) {
    }
  }
};

}  // namespace

KDenseSubgraph kdense_subgraph(const Graph& g, std::uint32_t k) {
  require(k >= 2, "kdense_subgraph: k must be >= 2");
  Peeler peeler(g);
  peeler.peel_to_fixpoint(k - 2);

  KDenseSubgraph out;
  for (std::size_t e = 0; e < peeler.all_edges.size(); ++e) {
    if (!peeler.alive[e]) continue;
    out.edges.push_back(peeler.all_edges[e]);
    out.nodes.push_back(peeler.all_edges[e].first);
    out.nodes.push_back(peeler.all_edges[e].second);
  }
  sort_unique(out.nodes);
  return out;
}

std::vector<NodeSet> kdense_components(const Graph& g, std::uint32_t k) {
  const KDenseSubgraph sub = kdense_subgraph(g, k);
  if (sub.nodes.empty()) return {};

  // Union-find over the member nodes (re-labelled densely).
  std::vector<std::uint32_t> local(g.num_nodes(),
                                   static_cast<std::uint32_t>(-1));
  for (std::size_t i = 0; i < sub.nodes.size(); ++i) {
    local[sub.nodes[i]] = static_cast<std::uint32_t>(i);
  }
  UnionFind uf(sub.nodes.size());
  for (const auto& [u, v] : sub.edges) uf.unite(local[u], local[v]);

  std::vector<NodeSet> out;
  for (const auto& group : uf.groups()) {
    NodeSet nodes;
    nodes.reserve(group.size());
    for (std::uint32_t idx : group) nodes.push_back(sub.nodes[idx]);
    out.push_back(std::move(nodes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> edge_denseness(const Graph& g) {
  const auto edges = g.edges();
  std::vector<std::uint32_t> denseness(edges.size(), 0);
  Peeler peeler(g);
  std::uint32_t k = 2;
  std::size_t alive_count = edges.size();
  while (alive_count > 0) {
    // Mark all currently-alive edges as surviving k-dense.
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (peeler.alive[e]) denseness[e] = k;
    }
    ++k;
    peeler.peel_to_fixpoint(k - 2);
    alive_count = static_cast<std::size_t>(
        std::count(peeler.alive.begin(), peeler.alive.end(), true));
  }
  return denseness;
}

}  // namespace kcc
