#include "check/churn.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <utility>

#include "check/differential.h"
#include "clique/enumerator.h"
#include "common/error.h"
#include "cpm/engine.h"
#include "obs/metrics.h"

namespace kcc::check {
namespace {

using cpm::EdgeBatch;

Edge canon(Edge e) {
  if (e.first > e.second) std::swap(e.first, e.second);
  return e;
}

/// Canonical present-edge set of a TestGraph (the edges build() keeps):
/// normalized, sorted, deduped, loop-free.
std::vector<Edge> canonical_edges(const TestGraph& graph) {
  std::vector<Edge> present;
  present.reserve(graph.edges.size());
  for (const Edge& e : graph.edges) {
    if (e.first == e.second) continue;
    present.push_back(canon(e));
  }
  std::sort(present.begin(), present.end());
  present.erase(std::unique(present.begin(), present.end()), present.end());
  return present;
}

/// Draws one batch of up to `target_ops` updates against the current graph.
/// Removes are sampled without replacement from the present edges and adds
/// are rejection-sampled from the absent pairs, all against the one
/// pre-batch snapshot — so the two sides are disjoint and the batch is
/// valid by construction. May come back short (dense or edgeless graphs),
/// possibly empty.
EdgeBatch make_batch(const TestGraph& graph, Rng& rng,
                     std::size_t target_ops) {
  EdgeBatch batch;
  const std::vector<Edge> present = canonical_edges(graph);
  const std::size_t n = std::max<std::size_t>(graph.num_nodes, 2);
  const std::size_t removes =
      std::min<std::size_t>(rng.next_below(target_ops + 1), present.size());
  batch.remove = rng.sample_without_replacement(present, removes);
  const std::size_t adds = target_ops - removes;
  for (std::size_t i = 0; i < adds; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (u == v) continue;
      const Edge e = canon({u, v});
      if (std::binary_search(present.begin(), present.end(), e)) continue;
      if (std::find(batch.add.begin(), batch.add.end(), e) !=
          batch.add.end()) {
        continue;
      }
      batch.add.push_back(e);
      break;
    }
  }
  return batch;
}

/// Mirrors a batch onto the TestGraph the same way the engine applies it:
/// every raw listing (duplicates, either orientation) of a removed edge is
/// dropped, adds are appended and may grow num_nodes.
void apply_to_testgraph(TestGraph& graph, const EdgeBatch& batch) {
  if (!batch.remove.empty()) {
    std::vector<Edge> removed;
    removed.reserve(batch.remove.size());
    for (const Edge& e : batch.remove) removed.push_back(canon(e));
    std::sort(removed.begin(), removed.end());
    graph.edges.erase(
        std::remove_if(graph.edges.begin(), graph.edges.end(),
                       [&](const Edge& raw) {
                         return std::binary_search(removed.begin(),
                                                   removed.end(), canon(raw));
                       }),
        graph.edges.end());
  }
  for (const Edge& e : batch.add) {
    graph.edges.push_back(e);
    graph.num_nodes = std::max<std::size_t>(
        graph.num_nodes,
        static_cast<std::size_t>(std::max(e.first, e.second)) + 1);
  }
}

/// Shared core of the generated and replayed paths: apply `num_batches`
/// batches drawn from `next_batch` on top of `base`, holding the
/// incremental state to the three oracles after every batch.
ChurnOutcome run_schedule(
    const TestGraph& base, std::size_t num_batches,
    const std::function<EdgeBatch(const TestGraph&, std::size_t)>& next_batch,
    const cpm::Options& engine_options, std::string label,
    const ChurnOptions& options) {
  auto& schedules_total =
      obs::metrics().counter("check_churn_schedules_total");
  auto& batches_total = obs::metrics().counter("check_churn_batches_total");
  auto& mismatches_total =
      obs::metrics().counter("check_churn_mismatches_total");
  auto& faults_total = obs::metrics().counter("check_faults_injected_total");
  schedules_total.inc();

  const char* fault_env = std::getenv("KCC_CHECK_INJECT_FAULT");
  const std::string fault_kind = fault_env ? fault_env : "";

  ChurnOutcome outcome;
  outcome.label = std::move(label);

  TestGraph current = base;
  cpm::IncrementalCpm inc(base.build(), engine_options);
  std::vector<EdgeBatch> schedule;

  auto fail = [&](std::size_t batch_index, std::string what) {
    mismatches_total.inc();
    outcome.failure = outcome.label + " batch " +
                      std::to_string(batch_index + 1) + "/" +
                      std::to_string(num_batches) + ": " + std::move(what);
    outcome.repro = to_delta_stream(base, schedule);
  };

  for (std::size_t b = 0; b < num_batches && outcome.ok(); ++b) {
    const EdgeBatch batch = next_batch(current, b);
    schedule.push_back(batch);
    apply_to_testgraph(current, batch);
    try {
      inc.apply(batch);
    } catch (const Error& e) {
      fail(b, std::string("apply() rejected the batch: ") + e.what());
      break;
    }
    ++outcome.batches_applied;
    outcome.ops_applied += batch.size();
    batches_total.inc();

    const Graph g = current.build();
    cpm::Result incremental = inc.result();
    if (!fault_kind.empty() && !outcome.fault_injected) {
      const std::string injected =
          detail::inject_fault(incremental, fault_kind);
      if (!injected.empty()) {
        outcome.fault_injected = true;
        faults_total.inc();
      }
    }

    // Cheapest oracle first: the maintained adjacency must equal the
    // mutated test graph edge-for-edge (catches index corruption before it
    // can cancel out downstream in the community structure).
    const Graph maintained = inc.graph();
    if (maintained.num_nodes() != g.num_nodes() ||
        maintained.edges() != g.edges()) {
      fail(b, "maintained adjacency diverged from the mutated graph (" +
                  std::to_string(maintained.num_nodes()) + " nodes / " +
                  std::to_string(maintained.num_edges()) + " edges vs " +
                  std::to_string(g.num_nodes()) + " / " +
                  std::to_string(g.num_edges()) + ")");
      break;
    }

    // Digest identity against a from-scratch sweep of the mutated graph.
    // The incremental table is lexicographic, so the sweep baseline goes
    // through canonicalise_clique_order first.
    cpm::Options sweep_options = engine_options;
    sweep_options.engine = "sweep";
    cpm::Result fresh = cpm::Engine(sweep_options).run(g);
    cpm::canonicalise_clique_order(fresh);
    const std::string diff = detail::first_diff(
        "sweep-from-scratch", cpm::canonical_text(fresh), "incremental",
        cpm::canonical_text(incremental));
    if (!diff.empty()) {
      fail(b, diff);
      break;
    }

    // First-principles invariant oracles on the incremental result.
    Report report = check_invariants(g, incremental, options.invariants);
    outcome.invariants_checked += report.invariants_checked;
    if (!report.ok()) {
      fail(b, "invariants violated:\n" + report.to_string());
      break;
    }
  }
  return outcome;
}

}  // namespace

std::string to_delta_stream(const TestGraph& base,
                            const std::vector<EdgeBatch>& schedule) {
  std::ostringstream out;
  out << "# " << base.name << '\n';
  out << "nodes " << base.num_nodes << '\n';
  for (const Edge& e : base.edges) {
    out << "edge " << e.first << ' ' << e.second << '\n';
  }
  for (const EdgeBatch& batch : schedule) {
    for (const auto& e : batch.remove) {
      out << "remove " << e.first << ' ' << e.second << '\n';
    }
    for (const auto& e : batch.add) {
      out << "add " << e.first << ' ' << e.second << '\n';
    }
    out << "commit\n";
  }
  return out.str();
}

DeltaStream parse_delta_stream(const std::string& text) {
  DeltaStream stream;
  EdgeBatch batch;
  bool batch_open = false;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      if (stream.base.name.empty()) {
        // The first comment doubles as the provenance label.
        std::istringstream words(line.substr(hash + 1));
        std::string word, joined;
        while (words >> word) {
          if (!joined.empty()) joined += ' ';
          joined += word;
        }
        stream.base.name = joined;
      }
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string op;
    if (!(tokens >> op)) continue;
    const std::string where = "delta stream line " + std::to_string(line_no);
    auto parse_pair = [&]() {
      std::uint64_t u = 0, v = 0;
      require(static_cast<bool>(tokens >> u >> v),
              where + ": '" + op + "' needs two node ids");
      return Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)};
    };
    if (op == "nodes") {
      std::uint64_t n = 0;
      require(static_cast<bool>(tokens >> n), where + ": 'nodes' needs a count");
      stream.base.num_nodes = n;
    } else if (op == "edge") {
      require(!batch_open && stream.batches.empty(),
              where + ": 'edge' must precede the first batch op");
      stream.base.edges.push_back(parse_pair());
    } else if (op == "add") {
      batch.add.push_back(parse_pair());
      batch_open = true;
    } else if (op == "remove") {
      batch.remove.push_back(parse_pair());
      batch_open = true;
    } else if (op == "commit") {
      stream.batches.push_back(std::move(batch));
      batch = {};
      batch_open = false;
    } else {
      throw Error(where + ": unknown op '" + op +
                  "' (nodes|edge|add|remove|commit)");
    }
  }
  if (batch_open) stream.batches.push_back(std::move(batch));
  if (stream.base.name.empty()) stream.base.name = "delta";
  return stream;
}

ChurnOutcome run_churn_differential(std::uint64_t seed, std::size_t index,
                                    const ChurnOptions& options) {
  const TestGraph base = generate_graph(seed, index);
  static constexpr std::size_t kBatchSizes[] = {1, 3, 8};
  const std::size_t batch_size = kBatchSizes[index % 3];
  const bool bitset = (index / 2) % 2 == 1;
  cpm::Options engine_options;
  engine_options.threads = index % 2 == 0 ? 1 : options.threads;
  engine_options.clique_backend =
      bitset ? clique::Backend::kBitset : clique::Backend::kSparse;
  std::string label = "churn:" + base.name + "/b" +
                      std::to_string(batch_size) +
                      (engine_options.threads == 1 ? "/t1" : "/tN") +
                      (bitset ? "/bitset" : "/sparse");
  if (index % 5 == 4) {
    // Every fifth schedule materializes a restricted k range, proving the
    // maintained size >= 2 table stays exact when the floor only bites at
    // materialization time.
    engine_options.min_k = 3;
    engine_options.max_k = 5;
    label += "/k3-5";
  }
  // Decorrelated from generate_graph's (seed, index) stream so schedule ops
  // don't mirror the mutations already baked into the base graph.
  Rng rng((seed ^ 0x94d049bb133111ebULL) * 0x9e3779b97f4a7c15ULL + index);
  return run_schedule(
      base, options.batches,
      [&](const TestGraph& current, std::size_t) {
        return make_batch(current, rng, batch_size);
      },
      engine_options, std::move(label), options);
}

ChurnOutcome replay_churn_delta(const std::string& text,
                                const ChurnOptions& options) {
  const DeltaStream stream = parse_delta_stream(text);
  cpm::Options engine_options;
  engine_options.threads = options.threads;
  return run_schedule(
      stream.base, stream.batches.size(),
      [&](const TestGraph&, std::size_t b) { return stream.batches[b]; },
      engine_options, "churn-replay:" + stream.base.name, options);
}

}  // namespace kcc::check
