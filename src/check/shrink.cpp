#include "check/shrink.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace kcc::check {
namespace {

// Drops isolated nodes and renumbers the rest densely, so the artifact's
// node count matches what read_edge_list reconstructs from the labels.
TestGraph compact(const TestGraph& g) {
  std::map<NodeId, NodeId> dense;
  for (const Edge& e : g.edges) {
    dense.emplace(e.first, 0);
    dense.emplace(e.second, 0);
  }
  NodeId next = 0;
  for (auto& [node, id] : dense) id = next++;
  TestGraph out;
  out.name = g.name;
  out.num_nodes = dense.size();
  out.edges.reserve(g.edges.size());
  for (const Edge& e : g.edges) {
    out.edges.emplace_back(dense.at(e.first), dense.at(e.second));
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const TestGraph& failing,
                    const FailurePredicate& predicate,
                    std::size_t max_evaluations) {
  ShrinkResult result;
  result.graph = failing;
  auto still_fails = [&](const TestGraph& candidate) {
    ++result.evaluations;
    return predicate(candidate);
  };
  require(still_fails(failing),
          "check::shrink: the input graph does not satisfy the failure "
          "predicate");

  // ddmin over the edge list: try to delete chunks, halving the chunk size
  // whenever a full sweep at the current size removes nothing.
  TestGraph current = failing;
  std::size_t chunk = std::max<std::size_t>(current.edges.size() / 2, 1);
  while (chunk >= 1 && result.evaluations < max_evaluations) {
    bool removed_any = false;
    std::size_t begin = 0;
    while (begin < current.edges.size() &&
           result.evaluations < max_evaluations) {
      TestGraph candidate = current;
      const std::size_t end =
          std::min(begin + chunk, candidate.edges.size());
      candidate.edges.erase(
          candidate.edges.begin() + static_cast<std::ptrdiff_t>(begin),
          candidate.edges.begin() + static_cast<std::ptrdiff_t>(end));
      if (still_fails(candidate)) {
        current = std::move(candidate);  // keep; retry the same offset
        removed_any = true;
      } else {
        begin = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    if (!removed_any) chunk = std::max<std::size_t>(chunk / 2, 1);
  }

  // compact() relabels nodes; keep the compacted form only if the predicate
  // still holds on what we would actually report (and write as artifact).
  TestGraph compacted = compact(current);
  if (result.evaluations < max_evaluations && still_fails(compacted)) {
    current = std::move(compacted);
  }
  result.graph = std::move(current);

  // 1-minimality: every surviving edge is load-bearing.
  result.one_minimal = true;
  for (std::size_t i = 0;
       i < result.graph.edges.size() && result.evaluations < max_evaluations;
       ++i) {
    TestGraph candidate = result.graph;
    candidate.edges.erase(candidate.edges.begin() +
                          static_cast<std::ptrdiff_t>(i));
    if (still_fails(candidate)) {
      result.one_minimal = false;  // ddmin budget ran out mid-sweep
      break;
    }
  }
  if (result.evaluations >= max_evaluations) result.one_minimal = false;
  return result;
}

}  // namespace kcc::check
