// Churn differential: proves the incremental CPM engine exact under edge
// batches (docs/TESTING.md#churn-differential).
//
// One *schedule* is a seeded base graph (check::generate_graph — the same
// corpus the engine-matrix fuzzer uses, degenerate shapes included) plus a
// randomized sequence of add/remove/rewire edge batches. The runner
// bootstraps a live cpm::IncrementalCpm on the base graph and, after every
// batch, holds its materialized result to three oracles:
//
//  * adjacency  — the maintained graph must equal the mutated test graph
//    edge-for-edge (cheap, catches index corruption before it can cancel
//    out in the community structure);
//  * digest     — cpm::canonical_text must be byte-identical to a
//    from-scratch sweep on the mutated graph (the sweep result is passed
//    through cpm::canonicalise_clique_order first — the incremental table
//    is lexicographic, see EngineCaps::canonical_clique_order);
//  * invariants — the first-principles oracles of invariants.h, which
//    share no percolation code with either engine.
//
// Schedule parameters (batch size ∈ {1, 3, 8}, thread count, clique
// backend, an occasional restricted k range) are derived from the schedule
// index, so `--seed S --schedules N` sweeps the option matrix
// deterministically. On failure the whole run is captured as a *delta
// stream* — initial graph plus the batch schedule truncated to the failing
// batch — the committed-reproducer format under tests/corpus/*.delta
// (grammar in docs/FORMATS.md#delta-streams), replayable byte-for-byte
// with replay_churn_delta (kcc_fuzz does this for every committed .delta).
//
// The KCC_CHECK_INJECT_FAULT hook (differential.h) applies here too: the
// first batch whose incremental result has a corruptible record gets one
// injected, and kcc_fuzz --expect-fault/--expect-repro turn that into the
// vacuous-harness self-test.
//
// obs counters: check_churn_schedules_total, check_churn_batches_total,
// check_churn_mismatches_total, plus the shared
// check_faults_injected_total (catalog in docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/generators.h"
#include "check/invariants.h"
#include "cpm/incr_cpm.h"

namespace kcc::check {

struct ChurnOptions {
  /// Batches per generated schedule (replays take their length from the
  /// delta stream instead).
  std::size_t batches = 6;
  /// The "N" of the alternating t1 / tN thread axis.
  std::size_t threads = 4;
  InvariantOptions invariants;
};

struct ChurnOutcome {
  /// e.g. "churn:er(n=23,p=0.31)/b3/tN/sparse".
  std::string label;
  std::size_t batches_applied = 0;
  std::size_t ops_applied = 0;
  std::uint64_t invariants_checked = 0;
  /// Empty iff every batch kept digest identity and every invariant held.
  std::string failure;
  /// On failure: the delta stream reproducing it (initial graph + schedule
  /// truncated to the failing batch), ready to write as a .delta artifact.
  std::string repro;
  /// True when KCC_CHECK_INJECT_FAULT corrupted a record in this run.
  bool fault_injected = false;

  bool ok() const { return failure.empty(); }
};

/// A parsed delta stream: initial graph plus the batch schedule.
struct DeltaStream {
  TestGraph base;
  std::vector<cpm::EdgeBatch> batches;
};

/// Serializes an initial graph and batch schedule as a delta stream
/// ("# name", "nodes N", "edge u v"..., then per batch "remove u v" /
/// "add u v" lines closed by "commit").
std::string to_delta_stream(const TestGraph& base,
                            const std::vector<cpm::EdgeBatch>& schedule);

/// Parses a delta stream; throws kcc::Error on malformed input. Trailing
/// ops without a closing "commit" form a final batch; the first comment
/// line doubles as the provenance label.
DeltaStream parse_delta_stream(const std::string& text);

/// Runs schedule `index` for `seed`: base graph generate_graph(seed, index),
/// batch size / threads / backend / k range derived from `index`,
/// options.batches randomized batches, the three oracles after every batch.
ChurnOutcome run_churn_differential(std::uint64_t seed, std::size_t index,
                                    const ChurnOptions& options = {});

/// Replays a delta stream verbatim (committed .delta reproducers), running
/// the same per-batch oracles as run_churn_differential.
ChurnOutcome replay_churn_delta(const std::string& text,
                                const ChurnOptions& options = {});

}  // namespace kcc::check
