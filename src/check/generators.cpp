#include "check/generators.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "synth/as_topology.h"
#include "synth/params.h"

namespace kcc::check {
namespace {

TestGraph fixed(std::string name, std::size_t n,
                std::vector<Edge> edges = {}) {
  TestGraph g;
  g.name = std::move(name);
  g.num_nodes = n;
  g.edges = std::move(edges);
  return g;
}

void mesh(TestGraph& g, const std::vector<NodeId>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      g.edges.emplace_back(nodes[i], nodes[j]);
    }
  }
}

std::vector<NodeId> range(NodeId lo, NodeId hi) {  // [lo, hi)
  std::vector<NodeId> out;
  for (NodeId v = lo; v < hi; ++v) out.push_back(v);
  return out;
}

TestGraph degenerate(std::size_t index) {
  switch (index) {
    case 0:
      return fixed("empty", 0);
    case 1:
      return fixed("isolated(4)", 4);
    case 2:
      return fixed("single-edge", 2, {{0, 1}});
    case 3: {
      TestGraph g = fixed("star(6)", 7);
      for (NodeId v = 1; v < 7; ++v) g.edges.emplace_back(0, v);
      return g;
    }
    case 4: {
      TestGraph g = fixed("path(6)", 6);
      for (NodeId v = 0; v + 1 < 6; ++v) g.edges.emplace_back(v, v + 1);
      return g;
    }
    case 5: {
      TestGraph g = fixed("cycle(7)", 7);
      for (NodeId v = 0; v < 7; ++v) {
        g.edges.emplace_back(v, static_cast<NodeId>((v + 1) % 7));
      }
      return g;
    }
    case 6: {
      TestGraph g = fixed("complete(6)", 6);
      mesh(g, range(0, 6));
      return g;
    }
    case 7: {
      // Disconnected: two triangles plus an isolated node.
      TestGraph g = fixed("two-triangles+isolated", 7);
      mesh(g, {0, 1, 2});
      mesh(g, {3, 4, 5});
      return g;
    }
    case 8: {
      // The canonical CPM example: K5 and K5 sharing 3 nodes.
      TestGraph g = fixed("overlap(5,5,share=3)", 7);
      mesh(g, {0, 1, 2, 3, 4});
      mesh(g, {0, 1, 2, 5, 6});
      return g;
    }
    default: {
      // Triangle-free but connected: communities exist only at k = 2.
      TestGraph g = fixed("bipartite(3,3)", 6);
      for (NodeId u = 0; u < 3; ++u) {
        for (NodeId v = 3; v < 6; ++v) g.edges.emplace_back(u, v);
      }
      return g;
    }
  }
}

TestGraph erdos_renyi(Rng& rng) {
  const std::size_t n = 8 + rng.next_below(41);
  const double p = 0.05 + 0.45 * rng.next_double();
  std::ostringstream name;
  name << "er(n=" << n << ",p=" << p << ')';
  TestGraph g = fixed(name.str(), n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(p)) g.edges.emplace_back(i, j);
    }
  }
  return g;
}

TestGraph planted_cliques(Rng& rng) {
  const std::size_t n = 20 + rng.next_below(41);
  const std::size_t plants = 1 + rng.next_below(3);
  TestGraph g = fixed("planted(n=" + std::to_string(n) + ",c=" +
                          std::to_string(plants) + ')',
                      n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.next_bool(0.06)) g.edges.emplace_back(i, j);
    }
  }
  std::vector<NodeId> pool = range(0, static_cast<NodeId>(n));
  for (std::size_t c = 0; c < plants; ++c) {
    const std::size_t size = 4 + rng.next_below(6);
    mesh(g, rng.sample_without_replacement(pool, std::min(size, n)));
  }
  return g;
}

TestGraph preferential_attachment(Rng& rng) {
  const std::size_t n = 15 + rng.next_below(46);
  const std::size_t m = 1 + rng.next_below(3);
  TestGraph g = fixed(
      "pa(n=" + std::to_string(n) + ",m=" + std::to_string(m) + ')', n);
  std::vector<NodeId> pool;
  for (NodeId v = 1; v <= m && v < n; ++v) {
    g.edges.emplace_back(0, v);
    pool.push_back(0);
    pool.push_back(v);
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    for (std::size_t e = 0; e < m; ++e) {
      const NodeId target = pool[rng.next_below(pool.size())];
      if (target != v) {
        g.edges.emplace_back(v, target);
        pool.push_back(target);
        pool.push_back(v);
      }
    }
  }
  return g;
}

// A chain of cliques where consecutive links share a random number of
// nodes — small-scale analog of the ecosystem's trunk chains, and the
// family most likely to exercise percolation across many k at once.
TestGraph clique_chain(Rng& rng) {
  const std::size_t links = 2 + rng.next_below(6);
  TestGraph g = fixed("chain(links=" + std::to_string(links) + ')', 0);
  NodeId next_node = 0;
  std::vector<NodeId> previous;
  for (std::size_t link = 0; link < links; ++link) {
    const std::size_t size = 3 + rng.next_below(6);
    const std::size_t shared =
        previous.empty() ? 0
                         : 1 + rng.next_below(std::min(previous.size(),
                                                       size - 1));
    std::vector<NodeId> members =
        rng.sample_without_replacement(previous, shared);
    while (members.size() < size) members.push_back(next_node++);
    mesh(g, members);
    previous = std::move(members);
  }
  g.num_nodes = next_node;
  return g;
}

// The synthetic AS ecosystem at a few hundred ASes: all the planted
// structure (apex clique, crowns, trunk chains, regional cliques) at a size
// where a full engine matrix plus the O(C^2) percolation oracle stays in
// milliseconds.
TestGraph mini_ecosystem(Rng& rng) {
  SynthParams params;
  params.seed = rng.next_u64();
  params.num_ases = 320 + rng.next_below(161);
  params.num_tier1 = 5;
  params.transit_fraction = 0.15;
  params.num_countries = 8;
  params.num_regional_cliques = 25;
  params.regional_clique_min = 3;
  params.regional_clique_max = 6;
  params.num_ixps = 8;
  params.big_ixp_count = 1;
  params.big_ixp_participants = 40;
  params.big_core_size = 14;
  params.big_middle_ring = 20;
  params.small_ixp_min = 3;
  params.small_ixp_max = 12;
  params.route_server_ixp_max = 8;
  params.apex_clique_size = 10;
  params.apex_satellites = 1;
  params.crown_cliques_per_big_ixp = 2;
  params.crown_clique_min = 7;
  params.crown_clique_max = 8;
  params.trunk_chains = 2;
  // plant_trunk_chains glues each chain with an attach overlap >= 4, so the
  // chain k must stay above that.
  params.trunk_chain_min_k = 5;
  params.trunk_chain_max_k = 6;
  params.trunk_chain_min_len = 2;
  params.trunk_chain_max_len = 3;
  params.nested_branch_base = 5;
  params.nested_branch_levels = 2;
  params.validate();
  const AsEcosystem eco = generate_ecosystem(params);
  TestGraph g = fixed("ecosystem(n=" + std::to_string(params.num_ases) +
                          ",seed=" + std::to_string(params.seed) + ')',
                      eco.topology.graph.num_nodes());
  g.edges = eco.topology.graph.edges();
  return g;
}

}  // namespace

Graph TestGraph::build() const {
  std::size_t n = num_nodes;
  std::vector<Edge> clean;
  clean.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.first == e.second) continue;  // loader semantics: drop self-loops
    n = std::max<std::size_t>(n, std::max(e.first, e.second) + 1);
    clean.push_back(e);
  }
  return Graph::from_edges(n, clean);
}

std::string TestGraph::to_edge_list() const {
  std::ostringstream out;
  out << "# " << name << '\n';
  for (const Edge& e : edges) out << e.first << ' ' << e.second << '\n';
  return out.str();
}

std::size_t degenerate_graph_count() { return 10; }

cpm::EdgeBatch mutate_graph(TestGraph& graph, Rng& rng) {
  cpm::EdgeBatch batch;
  // Canonical view of the current edges (normalized, deduped, loop-free) —
  // the edge set build() produces. Both picks below are made against this
  // ONE snapshot: a removed edge is present, an added edge absent, so the
  // two sides of a rewire can never collide.
  std::vector<Edge> present;
  present.reserve(graph.edges.size());
  for (Edge e : graph.edges) {
    if (e.first == e.second) continue;
    if (e.first > e.second) std::swap(e.first, e.second);
    present.push_back(e);
  }
  std::sort(present.begin(), present.end());
  present.erase(std::unique(present.begin(), present.end()), present.end());
  const std::size_t n = std::max<std::size_t>(graph.num_nodes, 2);

  auto pick_absent = [&]() -> std::optional<Edge> {
    if (present.size() >= n * (n - 1) / 2) return std::nullopt;  // complete
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (u == v) continue;
      const Edge e = u < v ? Edge{u, v} : Edge{v, u};
      if (!std::binary_search(present.begin(), present.end(), e)) return e;
    }
    return std::nullopt;  // dense graph, unlucky draws: skip the op
  };
  auto do_add = [&]() {
    const std::optional<Edge> e = pick_absent();
    if (!e) return false;
    batch.add.push_back(*e);
    graph.edges.push_back(*e);
    graph.num_nodes = std::max<std::size_t>(
        graph.num_nodes, std::max(e->first, e->second) + std::size_t{1});
    return true;
  };
  auto do_remove = [&]() {
    if (present.empty()) return false;
    const Edge e = present[rng.next_below(present.size())];
    batch.remove.push_back(e);
    // Drop every raw listing (duplicates, either orientation) so the
    // removal is visible in the built graph; num_nodes stays, the
    // endpoints just lose this edge.
    graph.edges.erase(
        std::remove_if(graph.edges.begin(), graph.edges.end(),
                       [&](Edge raw) {
                         if (raw.first > raw.second) {
                           std::swap(raw.first, raw.second);
                         }
                         return raw == e;
                       }),
        graph.edges.end());
    return true;
  };

  switch (rng.next_below(3)) {
    case 0:
      if (do_add()) graph.name += "+add";
      break;
    case 1:
      if (do_remove()) graph.name += "+del";
      break;
    default: {
      // Rewire = remove one present edge and add one absent one.
      const bool removed = do_remove();
      const bool added = do_add();
      if (removed || added) graph.name += "+rewire";
      break;
    }
  }
  return batch;
}

TestGraph generate_graph(std::uint64_t seed, std::size_t index) {
  if (index < degenerate_graph_count()) return degenerate(index);
  // Decorrelate (seed, index) pairs; Rng's reseed runs SplitMix64 on top.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + index);
  TestGraph g;
  switch ((index - degenerate_graph_count()) % 5) {
    case 0:
      g = erdos_renyi(rng);
      break;
    case 1:
      g = planted_cliques(rng);
      break;
    case 2:
      g = preferential_attachment(rng);
      break;
    case 3:
      g = clique_chain(rng);
      break;
    default:
      g = mini_ecosystem(rng);
      break;
  }
  const std::size_t mutations = rng.next_below(4);
  for (std::size_t m = 0; m < mutations; ++m) mutate_graph(g, rng);
  return g;
}

}  // namespace kcc::check
