// Differential runner: all engines × option matrix on one graph.
//
// The variant matrix is generated from the cpm engine registry
// (cpm::engine_registry()), so a newly registered backend joins the axis
// without touching this file. For each option group (the full k range and a
// restricted one) a baseline engine runs first (per_k, single-threaded —
// the structure closest to the original LP-CPM oracle); every other *exact*
// variant (each registered exact engine × threads ∈ {1, N}, spill/auto
// variants for budget-capable engines, bitset/backend crosses, and — on
// tiny graphs — the exponential reference engine) must produce a
// byte-identical canonical serialization (cpm::canonical_text); variants of
// engines that declare EngineCaps::canonical_clique_order are diffed
// against the baseline passed through cpm::canonicalise_clique_order, since
// clique-table order is a serialization detail rather than CPM output. The
// baseline result is also validated from first principles by the invariant
// oracles (invariants.h). Any divergence is reported as the first differing
// canonical line, which pinpoints the k level / community / tree node that
// went wrong.
//
// Approximate engines (EngineCaps::exact == false, e.g. almost_exact) are
// exempt from the digest gate and held to a gap threshold instead: each
// runs at t1 and tN (the two must still be byte-identical to each other —
// approximation is no excuse for nondeterminism) and is scored against the
// baseline with cpm::compare_results; worst per-k community F1 below
// DiffOptions::approx_min_f1 is a failure.
//
// Fault-injection self-test: when the KCC_CHECK_INJECT_FAULT environment
// variable is set ("community" | "clique-map" | "tree"), the runner corrupts
// one record of the final exact variant's result before diffing. A healthy
// harness must detect the corruption — tools/kcc_fuzz.cpp --expect-fault
// turns this into a ctest guard against a vacuously-green fuzzer.
//
// obs counters: check_graphs_total, check_variants_total,
// check_invariants_total, check_mismatches_total, check_faults_injected_total
// plus the cpm_gap_* family from compare_results
// (catalog in docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <string>

#include "check/generators.h"
#include "check/invariants.h"
#include "graph/graph.h"

namespace kcc::check {

struct DiffOptions {
  /// The "N" of the threads ∈ {1, N} axis.
  std::size_t threads = 4;
  /// Run the exponential reference engine when the graph is small enough.
  bool include_reference = true;
  std::size_t reference_max_nodes = 24;
  std::size_t reference_max_edges = 80;
  /// Also run a restricted-k-range option group (min_k = 3, max_k = 5).
  bool include_restricted_range = true;
  /// Run the registered approximate engines (almost_exact) in gap-threshold
  /// mode against the baseline.
  bool include_approximate = true;
  /// Worst per-k community F1 an approximate engine may produce before the
  /// run counts as a failure.
  double approx_min_f1 = 0.99;
  InvariantOptions invariants;
};

struct DiffOutcome {
  /// Variant labels that were executed, e.g. "sweep/t1", "stream/t1/spill".
  std::size_t variants_run = 0;
  std::uint64_t invariants_checked = 0;
  /// Worst per-k community F1 any approximate engine scored against the
  /// baseline (1.0 when none ran or all were perfect).
  double worst_approx_f1 = 1.0;
  /// Empty iff everything agreed and every invariant held.
  std::string failure;
  /// True when KCC_CHECK_INJECT_FAULT corrupted a record in this run.
  bool fault_injected = false;

  bool ok() const { return failure.empty(); }
};

/// Runs the full engine/option matrix on `g` and diffs canonical results.
DiffOutcome run_differential(const Graph& g, const DiffOptions& options = {});

/// Convenience overload building the graph from a corpus entry.
DiffOutcome run_differential(const TestGraph& graph,
                             const DiffOptions& options = {});

namespace detail {

/// Test-only corruption hook shared by the differential and churn runners
/// (KCC_CHECK_INJECT_FAULT): corrupts one record of `result` of the given
/// kind ("community" | "clique-map" | "tree") and returns a description of
/// what was corrupted, or an empty string when the result has no record of
/// that kind. Throws kcc::Error on an unknown kind.
std::string inject_fault(cpm::Result& result, const std::string& kind);

/// First line where two canonical texts diverge, with both readings
/// (empty string when identical).
std::string first_diff(const std::string& base_label, const std::string& base,
                       const std::string& label, const std::string& text);

}  // namespace detail

}  // namespace kcc::check
