// Invariant oracles: validate any cpm::Engine result from first principles.
//
// The engines promise byte-identical output, but identical output can still
// be identically *wrong*. These oracles re-derive what a correct result must
// look like straight from the definitions in the paper, sharing no
// percolation code with the engines:
//
//  * clique table   — every emitted clique is a clique of g and maximal per
//    the Bron–Kerbosch definition (no outside vertex adjacent to all
//    members), the table has no duplicates, and it is complete (every
//    maximal clique of size >= 2 appears);
//  * community shape — node sets sorted/unique/in-range, each community is
//    the union of its listed cliques, every listed clique has size >= k,
//    levels are in canonical order (size desc, nodes lex) with dense ids,
//    and the clique -> community map partitions the eligible cliques;
//  * percolation    — communities at each k are re-derived with an
//    independent O(C^2) pairwise-overlap union-find (cliques sharing
//    >= k-1 nodes percolate together; k = 2 via connected components) and
//    compared set-for-set;
//  * nesting        — Theorem 1 (paper Sec. 3.1): each k-community lies in
//    exactly one (k-1)-community;
//  * tree           — levels mirror the community sets, parents live one
//    level down and contain their children, child links are consistent,
//    and the main chain is exactly the apex's ancestor path;
//  * metrics        — link density, average ODF and pairwise community
//    overlaps recompute to the exported values with naive loops.
//
// Used by the check:: differential runner (differential.h) and directly by
// tests; docs/TESTING.md describes the workflow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpm/engine.h"
#include "graph/graph.h"

namespace kcc::check {

/// One violated invariant, with enough detail to locate the offender.
struct Failure {
  std::string invariant;  // e.g. "percolation", "nesting", "clique-maximal"
  std::string detail;
};

struct Report {
  std::vector<Failure> failures;
  /// Number of elementary predicates evaluated (loud in kcc_fuzz output so
  /// a vacuously-green run is visible as a suspiciously low count).
  std::uint64_t invariants_checked = 0;

  bool ok() const { return failures.empty(); }
  void add(std::string invariant, std::string detail);
  void merge(Report other);
  /// Human-readable failure list (empty string when ok()).
  std::string to_string() const;
};

struct InvariantOptions {
  /// Recompute per-community metrics (density, ODF, overlaps) and compare
  /// against metrics/ exports.
  bool check_metrics = true;
  /// The percolation re-derivation is O(C^2) clique intersections per k;
  /// above this clique count it is skipped (the structural checks remain).
  std::size_t max_cliques_for_percolation = 20000;
  /// Clique-table completeness re-enumerates maximal cliques; skipped above
  /// this node count.
  std::size_t max_nodes_for_completeness = 4096;
  /// min_clique_size the engine ran with (cliques below it are absent).
  std::size_t min_clique_size = 2;
};

/// Validates `result` (as produced by any engine over `g`) from first
/// principles. A Result whose cpm carries no clique table (the reference
/// engine) gets the node-set-level checks only.
Report check_invariants(const Graph& g, const cpm::Result& result,
                        const InvariantOptions& options = {});

}  // namespace kcc::check
