// Fuzzing corpus: graph generators and mutators for the check:: subsystem.
//
// generate_graph(seed, index) is a pure function of its arguments — the
// whole corpus is replayable from a single (seed, iteration-count) pair,
// which is what makes `kcc_fuzz --seed S --iters N` deterministic. The
// first degenerate_graph_count() indices are fixed pathological shapes
// (empty, isolated nodes, star, path, cycle, complete, disconnected,
// overlapping cliques, bipartite); later indices cycle through seeded
// families (Erdős–Rényi, planted cliques, preferential attachment, clique
// chains, a scaled-down synthetic AS ecosystem) with a few random edge
// add/remove/rewire mutations layered on top.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "cpm/incr_cpm.h"
#include "graph/graph.h"

namespace kcc::check {

/// An undirected edge as generated / mutated; may contain self-loops and
/// duplicates (build() cleans them the way the edge-list loader does, so
/// mutated graphs stay loadable as artifacts).
using Edge = std::pair<NodeId, NodeId>;

/// A corpus entry: the edge list is the substrate the shrinker minimizes.
struct TestGraph {
  std::string name;  // human-readable provenance, e.g. "er(n=23,p=0.31)"
  std::size_t num_nodes = 0;
  std::vector<Edge> edges;

  /// Materializes the Graph (num_nodes grows to cover every endpoint).
  Graph build() const;

  /// "u v" lines with a "# name" comment header — loadable by
  /// io/read_edge_list, the reproducer-artifact format under tests/corpus/.
  std::string to_edge_list() const;
};

/// Number of fixed degenerate shapes at the start of every corpus.
std::size_t degenerate_graph_count();

/// The `index`-th graph of the corpus for `seed`. Indices below
/// degenerate_graph_count() are seed-independent fixed shapes.
TestGraph generate_graph(std::uint64_t seed, std::size_t index);

/// Applies one random add / remove / rewire mutation in place and returns
/// it as the equivalent cpm::EdgeBatch, expressed against the graph
/// build() produces: adds are normalized absent non-loop edges, removes
/// are present edges (every raw duplicate listing is dropped too), and the
/// two sides are disjoint — so the batch replays verbatim on a live
/// IncrementalCpm (the churn harness relies on this). Node ids never
/// dangle: removal keeps num_nodes, an add can only grow it. The batch is
/// empty when the op is impossible (remove on an edgeless graph, add on a
/// complete one).
cpm::EdgeBatch mutate_graph(TestGraph& graph, Rng& rng);

}  // namespace kcc::check
