// Delta-debugging shrinker: minimize a failing graph to a reproducer.
//
// Given a TestGraph on which `predicate` returns true ("still fails"), the
// shrinker greedily removes edge chunks (ddmin: halving chunk sizes down to
// single edges), then compacts away isolated nodes, and returns the smallest
// edge list that still satisfies the predicate. The result is 1-minimal:
// removing any single remaining edge makes the predicate pass. Everything is
// deterministic — no randomness, edge order preserved — so a shrink is
// replayable from the original failure. kcc_fuzz writes the result via
// TestGraph::to_edge_list() as a loadable artifact under tests/corpus/.
#pragma once

#include <cstdint>
#include <functional>

#include "check/generators.h"

namespace kcc::check {

/// Returns true when `graph` still exhibits the failure being minimized.
/// Must be deterministic; it is called O(edges * log edges) times.
using FailurePredicate = std::function<bool(const TestGraph&)>;

struct ShrinkResult {
  TestGraph graph;                    // the minimized reproducer
  std::size_t evaluations = 0;        // predicate calls spent
  bool one_minimal = false;           // verified: every edge is load-bearing
};

/// ddmin over `failing.edges`. `failing` must satisfy `predicate`; throws
/// kcc::Error otherwise (a shrink request for a passing graph is a harness
/// bug). `max_evaluations` bounds the search; when exhausted the best
/// reduction so far is returned with one_minimal = false.
ShrinkResult shrink(const TestGraph& failing, const FailurePredicate& predicate,
                    std::size_t max_evaluations = 10000);

}  // namespace kcc::check
