#include "check/invariants.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "clique/enumerator.h"
#include "common/set_ops.h"
#include "metrics/community_metrics.h"
#include "metrics/overlap.h"

namespace kcc::check {
namespace {

// The oracles deliberately re-implement their tiny data structures instead
// of reusing common/union_find.h and graph/graph_algorithms.h: an engine bug
// shared with those helpers must not cancel out in the checker.
struct Dsu {
  explicit Dsu(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<uint32_t>(i);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent[find(a)] = find(b); }
  std::vector<std::uint32_t> parent;
};

std::string show_nodes(const NodeSet& nodes) {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < nodes.size() && i < 16; ++i) {
    if (i > 0) out << ' ';
    out << nodes[i];
  }
  if (nodes.size() > 16) out << " ...";
  out << "} (" << nodes.size() << " nodes)";
  return out.str();
}

std::string at(std::size_t k, CommunityId id) {
  return "k=" + std::to_string(k) + " community " + std::to_string(id);
}

// Sorted member list of every maximal clique containing v? No — candidates
// adjacent to ALL of `clique`: the running intersection of member
// adjacencies. Non-empty remainder outside the clique itself refutes
// maximality by definition.
NodeSet common_neighbors(const Graph& g, const NodeSet& clique) {
  NodeSet common(g.neighbors(clique[0]).begin(), g.neighbors(clique[0]).end());
  for (std::size_t i = 1; i < clique.size() && !common.empty(); ++i) {
    const auto adj = g.neighbors(clique[i]);
    NodeSet next;
    std::set_intersection(common.begin(), common.end(), adj.begin(), adj.end(),
                          std::back_inserter(next));
    common = std::move(next);
  }
  return common;
}

void check_clique_table(const Graph& g, const CpmResult& cpm,
                        const InvariantOptions& options, Report& report) {
  for (CliqueId c = 0; c < cpm.cliques.size(); ++c) {
    const NodeSet& clique = cpm.cliques[c];
    report.invariants_checked += 4;
    if (clique.size() < options.min_clique_size || !is_sorted_unique(clique)) {
      report.add("clique-table",
                 "clique " + std::to_string(c) +
                     " is not a sorted set of >= " +
                     std::to_string(options.min_clique_size) + " nodes: " +
                     show_nodes(clique));
      continue;
    }
    if (clique.back() >= g.num_nodes()) {
      report.add("clique-table", "clique " + std::to_string(c) +
                                     " references node " +
                                     std::to_string(clique.back()) +
                                     " outside the graph");
      continue;
    }
    bool is_clique = true;
    for (std::size_t i = 0; i < clique.size() && is_clique; ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        if (!g.has_edge(clique[i], clique[j])) {
          report.add("clique-table",
                     "clique " + std::to_string(c) + " misses edge {" +
                         std::to_string(clique[i]) + ", " +
                         std::to_string(clique[j]) + "}: not a clique");
          is_clique = false;
          break;
        }
      }
    }
    if (!is_clique) continue;
    // Maximal per the Bron–Kerbosch definition: nobody outside is adjacent
    // to every member.
    const NodeSet extension = common_neighbors(g, clique);
    if (!extension.empty()) {
      report.add("clique-maximal",
                 "clique " + std::to_string(c) + " " + show_nodes(clique) +
                     " extends by node " + std::to_string(extension[0]));
    }
  }

  // Completeness + uniqueness: as a sorted multiset, the table must equal
  // the maximal cliques of g.
  if (g.num_nodes() <= options.max_nodes_for_completeness) {
    ++report.invariants_checked;
    // The oracle pins the sparse kernel so the completeness check stays
    // independent of whichever backend produced the table under test.
    clique::Options copt;
    copt.min_size = options.min_clique_size;
    copt.backend = clique::Backend::kSparse;
    std::vector<NodeSet> expected = clique::Enumerator(g, copt).collect();
    std::vector<NodeSet> actual = cpm.cliques;
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    if (expected != actual) {
      report.add("clique-complete",
                 "clique table has " + std::to_string(actual.size()) +
                     " entries, enumeration finds " +
                     std::to_string(expected.size()) +
                     " maximal cliques (or the sets differ)");
    }
  }
}

void check_community_shape(const Graph& g, const CpmResult& cpm,
                           Report& report) {
  for (const CommunitySet& set : cpm.by_k) {
    const std::size_t k = set.k;
    std::vector<bool> clique_seen(cpm.cliques.size(), false);
    for (CommunityId id = 0; id < set.count(); ++id) {
      const Community& c = set.communities[id];
      report.invariants_checked += 5;
      if (c.id != id || c.k != k) {
        report.add("community-shape",
                   at(k, id) + " carries (k=" + std::to_string(c.k) +
                       ", id=" + std::to_string(c.id) + ")");
      }
      if (!is_sorted_unique(c.nodes) ||
          (!c.nodes.empty() && c.nodes.back() >= g.num_nodes())) {
        report.add("community-shape",
                   at(k, id) + " node set is not sorted/unique/in-range: " +
                       show_nodes(c.nodes));
        continue;
      }
      if (c.size() < k) {
        report.add("community-shape",
                   at(k, id) + " has fewer than k members: " +
                       show_nodes(c.nodes));
      }
      if (id > 0) {
        const Community& prev = set.communities[id - 1];
        const bool ordered =
            prev.size() > c.size() ||
            (prev.size() == c.size() && prev.nodes <= c.nodes);
        if (!ordered) {
          report.add("canonical-order",
                     at(k, id) + " breaks the (size desc, nodes lex) order");
        }
      }
      if (cpm.cliques.empty()) continue;  // reference result: node sets only
      if (c.clique_ids.empty()) {
        report.add("community-cliques", at(k, id) + " lists no cliques");
        continue;
      }
      NodeSet covered;
      bool cliques_ok = is_sorted_unique(c.clique_ids);
      if (!cliques_ok) {
        report.add("community-cliques",
                   at(k, id) + " clique ids are not a sorted set");
      }
      for (CliqueId q : c.clique_ids) {
        if (q >= cpm.cliques.size()) {
          report.add("community-cliques",
                     at(k, id) + " references clique " + std::to_string(q) +
                         " outside the table");
          cliques_ok = false;
          break;
        }
        if (clique_seen[q]) {
          report.add("community-partition",
                     "clique " + std::to_string(q) +
                         " appears in two communities at k=" +
                         std::to_string(k));
        }
        clique_seen[q] = true;
        if (cpm.cliques[q].size() < k) {
          report.add("community-cliques",
                     at(k, id) + " contains clique " + std::to_string(q) +
                         " of size " + std::to_string(cpm.cliques[q].size()) +
                         " < k");
        }
        covered = set_union(covered, cpm.cliques[q]);
      }
      if (cliques_ok && covered != c.nodes) {
        report.add("community-cliques",
                   at(k, id) + " nodes " + show_nodes(c.nodes) +
                       " are not the union of its cliques " +
                       show_nodes(covered));
      }
    }

    if (cpm.cliques.empty()) continue;
    ++report.invariants_checked;
    if (set.community_of_clique.size() != cpm.cliques.size()) {
      report.add("clique-map", "k=" + std::to_string(k) +
                                   " community_of_clique has " +
                                   std::to_string(set.community_of_clique.size()) +
                                   " entries for " +
                                   std::to_string(cpm.cliques.size()) +
                                   " cliques");
      continue;
    }
    for (CliqueId q = 0; q < cpm.cliques.size(); ++q) {
      ++report.invariants_checked;
      const CommunityId mapped = set.community_of_clique[q];
      if (cpm.cliques[q].size() < k) {
        if (mapped != CommunitySet::kNoCommunity) {
          report.add("clique-map",
                     "k=" + std::to_string(k) + " maps undersized clique " +
                         std::to_string(q) + " to community " +
                         std::to_string(mapped));
        }
        continue;
      }
      if (mapped == CommunitySet::kNoCommunity || mapped >= set.count()) {
        report.add("clique-map",
                   "k=" + std::to_string(k) + " leaves eligible clique " +
                       std::to_string(q) + " unmapped");
        continue;
      }
      if (!contains(set.communities[mapped].clique_ids, q)) {
        report.add("clique-map",
                   "k=" + std::to_string(k) + " maps clique " +
                       std::to_string(q) + " to community " +
                       std::to_string(mapped) + " which does not list it");
      }
    }
  }
}

// Connected components with >= 2 nodes, hand-rolled BFS (k = 2 oracle).
std::vector<NodeSet> derive_k2_communities(const Graph& g) {
  std::vector<NodeSet> out;
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (seen[start]) continue;
    NodeSet component{start};
    seen[start] = true;
    for (std::size_t head = 0; head < component.size(); ++head) {
      for (NodeId next : g.neighbors(component[head])) {
        if (!seen[next]) {
          seen[next] = true;
          component.push_back(next);
        }
      }
    }
    if (component.size() >= 2) {
      std::sort(component.begin(), component.end());
      out.push_back(std::move(component));
    }
  }
  return out;
}

// Re-derives the k-clique communities at one k by percolating eligible
// cliques through pairwise |A ∩ B| >= k-1 with a local DSU.
std::vector<NodeSet> derive_communities(const CpmResult& cpm, std::size_t k) {
  std::vector<CliqueId> eligible;
  for (CliqueId q = 0; q < cpm.cliques.size(); ++q) {
    if (cpm.cliques[q].size() >= k) eligible.push_back(q);
  }
  Dsu dsu(eligible.size());
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    for (std::size_t j = i + 1; j < eligible.size(); ++j) {
      if (intersection_at_least(cpm.cliques[eligible[i]],
                                cpm.cliques[eligible[j]], k - 1)) {
        dsu.unite(static_cast<std::uint32_t>(i),
                  static_cast<std::uint32_t>(j));
      }
    }
  }
  std::vector<NodeSet> unions(eligible.size());
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    NodeSet& target = unions[dsu.find(static_cast<std::uint32_t>(i))];
    target = set_union(target, cpm.cliques[eligible[i]]);
  }
  std::vector<NodeSet> out;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (dsu.find(static_cast<std::uint32_t>(i)) == i) {
      out.push_back(std::move(unions[i]));
    }
  }
  return out;
}

void check_percolation(const Graph& g, const CpmResult& cpm,
                       const InvariantOptions& options, Report& report) {
  if (cpm.cliques.empty() && cpm.max_k >= cpm.min_k) return;  // reference
  if (cpm.cliques.size() > options.max_cliques_for_percolation) return;
  for (const CommunitySet& set : cpm.by_k) {
    ++report.invariants_checked;
    std::vector<NodeSet> expected = set.k == 2
                                        ? derive_k2_communities(g)
                                        : derive_communities(cpm, set.k);
    std::sort(expected.begin(), expected.end(),
              [](const NodeSet& a, const NodeSet& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a < b;
              });
    bool same = expected.size() == set.count();
    for (CommunityId id = 0; same && id < set.count(); ++id) {
      same = expected[id] == set.communities[id].nodes;
    }
    if (!same) {
      report.add("percolation",
                 "k=" + std::to_string(set.k) + ": engine emitted " +
                     std::to_string(set.count()) +
                     " communities, first-principles percolation derives " +
                     std::to_string(expected.size()) +
                     " (or their node sets differ)");
    }
  }
}

// Nesting theorem: every k-community lies inside a (k-1)-community. The
// parent is *unique* through clique percolation — all the child's cliques
// land in one (k-1)-community — but as plain node sets a child may also be
// a coincidental subset of a second, overlapping (k-1)-community (observed
// on dense fuzz graphs), so the node-set check demands >= 1, not == 1.
void check_nesting(const CpmResult& cpm, Report& report) {
  for (std::size_t k = cpm.min_k + 1; k <= cpm.max_k; ++k) {
    const CommunitySet& fine = cpm.at(k);
    const CommunitySet& coarse = cpm.at(k - 1);
    for (const Community& child : fine.communities) {
      ++report.invariants_checked;
      std::size_t containing = 0;
      for (const Community& parent : coarse.communities) {
        if (is_subset(child.nodes, parent.nodes)) ++containing;
      }
      if (containing == 0) {
        report.add("nesting",
                   at(k, child.id) + " lies in no (k-1)-community; the "
                       "nesting theorem requires one");
        continue;
      }
      if (child.clique_ids.empty() ||
          coarse.community_of_clique.size() != cpm.cliques.size()) {
        continue;  // reference result: node sets are all we have
      }
      // Clique-level uniqueness: every clique of the child percolates into
      // the same (k-1)-community, and the child's nodes sit inside it.
      ++report.invariants_checked;
      const CommunityId parent_id =
          coarse.community_of_clique[child.clique_ids[0]];
      bool unique = parent_id != CommunitySet::kNoCommunity &&
                    parent_id < coarse.count();
      for (CliqueId q : child.clique_ids) {
        unique = unique && coarse.community_of_clique[q] == parent_id;
      }
      if (!unique ||
          !is_subset(child.nodes, coarse.communities[parent_id].nodes)) {
        report.add("nesting",
                   at(k, child.id) + " cliques do not percolate into a "
                       "single containing (k-1)-community");
      }
    }
  }
}

void check_tree(const CpmResult& cpm, const CommunityTree& tree,
                Report& report) {
  report.invariants_checked += 2;
  if (tree.min_k() != cpm.min_k || tree.max_k() != cpm.max_k) {
    report.add("tree", "tree spans k in [" + std::to_string(tree.min_k()) +
                           ", " + std::to_string(tree.max_k()) +
                           "], communities span [" + std::to_string(cpm.min_k) +
                           ", " + std::to_string(cpm.max_k) + "]");
    return;
  }
  for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
    ++report.invariants_checked;
    if (tree.level(k).size() != cpm.at(k).count()) {
      report.add("tree", "level k=" + std::to_string(k) + " has " +
                             std::to_string(tree.level(k).size()) +
                             " tree nodes for " +
                             std::to_string(cpm.at(k).count()) +
                             " communities");
      continue;
    }
    for (int idx : tree.level(k)) {
      const TreeNode& node = tree.nodes()[idx];
      report.invariants_checked += 3;
      if (node.community_id >= cpm.at(k).count()) {
        report.add("tree", "tree node " + std::to_string(idx) +
                               " references community " +
                               std::to_string(node.community_id) +
                               " beyond level k=" + std::to_string(k));
        continue;
      }
      const Community& community = cpm.at(k).communities[node.community_id];
      if (node.k != k || node.size != community.size()) {
        report.add("tree", "tree node " + std::to_string(idx) +
                               " misreports (k, size) for " +
                               at(k, node.community_id));
      }
      for (int child : node.children) {
        if (child < 0 ||
            static_cast<std::size_t>(child) >= tree.nodes().size() ||
            tree.nodes()[child].parent != idx) {
          report.add("tree", "tree node " + std::to_string(idx) +
                                 " lists child " + std::to_string(child) +
                                 " which does not point back");
        }
      }
      if (k == cpm.min_k) {
        if (node.parent >= 0) {
          report.add("tree", "bottom-level tree node " + std::to_string(idx) +
                                 " has a parent");
        }
        continue;
      }
      if (node.parent < 0 ||
          static_cast<std::size_t>(node.parent) >= tree.nodes().size()) {
        report.add("tree", "tree node " + std::to_string(idx) +
                               " at k=" + std::to_string(k) + " has no parent");
        continue;
      }
      const TreeNode& parent = tree.nodes()[node.parent];
      if (parent.k != k - 1) {
        report.add("tree", "tree node " + std::to_string(idx) +
                               " has a parent at k=" + std::to_string(parent.k) +
                               ", expected k-1");
        continue;
      }
      if (!is_subset(community.nodes,
                     cpm.at(k - 1).communities[parent.community_id].nodes)) {
        report.add("tree", at(k, node.community_id) +
                               " is not contained in its tree parent " +
                               at(k - 1, parent.community_id));
      }
    }
  }

  // Main chain: the apex is the canonical first community at max_k; is_main
  // must mark exactly the apex and its ancestors.
  ++report.invariants_checked;
  const int apex = tree.apex();
  if (apex < 0 || tree.nodes()[apex].k != cpm.max_k ||
      tree.nodes()[apex].community_id != 0) {
    report.add("tree-main", "apex is not the canonical first community at "
                            "the maximum k");
    return;
  }
  std::vector<bool> on_chain(tree.nodes().size(), false);
  for (int cursor = apex; cursor >= 0; cursor = tree.nodes()[cursor].parent) {
    on_chain[cursor] = true;
  }
  for (std::size_t i = 0; i < tree.nodes().size(); ++i) {
    ++report.invariants_checked;
    if (tree.nodes()[i].is_main != on_chain[i]) {
      report.add("tree-main",
                 "tree node " + std::to_string(i) + " is_main=" +
                     (tree.nodes()[i].is_main ? "true" : "false") +
                     " but the apex ancestor chain says otherwise");
    }
  }
}

void check_metrics(const Graph& g, const CpmResult& cpm, Report& report) {
  constexpr double kTol = 1e-9;
  for (const CommunitySet& set : cpm.by_k) {
    const std::vector<CommunityMetrics> exported = compute_metrics(g, set);
    if (exported.size() != set.count()) {
      report.add("metrics", "k=" + std::to_string(set.k) +
                                ": compute_metrics returns " +
                                std::to_string(exported.size()) +
                                " rows for " + std::to_string(set.count()) +
                                " communities");
      continue;
    }
    for (CommunityId id = 0; id < set.count(); ++id) {
      report.invariants_checked += 2;
      const NodeSet& nodes = set.communities[id].nodes;
      // Naive density: count present member pairs.
      std::size_t internal_edges = 0;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        for (std::size_t j = i + 1; j < nodes.size(); ++j) {
          if (g.has_edge(nodes[i], nodes[j])) ++internal_edges;
        }
      }
      const double pairs =
          static_cast<double>(nodes.size()) * (nodes.size() - 1) / 2.0;
      const double density =
          nodes.size() < 2 ? 0.0 : static_cast<double>(internal_edges) / pairs;
      if (std::abs(density - exported[id].density) > kTol) {
        report.add("metrics", at(set.k, id) + " exported density " +
                                  std::to_string(exported[id].density) +
                                  " != recomputed " + std::to_string(density));
      }
      // Naive average ODF: per member, leaving degree over total degree.
      double odf_sum = 0.0;
      for (NodeId v : nodes) {
        std::size_t inside = 0;
        for (NodeId u : g.neighbors(v)) {
          if (contains(nodes, u)) ++inside;
        }
        const std::size_t degree = g.degree(v);
        odf_sum += degree == 0
                       ? 1.0
                       : static_cast<double>(degree - inside) / degree;
      }
      const double avg_odf = nodes.empty() ? 0.0 : odf_sum / nodes.size();
      if (std::abs(avg_odf - exported[id].avg_odf) > kTol) {
        report.add("metrics", at(set.k, id) + " exported avg ODF " +
                                  std::to_string(exported[id].avg_odf) +
                                  " != recomputed " + std::to_string(avg_odf));
      }
    }
    // Pairwise overlap export vs a direct intersection count (bounded
    // sample: the first few pairs at this level).
    const std::size_t sample = std::min<std::size_t>(set.count(), 4);
    for (CommunityId a = 0; a < sample; ++a) {
      for (CommunityId b = a + 1; b < sample; ++b) {
        ++report.invariants_checked;
        const std::size_t exported_overlap =
            community_overlap(set.communities[a], set.communities[b]);
        std::size_t naive = 0;
        for (NodeId v : set.communities[a].nodes) {
          if (contains(set.communities[b].nodes, v)) ++naive;
        }
        if (exported_overlap != naive) {
          report.add("metrics",
                     "k=" + std::to_string(set.k) + " overlap(" +
                         std::to_string(a) + ", " + std::to_string(b) +
                         ") exported " + std::to_string(exported_overlap) +
                         " != recomputed " + std::to_string(naive));
        }
      }
    }
  }
}

}  // namespace

void Report::add(std::string invariant, std::string detail) {
  failures.push_back({std::move(invariant), std::move(detail)});
}

void Report::merge(Report other) {
  invariants_checked += other.invariants_checked;
  failures.insert(failures.end(),
                  std::make_move_iterator(other.failures.begin()),
                  std::make_move_iterator(other.failures.end()));
}

std::string Report::to_string() const {
  std::ostringstream out;
  for (const Failure& f : failures) {
    out << "[" << f.invariant << "] " << f.detail << '\n';
  }
  return out.str();
}

Report check_invariants(const Graph& g, const cpm::Result& result,
                        const InvariantOptions& options) {
  Report report;
  const CpmResult& cpm = result.cpm;
  ++report.invariants_checked;
  if (cpm.max_k < cpm.min_k) {
    if (!cpm.by_k.empty()) {
      report.add("community-shape",
                 "empty k range but " + std::to_string(cpm.by_k.size()) +
                     " levels present");
    }
    return report;
  }
  if (cpm.by_k.size() != cpm.max_k - cpm.min_k + 1) {
    report.add("community-shape",
               "k range [" + std::to_string(cpm.min_k) + ", " +
                   std::to_string(cpm.max_k) + "] does not match " +
                   std::to_string(cpm.by_k.size()) + " levels");
    return report;
  }
  for (std::size_t i = 0; i < cpm.by_k.size(); ++i) {
    ++report.invariants_checked;
    if (cpm.by_k[i].k != cpm.min_k + i) {
      report.add("community-shape",
                 "level " + std::to_string(i) + " carries k=" +
                     std::to_string(cpm.by_k[i].k) + ", expected " +
                     std::to_string(cpm.min_k + i));
      return report;
    }
  }

  if (!cpm.cliques.empty()) check_clique_table(g, cpm, options, report);
  check_community_shape(g, cpm, report);
  check_percolation(g, cpm, options, report);
  check_nesting(cpm, report);
  if (result.has_tree) check_tree(cpm, result.tree, report);
  if (options.check_metrics) check_metrics(g, cpm, report);
  return report;
}

}  // namespace kcc::check
