#include "check/differential.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "clique/enumerator.h"
#include "common/error.h"
#include "cpm/compare.h"
#include "cpm/stream_cpm.h"
#include "obs/metrics.h"

namespace kcc::check {
namespace {

struct Variant {
  std::string label;
  cpm::Options options;
  bool node_sets_only = false;  // reference engine: no cliques / map / tree
  bool approximate = false;     // gap-threshold mode instead of digest gate
};

// One option group: a k range plus every engine/thread/budget/backend
// combination that must agree on it. The baseline is variants.front().
// The engine rows come from the registry: every exact, polynomial engine
// gets t1 / tN / t1-bitset variants (pinning the sparse kernel on the
// thread axis and crossing backends against it, so one group proves both
// percolation equivalence and kernel equivalence), budget-capable engines
// add a forced-spill and an auto-backend variant, and the default engine
// adds the tN-bitset and bitset-hub crosses. Exponential oracles join on
// tiny graphs only; approximate engines are appended last, flagged for the
// gap gate.
std::vector<Variant> build_matrix(std::size_t min_k, std::size_t max_k,
                                  const Graph& g, const DiffOptions& diff) {
  const std::string suffix =
      max_k == 0 ? "" : "/k" + std::to_string(min_k) + "-" + std::to_string(max_k);
  auto make = [&](const std::string& label, const std::string& engine,
                  std::size_t threads, clique::Backend backend) {
    Variant v;
    v.label = label + suffix;
    v.options.engine = engine;
    v.options.min_k = min_k;
    v.options.max_k = max_k;
    v.options.threads = threads;
    v.options.clique_backend = backend;
    return v;
  };
  const clique::Backend sparse = clique::Backend::kSparse;
  const std::string default_engine = cpm::Options{}.engine;
  std::vector<Variant> matrix;
  // Baseline: per_k single-threaded — the structure closest to the original
  // LP-CPM oracle, and the variant the invariant oracles run on.
  matrix.push_back(make("per_k/t1", "per_k", 1, sparse));

  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    if (!info.caps.exact || info.caps.exponential) continue;
    if (info.name != "per_k") {  // baseline already holds per_k/t1
      matrix.push_back(make(info.name + "/t1", info.name, 1, sparse));
    }
    matrix.push_back(
        make(info.name + "/tN", info.name, diff.threads, sparse));
    matrix.push_back(make(info.name + "/t1/bitset", info.name, 1,
                          clique::Backend::kBitset));
    if (info.caps.supports_memory_budget) {
      // Forced spill: the smallest budget the engine accepts, so overlap
      // pairs round-trip through the spill files.
      Variant v = make(info.name + "/t1/spill", info.name, 1, sparse);
      v.options.memory_budget = stream_min_memory_budget();
      matrix.push_back(v);
      matrix.push_back(make(info.name + "/tN/auto", info.name, diff.threads,
                            clique::Backend::kAuto));
    }
    if (info.name == default_engine) {
      matrix.push_back(make(info.name + "/tN/bitset", info.name,
                            diff.threads, clique::Backend::kBitset));
      // Hub fallback: a tiny universe cap forces most subproblems down the
      // sparse path *inside* the bitset backend, exercising the
      // per-subproblem kernel hand-off.
      Variant v = make(info.name + "/t1/bitset-hub", info.name, 1,
                       clique::Backend::kBitset);
      v.options.bitset_max_universe = 4;
      matrix.push_back(v);
    }
  }

  if (diff.include_reference && g.num_nodes() <= diff.reference_max_nodes &&
      g.num_edges() <= diff.reference_max_edges) {
    for (const cpm::EngineInfo& info : cpm::engine_registry()) {
      if (!info.caps.exact || !info.caps.exponential) continue;
      Variant v = make(info.name, info.name, 1, sparse);
      v.options.build_tree = false;  // dropped from the comparison anyway
      v.node_sets_only = true;
      matrix.push_back(v);
    }
  }

  if (diff.include_approximate) {
    for (const cpm::EngineInfo& info : cpm::engine_registry()) {
      if (info.caps.exact) continue;
      for (const std::size_t threads : {std::size_t{1}, diff.threads}) {
        Variant v = make(
            info.name + (threads == 1 ? "/t1" : "/tN"), info.name, threads,
            sparse);
        v.approximate = true;
        matrix.push_back(v);
      }
    }
  }
  return matrix;
}

}  // namespace

namespace detail {

std::string first_diff(const std::string& base_label, const std::string& base,
                       const std::string& label, const std::string& text) {
  std::istringstream a(base), b(text);
  std::string line_a, line_b;
  std::size_t line_no = 1;
  while (true) {
    const bool has_a = static_cast<bool>(std::getline(a, line_a));
    const bool has_b = static_cast<bool>(std::getline(b, line_b));
    if (!has_a && !has_b) return {};  // identical
    if (!has_a || !has_b || line_a != line_b) {
      std::ostringstream out;
      out << label << " diverges from " << base_label << " at canonical line "
          << line_no << ":\n  " << base_label << ": "
          << (has_a ? line_a : std::string("<end>")) << "\n  " << label
          << ": " << (has_b ? line_b : std::string("<end>"));
      return out.str();
    }
    ++line_no;
  }
}

// Test-only corruption hook (see header). Returns a description of what was
// corrupted, or empty when the result has no record of the requested kind.
std::string inject_fault(cpm::Result& result, const std::string& kind) {
  if (kind == "community") {
    for (CommunitySet& set : result.cpm.by_k) {
      for (Community& c : set.communities) {
        if (!c.nodes.empty()) {
          c.nodes.pop_back();
          return "dropped a node from k=" + std::to_string(set.k) +
                 " community " + std::to_string(c.id);
        }
      }
    }
    return {};
  }
  if (kind == "clique-map") {
    for (CommunitySet& set : result.cpm.by_k) {
      if (!set.community_of_clique.empty()) {
        CommunityId& entry = set.community_of_clique[0];
        entry = entry == CommunitySet::kNoCommunity
                    ? CommunityId{0}
                    : CommunitySet::kNoCommunity;
        return "flipped community_of_clique[0] at k=" + std::to_string(set.k);
      }
    }
    return {};
  }
  if (kind == "tree") {
    if (result.has_tree && !result.tree.nodes().empty()) {
      // The canonical text serializes is_main; a const_cast keeps the hook
      // out of the CommunityTree API surface.
      auto& node = const_cast<TreeNode&>(result.tree.nodes()[0]);
      node.is_main = !node.is_main;
      return "flipped is_main on tree node 0";
    }
    return {};
  }
  throw Error("KCC_CHECK_INJECT_FAULT: unknown fault kind '" + kind +
              "' (community|clique-map|tree)");
}

}  // namespace detail

DiffOutcome run_differential(const Graph& g, const DiffOptions& options) {
  auto& graphs_total = obs::metrics().counter("check_graphs_total");
  auto& variants_total = obs::metrics().counter("check_variants_total");
  auto& invariants_total = obs::metrics().counter("check_invariants_total");
  auto& mismatches_total = obs::metrics().counter("check_mismatches_total");
  auto& faults_total = obs::metrics().counter("check_faults_injected_total");
  graphs_total.inc();

  const char* fault_env = std::getenv("KCC_CHECK_INJECT_FAULT");
  const std::string fault_kind = fault_env ? fault_env : "";

  DiffOutcome outcome;
  std::vector<std::pair<std::size_t, std::size_t>> groups{{2, 0}};
  if (options.include_restricted_range) groups.push_back({3, 5});

  for (const auto& [min_k, max_k] : groups) {
    const std::vector<Variant> matrix = build_matrix(min_k, max_k, g, options);
    // The last non-reference exact variant hosts the injected fault, so all
    // three fault kinds (community / clique-map / tree) have a record to
    // corrupt and the digest gate must catch it.
    std::size_t fault_target = matrix.size();
    if (!fault_kind.empty()) {
      for (std::size_t i = matrix.size(); i-- > 0;) {
        if (!matrix[i].node_sets_only && !matrix[i].approximate) {
          fault_target = i;
          break;
        }
      }
    }

    cpm::Result baseline_result;     // kept for approximate-engine scoring
    std::string baseline_text;       // full canonical serialization
    std::string baseline_node_text;  // node-sets-only projection
    // Lazily-built projection for engines whose caps declare a
    // lexicographic clique table (canonical_clique_order): the baseline
    // passed through cpm::canonicalise_clique_order. Clique order is a
    // serialization detail, so normalizing the baseline keeps the gate
    // byte-exact without exempting those engines from it.
    std::string baseline_lex_text;
    // Previous approximate run per engine name: t1 vs tN must be identical.
    std::string approx_prev_label, approx_prev_engine, approx_prev_text;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const Variant& variant = matrix[i];
      cpm::Result result = cpm::Engine(variant.options).run(g);
      ++outcome.variants_run;
      variants_total.inc();

      if (i == fault_target) {
        const std::string injected = detail::inject_fault(result, fault_kind);
        if (!injected.empty()) {
          outcome.fault_injected = true;
          faults_total.inc();
        }
      }

      if (i == 0) {
        // Baseline: serialize both projections and run the invariant
        // oracles. Differential equality extends their verdict to every
        // variant that matches byte-for-byte.
        baseline_text = cpm::canonical_text(result);
        baseline_node_text =
            cpm::canonical_text(result, {false, false, false});
        Report report = check_invariants(g, result, options.invariants);
        outcome.invariants_checked += report.invariants_checked;
        invariants_total.inc(report.invariants_checked);
        if (!report.ok()) {
          mismatches_total.inc(report.failures.size());
          if (outcome.failure.empty()) {
            outcome.failure =
                "invariants violated on " + variant.label + ":\n" +
                report.to_string();
          }
        }
        baseline_result = std::move(result);
        continue;
      }

      if (variant.approximate) {
        // Gap mode: no digest gate against the baseline, but (a) the engine
        // must be deterministic across thread counts and (b) its community
        // F1 against the exact baseline must clear the threshold.
        const std::string text = cpm::canonical_text(result);
        if (approx_prev_engine == variant.options.engine) {
          const std::string diff =
              detail::first_diff(approx_prev_label, approx_prev_text,
                                 variant.label, text);
          if (!diff.empty()) {
            mismatches_total.inc();
            if (outcome.failure.empty()) {
              outcome.failure = "approximate engine nondeterminism: " + diff;
            }
          }
        }
        approx_prev_label = variant.label;
        approx_prev_engine = variant.options.engine;
        approx_prev_text = text;

        cpm::CompareOptions compare_options;
        compare_options.min_f1 = options.approx_min_f1;
        const cpm::Comparison gap =
            cpm::compare_results(baseline_result, result, compare_options);
        outcome.worst_approx_f1 =
            std::min(outcome.worst_approx_f1, gap.worst_f1);
        if (!gap.ok) {
          mismatches_total.inc();
          if (outcome.failure.empty()) {
            outcome.failure = variant.label + " exceeds the exactness gap (" +
                              gap.summary + ")";
          }
        }
        continue;
      }

      const bool lex_cliques =
          cpm::engine_info(variant.options.engine).caps.canonical_clique_order;
      if (lex_cliques && baseline_lex_text.empty()) {
        cpm::Result reordered = baseline_result;
        cpm::canonicalise_clique_order(reordered);
        baseline_lex_text = cpm::canonical_text(reordered);
      }
      const std::string text =
          variant.node_sets_only
              ? cpm::canonical_text(result, {false, false, false})
              : cpm::canonical_text(result);
      const std::string& base = variant.node_sets_only ? baseline_node_text
                                : lex_cliques          ? baseline_lex_text
                                                       : baseline_text;
      const std::string diff =
          detail::first_diff(matrix[0].label, base, variant.label, text);
      if (!diff.empty()) {
        mismatches_total.inc();
        if (outcome.failure.empty()) outcome.failure = diff;
      }
    }
  }
  return outcome;
}

DiffOutcome run_differential(const TestGraph& graph,
                             const DiffOptions& options) {
  const Graph g = graph.build();
  DiffOutcome outcome = run_differential(g, options);
  if (!outcome.ok()) {
    outcome.failure = "graph '" + graph.name + "' (" +
                      std::to_string(g.num_nodes()) + " nodes, " +
                      std::to_string(g.num_edges()) + " edges): " +
                      outcome.failure;
  }
  return outcome;
}

}  // namespace kcc::check
