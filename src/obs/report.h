// Run reports: one versioned JSON document per run that makes any two runs
// comparable — manifest (git sha, build type/flags, CPU, thread budget),
// per-stage wall times with hardware-counter deltas and RSS, and the final
// metrics-registry snapshot.
//
// Three pieces:
//   * RunManifest / collect_manifest() — the configure-time build facts
//     (generated obs/build_info.h) joined with runtime host facts
//     (/proc/cpuinfo model, logical cores, hostname).
//   * RunRecorder + StageScope — engines wrap each stage (cliques /
//     percolate / tree) in a StageScope; the scope always exports the
//     hw-counter delta to the registry (`hw_*_total`) and, when a recorder
//     is enabled (--report-out), appends a StageSample. Like the Tracer,
//     the recorder is a process-global so stage producers need no plumbing.
//   * write_run_report() — serializes everything as schema-versioned JSON
//     (`kcc_run_report_version`), and parse_json_flat() reads any such
//     document back as dotted-path → value maps (the kcc_bench --compare
//     gate consumes baselines through it).
//
// docs/OBSERVABILITY.md documents the JSON schema.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf_counters.h"

namespace kcc::obs {

/// Schema version written into every run report / bench report. Bump when a
/// field changes meaning; readers reject documents with a newer version.
constexpr int kRunReportVersion = 1;

/// Everything needed to attribute a measurement to a build + host + config.
struct RunManifest {
  std::string tool;        // producing binary, e.g. "kcc_bench"
  std::string git_sha;     // configure-time sha, "unknown" outside a repo
  bool git_dirty = false;  // uncommitted changes at configure time
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string compiler;    // "GNU 12.2.0"
  std::string cxx_flags;   // effective flags incl. build-type flags
  std::string sanitize;    // KCC_SANITIZE value ("" = off)
  std::string cpu_model;   // /proc/cpuinfo "model name" ("" elsewhere)
  std::size_t cpu_logical_cores = 0;
  std::string hostname;
  std::string hw_counters;  // "available" or the disabled reason
};

/// Fills a manifest from build_info.h + the running host.
RunManifest collect_manifest(const std::string& tool);

/// Writes the manifest as one JSON object (no trailing newline).
void write_manifest_json(std::ostream& out, const RunManifest& manifest);

/// One instrumented stage: wall clock, hw-counter delta, RSS after.
struct StageSample {
  std::string name;
  double wall_seconds = 0.0;
  HwCounterValues hw;
  std::uint64_t rss_after_bytes = 0;
};

/// Process-global collector StageScopes report into when enabled. Disabled
/// by default (one relaxed atomic load per stage); tools enable it when the
/// user asks for a run report.
class RunRecorder {
 public:
  static RunRecorder& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void record(StageSample sample);
  std::vector<StageSample> stages() const;

  /// Key → value facts attached to the report (engine name, exactness, …);
  /// serialized under "annotations". Last write per key wins.
  void annotate(const std::string& key, std::string value);
  std::map<std::string, std::string> annotations() const;

  void clear();

 private:
  RunRecorder() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<StageSample> stages_;
  std::map<std::string, std::string> annotations_;
};

/// Attaches `key` = `value` to the active run report. No-op (one relaxed
/// atomic load) when no recorder is enabled, so producers — e.g.
/// cpm::Engine stamping engine/exactness provenance — can call it
/// unconditionally.
void annotate_run(const std::string& key, std::string value);

/// RAII stage instrumentation. On destruction: adds the hw-counter delta to
/// the `hw_*_total` registry counters (when counters are live) and appends a
/// StageSample to the RunRecorder (when enabled). Cheap when both are off:
/// two flag loads and one clock read.
class StageScope {
 public:
  explicit StageScope(const char* name);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  const char* name_;
  double start_seconds_;
  HwCounterValues start_;
  bool hw_live_;
  bool recording_;
};

/// Serializes the full run report: manifest, recorded stages, RSS
/// (current + peak), hw availability, and the metrics-registry snapshot.
void write_run_report(std::ostream& out, const RunManifest& manifest);

/// write_run_report to `path` ("-" = stdout). Throws kcc::Error on I/O
/// failure.
void write_run_report_file(const std::string& path,
                           const RunManifest& manifest);

/// A JSON document flattened to dotted paths: {"a":{"b":[1,"x"]}} becomes
/// numbers["a.b.0"] == 1 and strings["a.b.1"] == "x". Booleans land in
/// numbers as 0/1; nulls are skipped.
struct FlatJson {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;

  bool has_number(const std::string& path) const {
    return numbers.count(path) != 0;
  }
  double number(const std::string& path, double fallback = 0.0) const;
  std::string string(const std::string& path,
                     const std::string& fallback = "") const;
};

/// Minimal JSON reader for documents this library writes (reports,
/// baselines). Throws kcc::Error on malformed input.
FlatJson parse_json_flat(const std::string& text);

/// Reads and flattens a JSON file. Throws kcc::Error on I/O or parse error.
FlatJson read_json_flat_file(const std::string& path);

}  // namespace kcc::obs
