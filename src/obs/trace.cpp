#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/metrics.h"

namespace kcc::obs {

// Per-thread span storage. Only the owning thread appends; the exporter and
// clear() take the mutex, and the owner takes it per append. The mutex is
// per-thread and almost never contended, so an append is cheap — and it makes
// the whole structure clean under TSan.
struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<SpanEvent> events;
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

struct Tracer::Impl {
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

Tracer& Tracer::instance() {
  // Leaked so worker threads exiting after main() can still reach it.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() : impl_(new Impl()) {
  const char* env = std::getenv("KCC_TRACE");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(epoch_.seconds() * 1e6);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local ThreadBuffer* buffer = [this] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    std::lock_guard lock(impl_->registry_mutex);
    raw->tid = impl_->next_tid++;
    impl_->buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

void Tracer::record(const char* name, std::uint64_t start_us,
                    std::uint64_t dur_us) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    // Surfaced as an exported counter (and a shutdown warning in
    // obs::finish) instead of silently truncating the Chrome trace.
    static Counter& dropped_total =
        metrics().counter("trace_dropped_spans_total");
    dropped_total.inc();
    return;
  }
  SpanEvent e;
  std::snprintf(e.name, SpanEvent::kMaxName, "%s", name);
  e.start_us = start_us;
  e.dur_us = dur_us;
  buf.events.push_back(e);
}

std::size_t Tracer::event_count() const {
  std::lock_guard registry_lock(impl_->registry_mutex);
  std::size_t total = 0;
  for (const auto& buf : impl_->buffers) {
    std::lock_guard lock(buf->mutex);
    total += buf->events.size();
  }
  return total;
}

std::size_t Tracer::dropped_count() const {
  std::lock_guard registry_lock(impl_->registry_mutex);
  std::size_t total = 0;
  for (const auto& buf : impl_->buffers) {
    std::lock_guard lock(buf->mutex);
    total += buf->dropped;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard registry_lock(impl_->registry_mutex);
  for (const auto& buf : impl_->buffers) {
    std::lock_guard lock(buf->mutex);
    buf->events.clear();
    buf->dropped = 0;
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::lock_guard registry_lock(impl_->registry_mutex);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& buf : impl_->buffers) {
    std::lock_guard lock(buf->mutex);
    dropped += buf->dropped;
    for (const SpanEvent& e : buf->events) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"";
      // Span names come from instrumentation sites (identifiers, "k=7"),
      // so escaping only needs to keep malicious/accidental quotes safe.
      for (const char* c = e.name; *c != '\0'; ++c) {
        if (*c == '"' || *c == '\\') out << '\\';
        out << *c;
      }
      out << "\",\"cat\":\"kcc\",\"ph\":\"X\",\"pid\":1,\"tid\":" << buf->tid
          << ",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us << "}";
    }
  }
  out << "]";
  if (dropped > 0) {
    out << ",\"kcc_dropped_spans\":" << dropped;
  }
  out << "}";
}

ScopedSpan::ScopedSpan(const char* name) { begin(name); }

ScopedSpan::ScopedSpan(const std::string& name) { begin(name.c_str()); }

void ScopedSpan::begin(const char* name) {
  Tracer& tracer = Tracer::instance();
  active_ = tracer.enabled();
  if (!active_) return;
  std::snprintf(name_, SpanEvent::kMaxName, "%s", name);
  start_us_ = tracer.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::instance();
  const std::uint64_t end_us = tracer.now_us();
  tracer.record(name_, start_us_,
                end_us > start_us_ ? end_us - start_us_ : 0);
}

}  // namespace kcc::obs
