// Umbrella for the observability layer: one include pulls in the logger,
// metrics registry, and tracer, plus the shared CLI glue (--log-level,
// --trace-out, --metrics-out) used by tools/kcc and the bench harnesses.
#pragma once

#include <string>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kcc::obs {

/// Parsed observability CLI options shared by every front end.
struct ObsOptions {
  std::string log_level;    // "" keeps the current (env-derived) level
  std::string trace_out;    // "" disables tracing
  std::string metrics_out;  // "" disables the metrics dump
};

/// Applies the options: sets the log level and enables the tracer when a
/// trace output path is requested. Call before running instrumented work.
void configure(const ObsOptions& options);

/// Writes the requested artifacts: Chrome-trace JSON to `trace_out` and the
/// metrics JSON dump to `metrics_out` (either may be empty = skip). Throws
/// kcc::Error when a file cannot be written.
void finish(const ObsOptions& options);

/// Writes the current trace buffer as Chrome trace_event JSON to `path`.
void write_trace_file(const std::string& path);

/// Writes the current metrics registry as JSON to `path`. A path ending in
/// ".prom" selects the Prometheus text exposition format instead.
void write_metrics_file(const std::string& path);

}  // namespace kcc::obs
