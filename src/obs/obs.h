// Umbrella for the observability layer: one include pulls in the logger,
// metrics registry, and tracer, plus the shared CLI glue (--log-level,
// --trace-out, --metrics-out) used by tools/kcc and the bench harnesses.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace kcc::obs {

/// Parsed observability CLI options shared by every front end. Every output
/// path accepts "-" for stdout, so fuzz/bench runs can pipe artifacts
/// without temp files.
struct ObsOptions {
  std::string log_level;    // "" keeps the current (env-derived) level
  std::string trace_out;    // "" disables tracing
  std::string metrics_out;  // "" disables the metrics dump
  std::string report_out;   // "" disables the run report (obs/report.h)
  std::string tool;         // manifest attribution; "" = "kcc"
};

/// Applies the options: sets the log level, enables the tracer when a trace
/// output path is requested, and enables the RunRecorder when a run report
/// is requested. Call before running instrumented work.
void configure(const ObsOptions& options);

/// Writes the requested artifacts: Chrome-trace JSON to `trace_out`, the
/// metrics JSON dump to `metrics_out`, and the run report to `report_out`
/// (any may be empty = skip, or "-" = stdout). Warns when the tracer
/// dropped spans (the Chrome trace is truncated). Throws kcc::Error when a
/// file cannot be written.
void finish(const ObsOptions& options);

/// Runs `write(stream)` against `path`, where "-" selects stdout — the one
/// artifact-output convention every tool shares (trace/metrics/report
/// sidecars, `kcc --snapshot-out`, bench JSON). File errors throw
/// kcc::Error with `what` naming the artifact. `binary` opens files in
/// binary mode (snapshots); stdout is used as-is either way.
void write_artifact(const std::string& path, const char* what,
                    const std::function<void(std::ostream&)>& write,
                    bool binary = false);

/// Writes the current trace buffer as Chrome trace_event JSON to `path`
/// ("-" = stdout).
void write_trace_file(const std::string& path);

/// Writes the current metrics registry as JSON to `path` ("-" = stdout). A
/// path ending in ".prom" selects the Prometheus text exposition format
/// instead.
void write_metrics_file(const std::string& path);

}  // namespace kcc::obs
