#include "obs/obs.h"

#include <fstream>
#include <iostream>

#include "common/error.h"
#include "common/timer.h"

namespace kcc::obs {

void write_artifact(const std::string& path, const char* what,
                    const std::function<void(std::ostream&)>& write,
                    bool binary) {
  if (path == "-") {
    write(std::cout);
    std::cout.flush();
    require(std::cout.good(),
            std::string("obs: failed writing ") + what + " to stdout");
    return;
  }
  std::ofstream out(path, binary ? std::ios::out | std::ios::binary
                                 : std::ios::out);
  require(out.good(), std::string("obs: cannot write ") + what + " file " +
                          path);
  write(out);
  require(out.good(), std::string("obs: failed writing ") + what + " file " +
                          path);
}

void configure(const ObsOptions& options) {
  if (!options.log_level.empty()) {
    set_log_level(parse_log_level(options.log_level));
  }
  if (!options.trace_out.empty()) {
    Tracer::instance().set_enabled(true);
  }
  if (!options.report_out.empty()) {
    RunRecorder::instance().set_enabled(true);
  }
}

void finish(const ObsOptions& options) {
  Timer timer;  // lap() per artifact: export cost is itself worth seeing
  const std::size_t dropped = Tracer::instance().dropped_count();
  if (dropped > 0) {
    // The tracer already counted each drop into trace_dropped_spans_total;
    // say it out loud too: a trace silently missing spans is the failure
    // mode this warning exists for.
    KCC_LOG(kWarn) << "tracer dropped " << dropped
                   << " spans (per-thread buffer overflow); the exported "
                      "trace is truncated — see trace_dropped_spans_total";
  }
  if (!options.trace_out.empty()) {
    write_trace_file(options.trace_out);
    KCC_LOG(kInfo) << "trace written to " << options.trace_out << " ("
                   << Tracer::instance().event_count() << " spans, "
                   << timer.lap() << "s)";
  }
  if (!options.metrics_out.empty()) {
    write_metrics_file(options.metrics_out);
    KCC_LOG(kInfo) << "metrics written to " << options.metrics_out << " ("
                   << timer.lap() << "s)";
  }
  if (!options.report_out.empty()) {
    const RunManifest manifest =
        collect_manifest(options.tool.empty() ? "kcc" : options.tool);
    write_run_report_file(options.report_out, manifest);
    KCC_LOG(kInfo) << "run report written to " << options.report_out << " ("
                   << timer.lap() << "s)";
  }
}

void write_trace_file(const std::string& path) {
  write_artifact(path, "trace", [](std::ostream& out) {
    Tracer::instance().write_chrome_trace(out);
    out << "\n";
  });
}

void write_metrics_file(const std::string& path) {
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  write_artifact(path, "metrics", [prometheus](std::ostream& out) {
    if (prometheus) {
      metrics().write_prometheus(out);
    } else {
      metrics().write_json(out);
      out << "\n";
    }
  });
}

}  // namespace kcc::obs
