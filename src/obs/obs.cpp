#include "obs/obs.h"

#include <fstream>

#include "common/error.h"
#include "common/timer.h"

namespace kcc::obs {

void configure(const ObsOptions& options) {
  if (!options.log_level.empty()) {
    set_log_level(parse_log_level(options.log_level));
  }
  if (!options.trace_out.empty()) {
    Tracer::instance().set_enabled(true);
  }
}

void finish(const ObsOptions& options) {
  Timer timer;  // lap() per artifact: export cost is itself worth seeing
  if (!options.trace_out.empty()) {
    write_trace_file(options.trace_out);
    KCC_LOG(kInfo) << "trace written to " << options.trace_out << " ("
                   << Tracer::instance().event_count() << " spans, "
                   << timer.lap() << "s)";
  }
  if (!options.metrics_out.empty()) {
    write_metrics_file(options.metrics_out);
    KCC_LOG(kInfo) << "metrics written to " << options.metrics_out << " ("
                   << timer.lap() << "s)";
  }
}

void write_trace_file(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "obs: cannot write trace file " + path);
  Tracer::instance().write_chrome_trace(out);
  out << "\n";
  require(out.good(), "obs: failed writing trace file " + path);
}

void write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "obs: cannot write metrics file " + path);
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  if (prometheus) {
    metrics().write_prometheus(out);
  } else {
    metrics().write_json(out);
    out << "\n";
  }
  require(out.good(), "obs: failed writing metrics file " + path);
}

}  // namespace kcc::obs
