#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/error.h"
#include "common/timer.h"

namespace kcc::obs {
namespace {

std::atomic<int>& level_storage() {
  // Initialised from the environment exactly once, before the first load.
  static std::atomic<int> level = [] {
    const char* env = std::getenv("KCC_LOG_LEVEL");
    return static_cast<int>(env ? parse_log_level(env) : LogLevel::kOff);
  }();
  return level;
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

std::ostream*& sink_storage() {
  static std::ostream* sink = nullptr;  // nullptr means std::cerr
  return sink;
}

/// Seconds since the logger was first touched; gives every line a stable
/// monotonic timestamp without calling into the tracer.
double log_elapsed_seconds() {
  static const Timer epoch;
  return epoch.seconds();
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(
      level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "off" || name.empty()) return LogLevel::kOff;
  if (name == "error") return LogLevel::kError;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  throw Error("unknown log level '" + name +
              "' (off|error|warn|info|debug|trace)");
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

void set_log_sink(std::ostream* sink) {
  std::lock_guard lock(sink_mutex());
  sink_storage() = sink;
}

LogStream::LogStream(LogLevel level) : level_(level) {}

LogStream::~LogStream() {
  stream_ << '\n';
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "[%10.3fs %-5s] ",
                log_elapsed_seconds(), log_level_name(level_));
  std::lock_guard lock(sink_mutex());
  std::ostream* out = sink_storage();
  if (out == nullptr) out = &std::cerr;
  *out << prefix << stream_.str() << std::flush;
}

}  // namespace kcc::obs
