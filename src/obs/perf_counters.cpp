#include "obs/perf_counters.h"

#include <cstdlib>
#include <cstring>

#include "obs/log.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace kcc::obs {

HwCounterValues HwCounterValues::operator-(const HwCounterValues& base) const {
  HwCounterValues out;
  out.available = available && base.available;
  // Counters are monotonic within a process, but guard against a reset
  // between snapshots anyway.
  auto sub = [](std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; };
  out.cycles = sub(cycles, base.cycles);
  out.instructions = sub(instructions, base.instructions);
  out.branch_misses = sub(branch_misses, base.branch_misses);
  out.cache_misses = sub(cache_misses, base.cache_misses);
  out.task_clock_ns = sub(task_clock_ns, base.task_clock_ns);
  return out;
}

HwCounterValues& HwCounterValues::operator+=(const HwCounterValues& delta) {
  available = available || delta.available;
  cycles += delta.cycles;
  instructions += delta.instructions;
  branch_misses += delta.branch_misses;
  cache_misses += delta.cache_misses;
  task_clock_ns += delta.task_clock_ns;
  return *this;
}

const char* const* hw_counter_names() {
  static const char* const names[kHwCounterCount] = {
      "cycles", "instructions", "branch_misses", "cache_misses",
      "task_clock_ns"};
  return names;
}

namespace {

bool env_disabled() {
  const char* env = std::getenv("KCC_HW_COUNTERS");
  return env != nullptr && std::strcmp(env, "off") == 0;
}

}  // namespace

#if defined(__linux__)

namespace {

// (type, config) per event, index-aligned with hw_counter_names().
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

const EventSpec kEvents[kHwCounterCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Aggregate worker threads created after the open into the same count.
  attr.inherit = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
              /*group_fd=*/-1, /*flags=*/0));
}

}  // namespace

HwCounterSet::HwCounterSet() {
  for (int i = 0; i < kHwCounterCount; ++i) fds_[i] = -1;
  if (env_disabled()) {
    disabled_reason_ = "KCC_HW_COUNTERS=off";
    return;
  }
  int first_errno = 0;
  for (int i = 0; i < kHwCounterCount; ++i) {
    fds_[i] = open_event(kEvents[i]);
    if (fds_[i] >= 0) {
      available_ = true;
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  if (!available_) {
    disabled_reason_ = std::string("perf_event_open: ") +
                       std::strerror(first_errno);
    if (first_errno == EACCES || first_errno == EPERM) {
      disabled_reason_ += " (kernel.perf_event_paranoid?)";
    }
    KCC_LOG(kWarn) << "hw counters disabled: " << disabled_reason_
                   << " — run reports will carry \"available\": false";
    return;
  }
  // Calibrate: on PMU-less VMs the hardware events open fine but never
  // tick. Burn a visible amount of work, then close any event still at
  // zero so reports say "software-only" instead of carrying silent zeros.
  for (volatile long spin = 0; spin < 2'000'000; ++spin) {
  }
  int live_hw = 0;
  for (int i = 0; i < kHwCounterCount; ++i) {
    if (fds_[i] < 0 || kEvents[i].type != PERF_TYPE_HARDWARE) continue;
    std::uint64_t count = 0;
    if (::read(fds_[i], &count, sizeof(count)) == sizeof(count) &&
        count > 0) {
      ++live_hw;
    } else {
      close(fds_[i]);
      fds_[i] = -1;
    }
  }
  constexpr int kHardwareEvents = 4;  // all but task-clock
  if (live_hw == kHardwareEvents) {
    status_ = "available";
  } else if (live_hw > 0) {
    status_ = "partial: " + std::to_string(live_hw) + "/" +
              std::to_string(kHardwareEvents) +
              " hardware events live, rest read zero";
    KCC_LOG(kWarn) << "hw counters " << status_;
  } else {
    status_ = "software-only: hardware events read zero (no PMU?)";
    KCC_LOG(kWarn) << "hw counters " << status_
                   << " — only task_clock_ns will be populated";
  }
}

HwCounterSet::~HwCounterSet() {
  for (int i = 0; i < kHwCounterCount; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
}

HwCounterValues HwCounterSet::read() const {
  HwCounterValues values;
  if (!available_) return values;
  std::uint64_t raw[kHwCounterCount] = {};
  for (int i = 0; i < kHwCounterCount; ++i) {
    if (fds_[i] < 0) continue;
    std::uint64_t count = 0;
    if (::read(fds_[i], &count, sizeof(count)) == sizeof(count)) {
      raw[i] = count;
      values.available = true;
    }
  }
  values.cycles = raw[0];
  values.instructions = raw[1];
  values.branch_misses = raw[2];
  values.cache_misses = raw[3];
  values.task_clock_ns = raw[4];
  return values;
}

#else  // !__linux__

HwCounterSet::HwCounterSet() {
  for (int i = 0; i < kHwCounterCount; ++i) fds_[i] = -1;
  disabled_reason_ = env_disabled() ? "KCC_HW_COUNTERS=off"
                                    : "unsupported platform";
}

HwCounterSet::~HwCounterSet() = default;

HwCounterValues HwCounterSet::read() const { return {}; }

#endif

HwCounterSet& HwCounterSet::global() {
  // Leaked for the same reason as the Tracer: worker threads may outlive
  // main() and must never touch a destructed fd table.
  static HwCounterSet* set = new HwCounterSet();
  return *set;
}

}  // namespace kcc::obs
