// Hardware performance counters via perf_event_open(2).
//
// HwCounterSet opens one counting fd per event (cycles, instructions,
// branch misses, cache misses, task-clock) on the calling thread with
// inheritance, so worker threads spawned afterwards — the thread pool is
// constructed inside every engine stage — are aggregated into the same
// counts. Reads are cheap (one read(2) per fd), so per-stage deltas are
// taken with HwStageScope, which also feeds the metrics registry
// (`hw_*_total` counters) and the active RunRecorder (obs/report.h).
//
// Degradation is loud but graceful: when the syscall is unavailable
// (seccomp'd containers, kernel.perf_event_paranoid, non-Linux builds) or
// the KCC_HW_COUNTERS=off environment override is set, the set reports
// available() == false with a human-readable reason, every read returns
// zeros, and run reports mark the hw section `"available": false` instead
// of failing the run. The first failed open logs one warning.
#pragma once

#include <cstdint>
#include <string>

namespace kcc::obs {

/// One snapshot (or delta) of the counter set. A counter that failed to
/// open individually stays 0; `available` is true when at least one event
/// is live.
struct HwCounterValues {
  bool available = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t task_clock_ns = 0;

  HwCounterValues operator-(const HwCounterValues& base) const;
  HwCounterValues& operator+=(const HwCounterValues& delta);
};

/// Number of events per set, index-aligned with hw_counter_names():
/// cycles, instructions, branch_misses, cache_misses, task_clock_ns.
constexpr int kHwCounterCount = 5;

/// Names for the hw counter catalog, index-aligned as above.
const char* const* hw_counter_names();

class HwCounterSet {
 public:
  /// Opens the counters immediately. Never throws: failure leaves the set
  /// disabled with disabled_reason() explaining why.
  HwCounterSet();
  ~HwCounterSet();

  HwCounterSet(const HwCounterSet&) = delete;
  HwCounterSet& operator=(const HwCounterSet&) = delete;

  /// True when at least one event opened and is counting.
  bool available() const { return available_; }

  /// Why the set is disabled ("" when available). Examples:
  /// "KCC_HW_COUNTERS=off", "perf_event_open: Permission denied
  /// (perf_event_paranoid?)", "unsupported platform".
  const std::string& disabled_reason() const { return disabled_reason_; }

  /// Human-readable health of the set, the string run-report manifests
  /// carry: "available" when every event counts, "software-only: ..." when
  /// the syscall works but the hardware events never tick (cloud VMs
  /// without a PMU — a calibration read at open time detects and closes
  /// them), or disabled_reason() when nothing opened.
  const std::string& status() const {
    return available_ ? status_ : disabled_reason_;
  }

  /// Current cumulative counts since open. All-zero when disabled.
  HwCounterValues read() const;

  /// The shared process-wide set, opened on first use. Engine stage scopes
  /// and the bench driver read deltas off this instance so counts include
  /// inherited worker threads from the moment the process first asks.
  static HwCounterSet& global();

 private:
  int fds_[kHwCounterCount];
  bool available_ = false;
  std::string disabled_reason_;
  std::string status_;
};

}  // namespace kcc::obs
