// Span-based tracing with Chrome trace_event JSON export.
//
// Spans are RAII: construct a ScopedSpan (or use KCC_SPAN("name")) at the top
// of a region; its duration is recorded when the scope exits. Each thread
// appends completed spans to its own bounded buffer, so tracing never blocks
// one thread on another; a global registry owns the buffers and merges them
// at export time into a single Chrome `trace_event` JSON document that loads
// directly in chrome://tracing or https://ui.perfetto.dev.
//
// Tracing is disabled by default. When disabled, a ScopedSpan costs one
// relaxed atomic load; no clock is read and nothing is recorded. Enable with
// Tracer::instance().set_enabled(true) (the CLI/bench `--trace-out=` flag
// does this) or the KCC_TRACE=1 environment variable.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/timer.h"

namespace kcc::obs {

/// One completed span. The name is stored inline so buffers never allocate
/// after construction; long names are truncated.
struct SpanEvent {
  static constexpr std::size_t kMaxName = 48;
  char name[kMaxName];
  std::uint64_t start_us;  // microseconds since tracer epoch
  std::uint64_t dur_us;
};

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (process-lifetime monotonic clock).
  std::uint64_t now_us() const;

  /// Appends a completed span to the calling thread's buffer. Buffers are
  /// bounded (kMaxEventsPerThread); overflowing spans are counted and
  /// dropped, and the drop count is reported in the export.
  void record(const char* name, std::uint64_t start_us, std::uint64_t dur_us);

  /// Total spans currently buffered across all threads.
  std::size_t event_count() const;
  std::size_t dropped_count() const;

  /// Discards all buffered spans (tests / between bench repetitions). Only
  /// call while no instrumented work is in flight.
  void clear();

  /// Writes the Chrome trace_event JSON document ({"traceEvents": [...]}).
  void write_chrome_trace(std::ostream& out) const;

  static constexpr std::size_t kMaxEventsPerThread = 1 << 16;

 private:
  Tracer();
  struct ThreadBuffer;

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  Timer epoch_;

  struct Impl;
  Impl* impl_;  // leaked singleton state; outlives detached worker threads
};

/// RAII span. Records [construction, destruction) on the calling thread when
/// tracing is enabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  explicit ScopedSpan(const std::string& name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* name);

  bool active_;
  std::uint64_t start_us_ = 0;
  char name_[SpanEvent::kMaxName];
};

}  // namespace kcc::obs

#define KCC_SPAN_CONCAT2(a, b) a##b
#define KCC_SPAN_CONCAT(a, b) KCC_SPAN_CONCAT2(a, b)
/// Traces the rest of the enclosing scope as one span.
#define KCC_SPAN(name) \
  ::kcc::obs::ScopedSpan KCC_SPAN_CONCAT(kcc_span_, __LINE__)(name)
