// Process-global metrics registry: counters, gauges, fixed-bucket histograms.
//
// Design goals, in order:
//   1. Hot-path updates are lock-free: a registered Counter/Gauge/Histogram
//      is a stable reference whose mutations are relaxed atomics. Lookup by
//      name takes a mutex, so instrumented code caches the reference once
//      (function-local static) and pays only the atomic op per event.
//   2. Export is consistent enough: exporters read each atomic individually;
//      metrics updated concurrently with an export may land in either side.
//   3. Always on: counter upkeep is cheap enough (~1 relaxed RMW per event on
//      coarse-grained events, batched adds on fine-grained ones) that there
//      is no global enable flag to get wrong. Exporting is what costs I/O,
//      and that only happens when a caller asks for it.
//
// Naming follows Prometheus conventions (snake_case, `_total` suffix for
// monotonic counters, base units in the name). docs/OBSERVABILITY.md has the
// catalog of metrics the library emits.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace kcc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, community count). Tracks the
/// maximum level ever set so short-lived peaks survive until export.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    update_max(v);
  }
  void add(std::int64_t delta) {
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    update_max(now);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max_value() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::int64_t candidate) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket (+Inf) catches the rest. Bounds are fixed at
/// registration so observe() is allocation-free and bounded work.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  /// Records `n` observations of `value` with one bucket lookup and three
  /// atomic adds — the batching hook for hot loops that tally locally and
  /// flush once.
  void observe_n(double value, std::uint64_t n);

  /// Upper bounds excluding the implicit +Inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last is +Inf).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Quantile estimate (q in [0, 1]), linearly interpolated within the
  /// fixed buckets (Prometheus histogram_quantile style: the first bucket
  /// interpolates from 0 — or from its lower bound when bounds go
  /// negative — and observations in +Inf clamp to the largest finite
  /// bound). Returns 0 when the histogram is empty. The JSON export emits
  /// p50/p90/p99 through this, so run reports need no downstream bucket
  /// math.
  double quantile(double q) const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

  /// `count` bounds starting at `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// `count` bounds: start, start+step, ...
  static std::vector<double> linear_bounds(double start, double step,
                                           std::size_t count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument map. Registration is idempotent: the first caller
/// fixes the instrument (and, for histograms, its bounds); later calls with
/// the same name return the same instance.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Zeroes every registered instrument (tests and bench reruns). Instruments
  /// stay registered; cached references remain valid.
  void reset_all();

  /// Prometheus text exposition format.
  void write_prometheus(std::ostream& out) const;
  /// Single JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Includes a `process_peak_rss_bytes` gauge sampled at write time.
  void write_json(std::ostream& out) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
MetricsRegistry& metrics();

/// Peak resident set size of this process in bytes (Linux VmHWM; 0 where
/// unsupported).
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (Linux VmRSS; 0 where unsupported).
/// The streaming CPM engine samples this into the `cpm_stream_rss_bytes`
/// gauge at window boundaries, so the gauge's max tracks the peak footprint
/// of the run itself rather than of the whole process lifetime.
std::uint64_t current_rss_bytes();

}  // namespace kcc::obs
