#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace kcc::obs {
namespace {

// Doubles formatted compactly but round-trippably enough for tooling.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  require(!bounds_.empty(), "Histogram: needs at least one bucket bound");
  require(std::is_sorted(bounds_.begin(), bounds_.end()),
          "Histogram: bucket bounds must be ascending");
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe_n(double value, std::uint64_t n) {
  if (n == 0) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // bounds_.size() = +Inf
  buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
  count_.fetch_add(n, std::memory_order_relaxed);
  sum_.fetch_add(value * static_cast<double>(n), std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // bounds_.size() = +Inf
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0, 1]");
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target observation (1-based, ceil'd so q=1 hits the last).
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      if (i == bounds_.size()) return bounds_.back();  // +Inf clamps
      const double upper = bounds_[i];
      const double lower =
          i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
      const double into_bucket =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lower + (upper - lower) * into_bucket;
    }
    cumulative = next;
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  require(start > 0 && factor > 1 && count > 0,
          "Histogram::exponential_bounds: invalid parameters");
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::linear_bounds(double start, double step,
                                             std::size_t count) {
  require(step > 0 && count > 0,
          "Histogram::linear_bounds: invalid parameters");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + step * static_cast<double>(i));
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

void MetricsRegistry::reset_all() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) {
    out << "# TYPE " << name << " counter\n";
    out << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "# TYPE " << name << " gauge\n";
    out << name << " " << g->value() << "\n";
    out << name << "_max " << g->max_value() << "\n";
  }
  out << "# TYPE process_peak_rss_bytes gauge\n";
  out << "process_peak_rss_bytes " << peak_rss_bytes() << "\n";
  for (const auto& [name, h] : histograms_) {
    out << "# TYPE " << name << " histogram\n";
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += counts[i];
      out << name << "_bucket{le=\"" << format_double(h->bounds()[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += counts.back();
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << name << "_sum " << format_double(h->sum()) << "\n";
    out << name << "_count " << h->count() << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":{\"value\":" << g->value() << ",\"max\":" << g->max_value()
        << "}";
  }
  if (!first) out << ",";
  out << "\"process_peak_rss_bytes\":{\"value\":" << peak_rss_bytes()
      << ",\"max\":" << peak_rss_bytes() << "}";
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ",";
    first = false;
    write_json_string(out, name);
    out << ":{\"count\":" << h->count()
        << ",\"sum\":" << format_double(h->sum())
        << ",\"p50\":" << format_double(h->quantile(0.50))
        << ",\"p90\":" << format_double(h->quantile(0.90))
        << ",\"p99\":" << format_double(h->quantile(0.99))
        << ",\"buckets\":[";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"le\":";
      if (i < h->bounds().size()) {
        out << format_double(h->bounds()[i]);
      } else {
        out << "\"+Inf\"";
      }
      out << ",\"count\":" << counts[i] << "}";
    }
    out << "]}";
  }
  out << "}}";
}

namespace {

// "VmHWM:" / "VmRSS:" lines of /proc/self/status, in bytes.
std::uint64_t proc_status_bytes([[maybe_unused]] const char* field) {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  const std::string prefix = std::string(field) + ":";
  while (std::getline(status, line)) {
    if (line.rfind(prefix, 0) == 0) {
      std::istringstream fields(line.substr(prefix.size()));
      std::uint64_t kib = 0;
      fields >> kib;
      return kib * 1024;
    }
  }
#endif
  return 0;
}

}  // namespace

std::uint64_t peak_rss_bytes() { return proc_status_bytes("VmHWM"); }

std::uint64_t current_rss_bytes() { return proc_status_bytes("VmRSS"); }

}  // namespace kcc::obs
