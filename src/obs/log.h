// Leveled structured logging for the whole library.
//
// Usage:
//   KCC_LOG(kInfo) << "percolated k=" << k << " in " << secs << "s";
//
// The stream body is only evaluated when the level is enabled, so logging is
// free on hot paths when off (one relaxed atomic load). The level defaults to
// off — benches and tests run silent — and is configured either
// programmatically (set_log_level) or through the KCC_LOG_LEVEL environment
// variable (off|error|warn|info|debug|trace), read once at first use.
// Messages are assembled off-lock and written to the sink under a mutex, so
// concurrent log statements never interleave mid-line.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace kcc::obs {

enum class LogLevel {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

/// Current threshold; messages at levels <= this are emitted.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "off|error|warn|info|debug|trace" (throws kcc::Error otherwise).
LogLevel parse_log_level(const std::string& name);
const char* log_level_name(LogLevel level);

/// True when a message at `level` would be emitted.
inline bool log_enabled(LogLevel level) {
  return level != LogLevel::kOff && level <= log_level();
}

/// Redirects log output (default std::cerr). Pass nullptr to restore the
/// default. Intended for tests; not synchronised with in-flight messages.
void set_log_sink(std::ostream* sink);

/// One log statement: buffers locally, flushes a single line on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level);
  ~LogStream();

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace kcc::obs

// The `if/else` shape keeps operator<< arguments unevaluated when the level
// is disabled and stays safe inside unbraced if statements.
#define KCC_LOG(level)                                              \
  if (!::kcc::obs::log_enabled(::kcc::obs::LogLevel::level)) {      \
  } else                                                            \
    ::kcc::obs::LogStream(::kcc::obs::LogLevel::level)
