#include "obs/report.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/timer.h"
#include "obs/build_info.h"
#include "obs/metrics.h"

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace kcc::obs {
namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string cpu_model_name() {
#if defined(__linux__)
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      std::size_t begin = colon + 1;
      while (begin < line.size() && std::isspace(
                 static_cast<unsigned char>(line[begin]))) {
        ++begin;
      }
      return line.substr(begin);
    }
  }
#endif
  return "";
}

std::string host_name() {
#if defined(__linux__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0) return buf;
#endif
  return "";
}

void write_hw_values_json(std::ostream& out, const HwCounterValues& hw) {
  out << "{\"available\":" << (hw.available ? "true" : "false")
      << ",\"cycles\":" << hw.cycles
      << ",\"instructions\":" << hw.instructions
      << ",\"branch_misses\":" << hw.branch_misses
      << ",\"cache_misses\":" << hw.cache_misses
      << ",\"task_clock_ns\":" << hw.task_clock_ns << "}";
}

}  // namespace

RunManifest collect_manifest(const std::string& tool) {
  RunManifest m;
  m.tool = tool;
  m.git_sha = KCC_BUILD_GIT_SHA;
  m.git_dirty = KCC_BUILD_GIT_DIRTY != 0;
  m.build_type = KCC_BUILD_TYPE;
  m.compiler = KCC_BUILD_COMPILER;
  m.cxx_flags = KCC_BUILD_CXX_FLAGS;
  m.sanitize = KCC_BUILD_SANITIZE;
  m.cpu_model = cpu_model_name();
  m.cpu_logical_cores = std::thread::hardware_concurrency();
  m.hostname = host_name();
  const HwCounterSet& hw = HwCounterSet::global();
  m.hw_counters = hw.status();
  return m;
}

void write_manifest_json(std::ostream& out, const RunManifest& manifest) {
  out << "{\"tool\":";
  write_json_string(out, manifest.tool);
  out << ",\"git_sha\":";
  write_json_string(out, manifest.git_sha);
  out << ",\"git_dirty\":" << (manifest.git_dirty ? "true" : "false");
  out << ",\"build_type\":";
  write_json_string(out, manifest.build_type);
  out << ",\"compiler\":";
  write_json_string(out, manifest.compiler);
  out << ",\"cxx_flags\":";
  write_json_string(out, manifest.cxx_flags);
  out << ",\"sanitize\":";
  write_json_string(out, manifest.sanitize);
  out << ",\"cpu_model\":";
  write_json_string(out, manifest.cpu_model);
  out << ",\"cpu_logical_cores\":" << manifest.cpu_logical_cores;
  out << ",\"hostname\":";
  write_json_string(out, manifest.hostname);
  out << ",\"hw_counters\":";
  write_json_string(out, manifest.hw_counters);
  out << "}";
}

RunRecorder& RunRecorder::instance() {
  // Leaked like the Tracer: stage scopes on detached workers may fire after
  // main() returns.
  static RunRecorder* recorder = new RunRecorder();
  return *recorder;
}

void RunRecorder::record(StageSample sample) {
  std::lock_guard lock(mutex_);
  stages_.push_back(std::move(sample));
}

std::vector<StageSample> RunRecorder::stages() const {
  std::lock_guard lock(mutex_);
  return stages_;
}

void RunRecorder::annotate(const std::string& key, std::string value) {
  std::lock_guard lock(mutex_);
  annotations_[key] = std::move(value);
}

std::map<std::string, std::string> RunRecorder::annotations() const {
  std::lock_guard lock(mutex_);
  return annotations_;
}

void RunRecorder::clear() {
  std::lock_guard lock(mutex_);
  stages_.clear();
  annotations_.clear();
}

void annotate_run(const std::string& key, std::string value) {
  RunRecorder& recorder = RunRecorder::instance();
  if (!recorder.enabled()) return;
  recorder.annotate(key, std::move(value));
}

namespace {

// Seconds on a process-lifetime monotonic clock, for stage wall times.
double monotonic_seconds() {
  static const Timer* epoch = new Timer();
  return epoch->seconds();
}

// Cached hw_*_total registry counters (registration takes a mutex).
Counter* hw_total_counter(int index) {
  static Counter* counters[kHwCounterCount] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kHwCounterCount; ++i) {
      counters[i] = &metrics().counter(
          std::string("hw_") + hw_counter_names()[i] + "_total");
    }
  });
  return counters[index];
}

}  // namespace

StageScope::StageScope(const char* name)
    : name_(name),
      start_seconds_(monotonic_seconds()),
      hw_live_(HwCounterSet::global().available()),
      recording_(RunRecorder::instance().enabled()) {
  if (hw_live_) start_ = HwCounterSet::global().read();
}

StageScope::~StageScope() {
  const double wall = monotonic_seconds() - start_seconds_;
  HwCounterValues delta;
  if (hw_live_) {
    delta = HwCounterSet::global().read() - start_;
    const std::uint64_t raw[kHwCounterCount] = {
        delta.cycles, delta.instructions, delta.branch_misses,
        delta.cache_misses, delta.task_clock_ns};
    for (int i = 0; i < kHwCounterCount; ++i) {
      if (raw[i] > 0) hw_total_counter(i)->inc(raw[i]);
    }
  }
  if (recording_) {
    StageSample sample;
    sample.name = name_;
    sample.wall_seconds = wall;
    sample.hw = delta;
    sample.rss_after_bytes = current_rss_bytes();
    RunRecorder::instance().record(std::move(sample));
  }
}

void write_run_report(std::ostream& out, const RunManifest& manifest) {
  out << "{\"kcc_run_report_version\":" << kRunReportVersion;
  out << ",\"manifest\":";
  write_manifest_json(out, manifest);
  out << ",\"stages\":[";
  const std::vector<StageSample> stages = RunRecorder::instance().stages();
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"name\":";
    write_json_string(out, stages[i].name);
    out << ",\"wall_seconds\":" << format_double(stages[i].wall_seconds)
        << ",\"rss_after_bytes\":" << stages[i].rss_after_bytes << ",\"hw\":";
    write_hw_values_json(out, stages[i].hw);
    out << "}";
  }
  out << "],\"annotations\":{";
  const std::map<std::string, std::string> annotations =
      RunRecorder::instance().annotations();
  bool first_annotation = true;
  for (const auto& [key, value] : annotations) {
    if (!first_annotation) out << ",";
    first_annotation = false;
    write_json_string(out, key);
    out << ":";
    write_json_string(out, value);
  }
  out << "},\"rss\":{\"current_bytes\":" << current_rss_bytes()
      << ",\"peak_bytes\":" << peak_rss_bytes() << "}";
  out << ",\"hw\":";
  write_hw_values_json(out, HwCounterSet::global().read());
  out << ",\"metrics\":";
  metrics().write_json(out);
  out << "}";
}

void write_run_report_file(const std::string& path,
                           const RunManifest& manifest) {
  if (path == "-") {
    write_run_report(std::cout, manifest);
    std::cout << "\n";
    require(std::cout.good(), "obs: failed writing run report to stdout");
    return;
  }
  std::ofstream out(path);
  require(out.good(), "obs: cannot write run report " + path);
  write_run_report(out, manifest);
  out << "\n";
  require(out.good(), "obs: failed writing run report " + path);
}

double FlatJson::number(const std::string& path, double fallback) const {
  const auto it = numbers.find(path);
  return it == numbers.end() ? fallback : it->second;
}

std::string FlatJson::string(const std::string& path,
                             const std::string& fallback) const {
  const auto it = strings.find(path);
  return it == strings.end() ? fallback : it->second;
}

namespace {

// Recursive-descent reader for the JSON this library writes. Not a general
// validator: it accepts exactly the constructs our writers emit (objects,
// arrays, strings with simple escapes, numbers, true/false/null) and throws
// on anything else.
class FlatParser {
 public:
  explicit FlatParser(const std::string& text) : text_(text) {}

  FlatJson parse() {
    skip_ws();
    value("");
    skip_ws();
    require(pos_ == text_.size(), "trailing content");
    return std::move(out_);
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("parse_json_flat: " + what + " at offset " +
                std::to_string(pos_));
  }
  void require(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_++];
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  static std::string join(const std::string& prefix, const std::string& key) {
    return prefix.empty() ? key : prefix + "." + key;
  }

  void value(const std::string& path) {
    switch (peek()) {
      case '{':
        object(path);
        return;
      case '[':
        array(path);
        return;
      case '"':
        out_.strings[path] = string_literal();
        return;
      case 't':
        keyword("true");
        out_.numbers[path] = 1.0;
        return;
      case 'f':
        keyword("false");
        out_.numbers[path] = 0.0;
        return;
      case 'n':
        keyword("null");
        return;
      default:
        out_.numbers[path] = number_literal();
        return;
    }
  }

  void object(const std::string& path) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string_literal();
      skip_ws();
      expect(':');
      skip_ws();
      value(join(path, key));
      skip_ws();
      const char c = take();
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  void array(const std::string& path) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    std::size_t index = 0;
    while (true) {
      skip_ws();
      value(join(path, std::to_string(index++)));
      skip_ws();
      const char c = take();
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our writers only escape control characters; anything else is
          // preserved as '?' rather than implementing full UTF-16 here.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  double number_literal() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    require(pos_ > begin, "expected a number");
    try {
      return std::stod(text_.substr(begin, pos_ - begin));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  void keyword(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (take() != *c) fail(std::string("expected '") + word + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  FlatJson out_;
};

}  // namespace

FlatJson parse_json_flat(const std::string& text) {
  return FlatParser(text).parse();
}

FlatJson read_json_flat_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "obs: cannot read JSON file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json_flat(buffer.str());
}

}  // namespace kcc::obs
