// Internal: per-vertex subproblem entry point shared by the sequential and
// parallel enumerators. Not part of the public API.
#pragma once

#include <cstddef>

#include "clique/bron_kerbosch.h"
#include "graph/degeneracy.h"

namespace kcc {

/// Enumerates all maximal cliques whose earliest node (in the degeneracy
/// ordering `deg`) is `v`. Every maximal clique of the graph is produced by
/// exactly one vertex subproblem, so subproblems can run independently.
/// Cliques are reported unsorted (caller sorts).
void enumerate_vertex_subproblem(const Graph& g, const DegeneracyResult& deg,
                                 NodeId v, const CliqueVisitor& visit,
                                 std::size_t min_size);

}  // namespace kcc
