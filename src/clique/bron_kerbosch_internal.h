// Internal: the shared enumeration core behind clique::Enumerator. The
// sequential (bron_kerbosch.cpp), parallel (parallel_cliques.cpp) and
// streaming (clique_stream.cpp) drivers all funnel through
// enumerate_vertex_subproblem, which dispatches each degeneracy-ordered
// vertex subproblem to the bitset or sparse kernel. Not part of the public
// API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "clique/enumerator.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "graph/bit_graph.h"
#include "graph/degeneracy.h"
#include "graph/graph.h"

namespace kcc::clique::detail {

/// Everything one enumeration shares across subproblems. Built by the
/// Enumerator entry points; plain references, so it is cheap to copy into
/// pool jobs.
struct EnumContext {
  const Graph& g;
  const DegeneracyResult& deg;
  /// Non-null selects the bitset kernel (with sparse fallback for hub
  /// subproblems); null runs the sparse merge kernel throughout.
  const BitGraph* bits = nullptr;
  std::size_t min_size = 1;
  /// Subproblems whose candidate universe exceeds this run the sparse
  /// kernel even when `bits` is set (meaningless when it is null).
  std::size_t bitset_max_universe = 0;
};

/// Worker-local tally of the clique metrics. Emitting bumps plain integers
/// here; the destructor flushes them into the global obs registry in a
/// handful of atomic adds, instead of paying per-clique atomics (and a
/// histogram bucket search) on the enumeration hot path.
struct LocalCliqueMetrics {
  static constexpr std::size_t kMaxTracked = 64;
  std::uint64_t subproblems = 0;
  std::uint64_t size_count[kMaxTracked] = {};  // cliques of size i
  ~LocalCliqueMetrics() { flush(); }
  void flush();  // defined next to the registry handles in bron_kerbosch.cpp
};

/// Reusable per-worker buffers. One scratch serves any number of
/// subproblems in sequence; it grows to the largest universe seen.
struct SubproblemScratch {
  BitGraph::Scratch bits;
  NodeSet r;     // growing clique of the active recursion (unsorted)
  NodeSet emit;  // sorted copy handed to the sink
  NodeSet p, x;  // sparse-kernel candidate/excluded seeds
  LocalCliqueMetrics metrics;
};

/// Enumerates all maximal cliques whose earliest node in the degeneracy
/// ordering is ctx.deg.order[pos]. Every maximal clique of the graph is
/// produced by exactly one vertex subproblem, so subproblems can run
/// independently; within one subproblem, cliques are reported sorted, in an
/// order that is identical for both kernels (see graph/bit_graph.h).
void enumerate_vertex_subproblem(const EnumContext& ctx, std::size_t pos,
                                 SubproblemScratch& scratch,
                                 const CliqueSinkRef& sink);

/// Runs every subproblem on the calling thread, in degeneracy order.
void enumerate_sequential(const EnumContext& ctx, const CliqueSinkRef& sink);

/// Parallel collection: subproblems are claimed dynamically over `pool` and
/// per-position batches merged in degeneracy-position order.
std::vector<NodeSet> collect_parallel(const EnumContext& ctx,
                                      ThreadPool& pool);

/// Windowed streaming enumeration (see clique/clique_stream.h for the
/// double-buffer protocol). `sink` runs on the calling thread. Returns the
/// number of windows processed. `window_positions` must be >= 1.
std::size_t stream_enumerate(const EnumContext& ctx, ThreadPool& pool,
                             std::size_t window_positions,
                             const CliqueSinkRef& sink,
                             const WindowFn& window_done);

}  // namespace kcc::clique::detail
