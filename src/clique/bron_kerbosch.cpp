#include "clique/bron_kerbosch.h"

#include <algorithm>

#include "common/set_ops.h"
#include "graph/degeneracy.h"
#include "obs/metrics.h"

namespace kcc {
namespace {

// Enumeration instruments, shared by the sequential and parallel drivers
// (both funnel through enumerate_vertex_subproblem). Per-clique cost is a
// handful of relaxed atomics — noise next to the set algebra that produced
// the clique.
struct CliqueMetrics {
  obs::Counter& cliques = obs::metrics().counter("cliques_enumerated_total");
  obs::Counter& subproblems = obs::metrics().counter("bk_subproblems_total");
  obs::Histogram& size = obs::metrics().histogram(
      "clique_size_nodes", obs::Histogram::linear_bounds(2.0, 1.0, 29));
};

CliqueMetrics& clique_metrics() {
  static CliqueMetrics m;
  return m;
}

// Recursive state for one outer-vertex subproblem. P and X are sorted
// candidate/excluded sets; R is the growing clique.
class Expander {
 public:
  Expander(const Graph& g, const CliqueVisitor& visit, std::size_t min_size)
      : g_(g), visit_(visit), min_size_(min_size) {}

  NodeSet r;

  void expand(NodeSet& p, NodeSet& x) {
    if (p.empty() && x.empty()) {
      if (r.size() >= min_size_) visit_(r);
      return;
    }
    if (r.size() + p.size() < min_size_) return;  // cannot reach min_size

    // Tomita pivot: u in P ∪ X maximising |N(u) ∩ P| minimises branching.
    const NodeId pivot = choose_pivot(p, x);
    const auto pivot_adj = g_.neighbors(pivot);
    // Branch on P \ N(pivot). Copy because p mutates during iteration.
    NodeSet branch;
    std::set_difference(p.begin(), p.end(), pivot_adj.begin(), pivot_adj.end(),
                        std::back_inserter(branch));
    for (NodeId v : branch) {
      const auto v_adj = g_.neighbors(v);
      NodeSet p2, x2;
      p2.reserve(std::min(p.size(), v_adj.size()));
      std::set_intersection(p.begin(), p.end(), v_adj.begin(), v_adj.end(),
                            std::back_inserter(p2));
      std::set_intersection(x.begin(), x.end(), v_adj.begin(), v_adj.end(),
                            std::back_inserter(x2));
      r.push_back(v);
      expand(p2, x2);
      r.pop_back();
      // Move v from P to X.
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
    }
  }

 private:
  NodeId choose_pivot(const NodeSet& p, const NodeSet& x) const {
    NodeId best = p.empty() ? x.front() : p.front();
    std::size_t best_score = 0;
    bool first = true;
    for (const NodeSet* side : {&p, &x}) {
      for (NodeId u : *side) {
        const auto adj = g_.neighbors(u);
        const std::size_t score =
            intersection_size_span(p, adj.data(), adj.size());
        if (first || score > best_score) {
          best = u;
          best_score = score;
          first = false;
        }
      }
    }
    return best;
  }

  static std::size_t intersection_size_span(const NodeSet& a, const NodeId* b,
                                            std::size_t nb) {
    std::size_t n = 0, i = 0, j = 0;
    while (i < a.size() && j < nb) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        ++n;
        ++i;
        ++j;
      }
    }
    return n;
  }

  const Graph& g_;
  const CliqueVisitor& visit_;
  std::size_t min_size_;
};

}  // namespace

void enumerate_vertex_subproblem(const Graph& g, const DegeneracyResult& deg,
                                 NodeId v, const CliqueVisitor& visit,
                                 std::size_t min_size) {
  // Split v's neighbourhood by degeneracy position: later nodes become
  // candidates, earlier nodes are excluded (they were outer vertices before).
  NodeSet p, x;
  for (NodeId w : g.neighbors(v)) {
    if (deg.position_of[w] > deg.position_of[v]) {
      p.push_back(w);
    } else {
      x.push_back(w);
    }
  }
  std::sort(p.begin(), p.end());
  std::sort(x.begin(), x.end());
  CliqueMetrics& m = clique_metrics();
  m.subproblems.inc();
  const CliqueVisitor counted = [&m, &visit](const NodeSet& clique) {
    m.cliques.inc();
    m.size.observe(static_cast<double>(clique.size()));
    visit(clique);
  };
  Expander e(g, counted, min_size);
  e.r.push_back(v);
  e.expand(p, x);
}

void for_each_maximal_clique(const Graph& g, const CliqueVisitor& visit,
                             std::size_t min_size) {
  const DegeneracyResult deg = degeneracy_order(g);
  // Visit cliques sorted before reporting so downstream code can rely on the
  // NodeSet invariant.
  NodeSet sorted;
  const CliqueVisitor sorted_visit = [&](const NodeSet& clique) {
    sorted = clique;
    std::sort(sorted.begin(), sorted.end());
    visit(sorted);
  };
  for (NodeId v : deg.order) {
    enumerate_vertex_subproblem(g, deg, v, sorted_visit, min_size);
  }
}

std::vector<NodeSet> maximal_cliques(const Graph& g, std::size_t min_size) {
  std::vector<NodeSet> out;
  for_each_maximal_clique(
      g, [&](const NodeSet& clique) { out.push_back(clique); }, min_size);
  return out;
}

std::size_t maximum_clique_size(const Graph& g) {
  std::size_t best = 0;
  for_each_maximal_clique(
      g, [&](const NodeSet& clique) { best = std::max(best, clique.size()); },
      1);
  return best;
}

}  // namespace kcc
