#include "clique/bron_kerbosch.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>

#include "clique/bron_kerbosch_internal.h"
#include "clique/enumerator.h"
#include "common/set_ops.h"
#include "graph/degeneracy.h"
#include "obs/metrics.h"

namespace kcc {
namespace clique {
namespace detail {
namespace {

// Enumeration instruments, shared by every driver (all funnel through
// enumerate_vertex_subproblem). The hot path tallies into a worker-local
// LocalCliqueMetrics; these registry handles are touched only on flush.
struct CliqueMetrics {
  obs::Counter& cliques = obs::metrics().counter("cliques_enumerated_total");
  obs::Counter& subproblems = obs::metrics().counter("bk_subproblems_total");
  obs::Histogram& size = obs::metrics().histogram(
      "clique_size_nodes", obs::Histogram::linear_bounds(2.0, 1.0, 29));
};

CliqueMetrics& clique_metrics() {
  static CliqueMetrics m;
  return m;
}

// Shared emission path of both kernels: sort the clique, tally metrics,
// hand the sink a span. The sorted copy lives in per-worker scratch so
// emitting never allocates once the buffer has grown.
class Emitter {
 public:
  Emitter(const CliqueSinkRef& sink, NodeSet& buf, LocalCliqueMetrics& metrics)
      : sink_(sink), buf_(buf), metrics_(metrics) {}

  void operator()(const NodeSet& r) const {
    buf_.assign(r.begin(), r.end());
    std::sort(buf_.begin(), buf_.end());
    if (buf_.size() < LocalCliqueMetrics::kMaxTracked) {
      ++metrics_.size_count[buf_.size()];
    } else {
      // Outsized clique: spill straight to the registry so the local tally
      // stays a fixed-size array.
      clique_metrics().cliques.inc();
      clique_metrics().size.observe(static_cast<double>(buf_.size()));
    }
    sink_(buf_);
  }

 private:
  const CliqueSinkRef& sink_;
  NodeSet& buf_;
  LocalCliqueMetrics& metrics_;
};

// ---------------------------------------------------------------------------
// Word-mask helpers for the bitset kernel.

std::size_t popcount_words(const std::uint64_t* a, std::size_t words) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < words; ++i) n += std::popcount(a[i]);
  return n;
}

std::size_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < words; ++i) n += std::popcount(a[i] & b[i]);
  return n;
}

bool all_zero(const std::uint64_t* a, std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

// Calls fn(local_index) for every set bit, in ascending index order —
// which is ascending NodeId order, since local indices rank the sorted
// member list (see graph/bit_graph.h).
template <typename Fn>
void for_each_bit(const std::uint64_t* a, std::size_t words, Fn&& fn) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = a[w];
    while (word != 0) {
      const std::size_t bit = static_cast<std::size_t>(std::countr_zero(word));
      fn(w * 64 + bit);
      word &= word - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Bitset kernel: Bron–Kerbosch with Tomita pivoting where P, X and the
// branch set are word masks over the subproblem universe and pivot scoring
// is a row-AND popcount. Each recursion depth owns one stack slot of three
// masks (P, X, branch) inside BitGraph::Scratch — no allocation past the
// top-level prepare().
//
// Traversal parity with the sparse kernel (the canonical_digest invariant):
// candidates are iterated by ascending local index == ascending NodeId, the
// pivot scan walks P then X in that same order with a strictly-greater
// tie-break, and the branch mask is snapshotted before P mutates — all
// exactly mirroring the sorted-vector code below.
class BitExpander {
 public:
  BitExpander(const SubproblemBits& sub, NodeSet& r, const Emitter& emit,
              std::size_t min_size)
      : sub_(sub),
        words_(sub.words),
        base_(sub.p_mask),  // stack slot 0; slot d lives at d * 3 * words
        r_(r),
        emit_(emit),
        min_size_(min_size) {}

  void expand(std::size_t depth) {
    std::uint64_t* p = base_ + depth * 3 * words_;
    std::uint64_t* x = p + words_;
    std::uint64_t* branch = x + words_;

    const std::size_t pc = popcount_words(p, words_);
    if (pc == 0) {
      if (all_zero(x, words_) && r_.size() >= min_size_) emit_(r_);
      return;
    }
    if (r_.size() + pc < min_size_) return;  // cannot reach min_size

    const std::uint64_t* pivot_row = sub_.row(choose_pivot(p, x, pc));
    for (std::size_t i = 0; i < words_; ++i) branch[i] = p[i] & ~pivot_row[i];

    for_each_bit(branch, words_, [&](std::size_t j) {
      const std::uint64_t* row = sub_.row(j);
      std::uint64_t* p2 = base_ + (depth + 1) * 3 * words_;
      std::uint64_t* x2 = p2 + words_;
      for (std::size_t i = 0; i < words_; ++i) {
        p2[i] = p[i] & row[i];
        x2[i] = x[i] & row[i];
      }
      r_.push_back(sub_.members[j]);
      expand(depth + 1);
      r_.pop_back();
      // Move j from P to X.
      p[j / 64] &= ~(1ULL << (j % 64));
      x[j / 64] |= 1ULL << (j % 64);
    });
  }

 private:
  // Tomita pivot: u in P ∪ X maximising |N(u) ∩ P|. First-scanned wins
  // ties (P side before X side, ascending NodeId within each), matching
  // the sparse kernel. A score of pc is a perfect pivot — nothing can
  // strictly beat it, so the scan stops early without changing the choice.
  std::size_t choose_pivot(const std::uint64_t* p, const std::uint64_t* x,
                           std::size_t pc) const {
    std::size_t best = 0;
    std::size_t best_score = 0;
    bool first = true;
    for (const std::uint64_t* side : {p, x}) {
      bool saturated = false;
      for (std::size_t w = 0; w < words_ && !saturated; ++w) {
        std::uint64_t word = side[w];
        while (word != 0) {
          const std::size_t u =
              w * 64 + static_cast<std::size_t>(std::countr_zero(word));
          word &= word - 1;
          const std::size_t score = and_popcount(sub_.row(u), p, words_);
          if (first || score > best_score) {
            best = u;
            best_score = score;
            first = false;
            if (best_score == pc) {
              saturated = true;
              break;
            }
          }
        }
      }
      if (saturated) break;
    }
    return best;
  }

  const SubproblemBits& sub_;
  const std::size_t words_;
  std::uint64_t* const base_;
  NodeSet& r_;
  const Emitter& emit_;
  const std::size_t min_size_;
};

// ---------------------------------------------------------------------------
// Sparse kernel: the historical sorted-vector recursion. P and X are sorted
// candidate/excluded sets; R is the growing clique. Retained as the hub
// fallback (universes past bitset_max_universe would need quadratic bit
// rows) and as the `sparse` backend for differential testing.
class Expander {
 public:
  Expander(const Graph& g, NodeSet& r, const Emitter& emit,
           std::size_t min_size)
      : g_(g), r_(r), emit_(emit), min_size_(min_size) {}

  void expand(NodeSet& p, NodeSet& x) {
    if (p.empty() && x.empty()) {
      if (r_.size() >= min_size_) emit_(r_);
      return;
    }
    if (r_.size() + p.size() < min_size_) return;  // cannot reach min_size

    // Tomita pivot: u in P ∪ X maximising |N(u) ∩ P| minimises branching.
    const NodeId pivot = choose_pivot(p, x);
    const auto pivot_adj = g_.neighbors(pivot);
    // Branch on P \ N(pivot). Copy because p mutates during iteration.
    NodeSet branch;
    std::set_difference(p.begin(), p.end(), pivot_adj.begin(), pivot_adj.end(),
                        std::back_inserter(branch));
    for (NodeId v : branch) {
      const auto v_adj = g_.neighbors(v);
      NodeSet p2, x2;
      p2.reserve(std::min(p.size(), v_adj.size()));
      std::set_intersection(p.begin(), p.end(), v_adj.begin(), v_adj.end(),
                            std::back_inserter(p2));
      std::set_intersection(x.begin(), x.end(), v_adj.begin(), v_adj.end(),
                            std::back_inserter(x2));
      r_.push_back(v);
      expand(p2, x2);
      r_.pop_back();
      // Move v from P to X.
      p.erase(std::lower_bound(p.begin(), p.end(), v));
      x.insert(std::lower_bound(x.begin(), x.end(), v), v);
    }
  }

 private:
  NodeId choose_pivot(const NodeSet& p, const NodeSet& x) const {
    NodeId best = p.empty() ? x.front() : p.front();
    std::size_t best_score = 0;
    bool first = true;
    for (const NodeSet* side : {&p, &x}) {
      for (NodeId u : *side) {
        const auto adj = g_.neighbors(u);
        const std::size_t score =
            intersection_size_span(p, adj.data(), adj.size());
        if (first || score > best_score) {
          best = u;
          best_score = score;
          first = false;
        }
      }
    }
    return best;
  }

  static std::size_t intersection_size_span(const NodeSet& a, const NodeId* b,
                                            std::size_t nb) {
    std::size_t n = 0, i = 0, j = 0;
    while (i < a.size() && j < nb) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        ++n;
        ++i;
        ++j;
      }
    }
    return n;
  }

  const Graph& g_;
  NodeSet& r_;
  const Emitter& emit_;
  const std::size_t min_size_;
};

}  // namespace

void LocalCliqueMetrics::flush() {
  CliqueMetrics& m = clique_metrics();
  if (subproblems != 0) m.subproblems.inc(subproblems);
  subproblems = 0;
  std::uint64_t total = 0;
  for (std::size_t size = 0; size < kMaxTracked; ++size) {
    if (size_count[size] == 0) continue;
    m.size.observe_n(static_cast<double>(size), size_count[size]);
    total += size_count[size];
    size_count[size] = 0;
  }
  if (total != 0) m.cliques.inc(total);
}

void enumerate_vertex_subproblem(const EnumContext& ctx, std::size_t pos,
                                 SubproblemScratch& scratch,
                                 const CliqueSinkRef& sink) {
  const NodeId v = ctx.deg.order[pos];
  ++scratch.metrics.subproblems;
  scratch.r.clear();
  scratch.r.push_back(v);
  const Emitter emit(sink, scratch.emit, scratch.metrics);

  const std::span<const NodeId> adj = ctx.g.neighbors(v);
  if (ctx.bits != nullptr && adj.size() <= ctx.bitset_max_universe) {
    const SubproblemBits sub = ctx.bits->prepare(v, scratch.bits);
    if (sub.members.empty()) {
      // Isolated vertex: {v} is a size-1 maximal clique.
      if (scratch.r.size() >= ctx.min_size) emit(scratch.r);
      return;
    }
    BitExpander(sub, scratch.r, emit, ctx.min_size).expand(0);
    return;
  }

  // Sparse path. Split v's neighbourhood by degeneracy position: later
  // nodes become candidates, earlier nodes are excluded (they were outer
  // vertices before). neighbors(v) is ascending, so both halves inherit
  // the sorted invariant without a sort.
  scratch.p.clear();
  scratch.x.clear();
  for (NodeId w : adj) {
    if (ctx.deg.position_of[w] > ctx.deg.position_of[v]) {
      scratch.p.push_back(w);
    } else {
      scratch.x.push_back(w);
    }
  }
  Expander(ctx.g, scratch.r, emit, ctx.min_size).expand(scratch.p, scratch.x);
}

void enumerate_sequential(const EnumContext& ctx, const CliqueSinkRef& sink) {
  SubproblemScratch scratch;
  for (std::size_t pos = 0; pos < ctx.deg.order.size(); ++pos) {
    enumerate_vertex_subproblem(ctx, pos, scratch, sink);
  }
}

}  // namespace detail
}  // namespace clique

// ---------------------------------------------------------------------------
// Deprecated std::function wrappers (see bron_kerbosch.h). New code should
// construct a clique::Enumerator directly.

void for_each_maximal_clique(const Graph& g, const CliqueVisitor& visit,
                             std::size_t min_size) {
  clique::Options options;
  options.min_size = min_size;
  const clique::Enumerator e(g, options);
  // One reusable buffer bridges the span-based sink to the NodeSet-based
  // legacy visitor without a per-clique allocation.
  NodeSet buf;
  e.for_each([&](std::span<const NodeId> clique) {
    buf.assign(clique.begin(), clique.end());
    visit(buf);
  });
}

std::vector<NodeSet> maximal_cliques(const Graph& g, std::size_t min_size) {
  clique::Options options;
  options.min_size = min_size;
  return clique::Enumerator(g, options).collect();
}

std::size_t maximum_clique_size(const Graph& g) {
  std::size_t best = 0;
  const clique::Enumerator e(g);
  e.for_each([&](std::span<const NodeId> clique) {
    best = std::max(best, clique.size());
  });
  return best;
}

}  // namespace kcc
