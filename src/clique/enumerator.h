// clique::Enumerator — the one front door to maximal-clique enumeration.
//
// Historically the clique layer exposed three free functions
// (maximal_cliques, parallel_maximal_cliques, stream_maximal_cliques), each
// reporting cliques through a type-erased std::function visitor — one heap
// allocation to build and an indirect, non-inlinable call per clique. The
// Enumerator facade replaces that with:
//
//  * a CliqueSink concept: any callable taking std::span<const NodeId>.
//    The templated entry points erase the sink into a CliqueSinkRef (a raw
//    context + function-pointer pair — no allocation, trivially copyable)
//    exactly once per enumeration, and the hot kernels emit through it;
//  * batch emission: the parallel and streaming drivers buffer cliques in
//    flat CliqueBatch arenas (one node array + offsets per degeneracy slot)
//    instead of one heap NodeSet per clique;
//  * a backend knob: the same degeneracy-ordered Bron–Kerbosch/Tomita
//    recursion runs either over sorted-id merge intersections (`sparse`,
//    the historical kernel) or over the word-parallel BitGraph row blocks
//    (`bitset`, with popcount pivot scoring and a sparse fallback for hub
//    subproblems whose universe exceeds Options::bitset_max_universe).
//    `auto` resolves per graph. All backends visit the same cliques in the
//    same deterministic order, for any thread count and window size —
//    cpm::canonical_digest is backend-independent, and check::differential
//    crosses backends to prove it on every graph family.
//
// The legacy free functions remain as thin deprecated wrappers; new code
// should construct an Enumerator:
//
//   clique::Options o;
//   o.min_size = 2;
//   o.backend = clique::Backend::kBitset;
//   clique::Enumerator e(g, o);
//   e.for_each([&](std::span<const NodeId> q) { use(q); });   // sequential
//   auto cliques = e.collect(pool);                            // parallel
//   e.stream(pool, sink, on_window);                           // windowed
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "graph/bit_graph.h"
#include "graph/degeneracy.h"
#include "graph/graph.h"

namespace kcc::clique {

/// Which intersection kernel the Bron–Kerbosch recursion runs on.
enum class Backend {
  kAuto,    ///< resolve per graph (bitset unless the graph is near-treelike)
  kSparse,  ///< sorted-id merge intersections (the historical kernel)
  kBitset,  ///< word-parallel BitGraph row blocks + popcount pivoting
};

const char* backend_name(Backend backend);

/// Parses "auto" | "sparse" | "bitset"; throws kcc::Error otherwise.
Backend parse_backend(const std::string& name);

/// Anything that can consume one maximal clique. The span is sorted
/// ascending and only valid for the duration of the call; copy to keep.
template <typename S>
concept CliqueSink = std::invocable<S&, std::span<const NodeId>>;

/// Non-owning type-erased view of a CliqueSink: a context pointer plus a
/// function pointer. Built once per enumeration at the templated API
/// boundary, so the compiled kernels pay one indirect call per clique and
/// zero allocations — unlike std::function, which the legacy visitors used.
class CliqueSinkRef {
 public:
  template <typename S>
    requires CliqueSink<S>
  explicit CliqueSinkRef(S& sink)
      : ctx_(&sink), fn_([](void* ctx, std::span<const NodeId> clique) {
          (*static_cast<S*>(ctx))(clique);
        }) {}

  void operator()(std::span<const NodeId> clique) const { fn_(ctx_, clique); }

 private:
  void* ctx_;
  void (*fn_)(void*, std::span<const NodeId>);
};

/// Flat clique buffer: one contiguous node array plus offsets. The parallel
/// and streaming drivers fill one batch per degeneracy slot (two vector
/// appends per clique instead of a heap NodeSet each) and replay them in
/// deterministic slot order.
class CliqueBatch {
 public:
  void add(std::span<const NodeId> clique) {
    nodes_.insert(nodes_.end(), clique.begin(), clique.end());
    offsets_.push_back(static_cast<std::uint64_t>(nodes_.size()));
  }

  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  std::span<const NodeId> operator[](std::size_t i) const {
    return {nodes_.data() + offsets_[i],
            nodes_.data() + offsets_[i + 1]};
  }

  template <CliqueSink S>
  void for_each(S&& sink) const {
    for (std::size_t i = 0; i < size(); ++i) sink((*this)[i]);
  }

  void clear() {
    nodes_.clear();
    offsets_.assign(1, 0);
  }

 private:
  std::vector<NodeId> nodes_;
  std::vector<std::uint64_t> offsets_{0};
};

/// Called after each streaming window has been fully drained.
using WindowFn = std::function<void(std::size_t windows_done)>;

struct Options {
  /// Cliques smaller than this are not reported (>= 1). Isolated nodes are
  /// size-1 maximal cliques.
  std::size_t min_size = 1;

  Backend backend = Backend::kAuto;

  /// Hub fallback: a subproblem whose candidate universe (the outer
  /// vertex's degree) exceeds this many nodes runs the sparse merge kernel
  /// instead of building quadratic bit rows, bounding per-worker scratch to
  /// ~max_universe^2/8 bytes. 0 picks the default (2048, i.e. <= 512 KiB of
  /// row blocks). Only meaningful for the bitset backend.
  std::size_t bitset_max_universe = 0;

  /// stream() only: degeneracy positions per enumeration window; 0 picks a
  /// default sized to keep every pool worker busy while bounding resident
  /// slots.
  std::size_t window_positions = 0;
};

class Enumerator {
 public:
  /// Computes the degeneracy ordering and (for the bitset backend) the
  /// BitGraph once; every entry point below reuses them. Holds a reference
  /// to `g`.
  explicit Enumerator(const Graph& g, Options options = {});
  ~Enumerator();

  Enumerator(const Enumerator&) = delete;
  Enumerator& operator=(const Enumerator&) = delete;

  /// The resolved backend (never kAuto).
  Backend backend() const { return resolved_; }
  const Options& options() const { return options_; }
  const DegeneracyResult& degeneracy() const { return deg_; }

  /// Sequential enumeration; `sink` sees every maximal clique, sorted, in
  /// the deterministic degeneracy-driven order.
  template <CliqueSink S>
  void for_each(S&& sink) const {
    CliqueSinkRef ref(sink);
    for_each_ref(ref);
  }

  /// Sequential collection into owned NodeSets.
  std::vector<NodeSet> collect() const;

  /// Parallel collection over `pool`: vertex subproblems are claimed
  /// dynamically (work stealing over an atomic cursor, so uneven subtree
  /// costs balance) and per-slot batches merged in degeneracy-position
  /// order — output is identical to collect() for any thread count.
  std::vector<NodeSet> collect(ThreadPool& pool) const;

  /// Windowed streaming enumeration: while `sink` drains window w on the
  /// calling thread, `pool` enumerates window w+1. At most two windows of
  /// batches are resident. Returns the number of windows processed.
  template <CliqueSink S>
  std::size_t stream(ThreadPool& pool, S&& sink,
                     const WindowFn& window_done = {}) const {
    CliqueSinkRef ref(sink);
    return stream_ref(pool, ref, window_done);
  }

  /// Type-erased cores behind the templated entry points. Usable directly
  /// when a CliqueSinkRef is already at hand.
  void for_each_ref(const CliqueSinkRef& sink) const;
  std::size_t stream_ref(ThreadPool& pool, const CliqueSinkRef& sink,
                         const WindowFn& window_done) const;

 private:
  const Graph& g_;
  Options options_;
  Backend resolved_;
  DegeneracyResult deg_;
  std::unique_ptr<BitGraph> bits_;  // non-null iff resolved_ == kBitset
};

}  // namespace kcc::clique
