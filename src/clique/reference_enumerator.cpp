#include "clique/reference_enumerator.h"

#include <algorithm>

#include "common/error.h"

namespace kcc {

std::vector<NodeSet> reference_maximal_cliques(const Graph& g) {
  const std::size_t n = g.num_nodes();
  require(n <= 24, "reference_maximal_cliques: graph too large for oracle");

  // adjacency bitmask per node (self bit set, so clique test is mask-based).
  std::vector<std::uint32_t> adj(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    adj[v] |= 1u << v;
    for (NodeId w : g.neighbors(v)) adj[v] |= 1u << w;
  }

  auto is_clique = [&](std::uint32_t mask) {
    for (std::size_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1u) {
        if ((mask & adj[v]) != mask) return false;
      }
    }
    return true;
  };

  std::vector<std::uint32_t> cliques;
  const std::uint32_t limit = n == 32 ? 0 : (1u << n);
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    if (!is_clique(mask)) continue;
    // Maximal iff no node outside extends it.
    bool maximal = true;
    for (std::size_t v = 0; v < n && maximal; ++v) {
      if (!((mask >> v) & 1u) && (adj[v] & mask) == mask) maximal = false;
    }
    if (maximal) cliques.push_back(mask);
  }

  std::vector<NodeSet> out;
  out.reserve(cliques.size());
  for (std::uint32_t mask : cliques) {
    NodeSet c;
    for (std::size_t v = 0; v < n; ++v) {
      if ((mask >> v) & 1u) c.push_back(static_cast<NodeId>(v));
    }
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void extend_k_clique(const Graph& g, std::size_t k, NodeSet& current,
                     const NodeSet& candidates, std::vector<NodeSet>& out) {
  if (current.size() == k) {
    out.push_back(current);
    return;
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const NodeId v = candidates[i];
    // Remaining candidates adjacent to v and after v (keeps cliques sorted
    // and enumerated exactly once).
    NodeSet next;
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      if (g.has_edge(v, candidates[j])) next.push_back(candidates[j]);
    }
    if (current.size() + 1 + next.size() < k) continue;
    current.push_back(v);
    extend_k_clique(g, k, current, next, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<NodeSet> all_k_cliques(const Graph& g, std::size_t k) {
  require(k >= 1, "all_k_cliques: k must be >= 1");
  std::vector<NodeSet> out;
  NodeSet all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  NodeSet current;
  extend_k_clique(g, k, current, all, out);
  return out;
}

}  // namespace kcc
