// Streaming maximal-clique enumeration.
//
// parallel_maximal_cliques materializes every maximal clique before the
// caller sees the first one — fine when the caller wants the whole table,
// wasteful when it consumes cliques incrementally (the streaming CPM engine,
// cpm/stream_cpm.h). This channel enumerates the degeneracy-ordered vertex
// subproblems window by window: while the consumer drains window w on the
// calling thread, the pool already enumerates window w+1 into the other
// buffer. At most two windows of per-position slots are resident, so the
// transient enumeration state is bounded by the window size instead of the
// full clique count, and the hand-off is deadlock-free by construction (the
// consumer never blocks on a task it has not yet scheduled).
//
// Determinism: cliques arrive in exactly the order parallel_maximal_cliques
// returns them — per-position slots drained in degeneracy-position order —
// regardless of thread count or window size, so consumers that assign ids
// by arrival order reproduce the batch enumerator's ids bit for bit.
#pragma once

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"
#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

struct CliqueStreamOptions {
  /// Cliques smaller than this are not reported (>= 1).
  std::size_t min_size = 1;

  /// Degeneracy positions per enumeration window; 0 picks a default sized
  /// to keep every pool worker busy while bounding resident slots.
  std::size_t window_positions = 0;
};

/// Called once per maximal clique, in deterministic arrival order. The
/// clique is sorted ascending; the visitor may take ownership by moving.
using StreamCliqueVisitor = std::function<void(NodeSet&&)>;

/// Called after each enumeration window has been fully drained (the
/// streaming CPM engine samples its memory gauges here). Optional.
using StreamWindowVisitor = std::function<void(std::size_t windows_done)>;

/// Enumerates all maximal cliques of `g` with size >= options.min_size,
/// invoking `visit` from the calling thread while `pool` enumerates ahead.
/// Returns the number of windows processed.
std::size_t stream_maximal_cliques(const Graph& g, ThreadPool& pool,
                                   const CliqueStreamOptions& options,
                                   const StreamCliqueVisitor& visit,
                                   const StreamWindowVisitor& window_done = {});

}  // namespace kcc
