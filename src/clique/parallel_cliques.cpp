#include "clique/parallel_cliques.h"

#include <vector>

#include "clique/bron_kerbosch_internal.h"
#include "clique/enumerator.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace kcc {
namespace clique::detail {

std::vector<NodeSet> collect_parallel(const EnumContext& ctx,
                                      ThreadPool& pool) {
  KCC_SPAN("clique/parallel_enumerate");
  const std::size_t n = ctx.g.num_nodes();
  // One batch per ordering position; tasks never share slots, so no locking
  // is needed and the merge order is scheduling-independent. Subproblems are
  // claimed dynamically because their costs are wildly uneven (a hub's
  // subtree can outweigh thousands of stubs).
  std::vector<CliqueBatch> slots(n);
  std::vector<SubproblemScratch> scratch(
      std::max<std::size_t>(pool.thread_count(), 1));

  parallel_for_dynamic(
      pool, n, /*grain=*/16,
      [&](std::size_t worker, std::size_t begin, std::size_t end) {
        SubproblemScratch& s = scratch[worker];
        for (std::size_t pos = begin; pos < end; ++pos) {
          CliqueBatch& slot = slots[pos];
          auto into_slot = [&slot](std::span<const NodeId> clique) {
            slot.add(clique);
          };
          const CliqueSinkRef sink(into_slot);
          enumerate_vertex_subproblem(ctx, pos, s, sink);
        }
      });

  std::size_t total = 0;
  for (const CliqueBatch& slot : slots) total += slot.size();
  std::vector<NodeSet> out;
  out.reserve(total);
  {
    KCC_SPAN("clique/merge_slots");
    for (const CliqueBatch& slot : slots) {
      slot.for_each([&](std::span<const NodeId> clique) {
        out.emplace_back(clique.begin(), clique.end());
      });
    }
  }
  KCC_LOG(kDebug) << "parallel_maximal_cliques: " << out.size()
                  << " cliques from " << n << " subproblems on "
                  << pool.thread_count() << " threads";
  return out;
}

}  // namespace clique::detail

std::vector<NodeSet> parallel_maximal_cliques(const Graph& g, ThreadPool& pool,
                                              std::size_t min_size) {
  clique::Options options;
  options.min_size = min_size;
  return clique::Enumerator(g, options).collect(pool);
}

}  // namespace kcc
