#include "clique/parallel_cliques.h"

#include <algorithm>

#include "clique/bron_kerbosch_internal.h"
#include "graph/degeneracy.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace kcc {

std::vector<NodeSet> parallel_maximal_cliques(const Graph& g, ThreadPool& pool,
                                              std::size_t min_size) {
  KCC_SPAN("clique/parallel_enumerate");
  const DegeneracyResult deg = degeneracy_order(g);
  const std::size_t n = g.num_nodes();
  // One result slot per ordering position; tasks never share slots, so no
  // locking is needed and the merge order is scheduling-independent.
  std::vector<std::vector<NodeSet>> slots(n);

  parallel_for(pool, n, [&](std::size_t pos) {
    const NodeId v = deg.order[pos];
    auto& slot = slots[pos];
    enumerate_vertex_subproblem(
        g, deg, v,
        [&](const NodeSet& clique) {
          NodeSet sorted = clique;
          std::sort(sorted.begin(), sorted.end());
          slot.push_back(std::move(sorted));
        },
        min_size);
  });

  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  std::vector<NodeSet> out;
  out.reserve(total);
  {
    KCC_SPAN("clique/merge_slots");
    for (auto& slot : slots) {
      for (auto& clique : slot) out.push_back(std::move(clique));
    }
  }
  KCC_LOG(kDebug) << "parallel_maximal_cliques: " << out.size()
                  << " cliques from " << n << " subproblems on "
                  << pool.thread_count() << " threads";
  return out;
}

}  // namespace kcc
