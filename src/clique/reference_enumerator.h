// Brute-force clique enumerators used as test oracles.
//
// These are exponential-time reference implementations restricted to small
// graphs; unit and property tests cross-check Bron–Kerbosch and the CPM
// engine against them.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// All maximal cliques by subset enumeration. Requires g.num_nodes() <= 24.
/// Output is sorted lexicographically for stable comparison.
std::vector<NodeSet> reference_maximal_cliques(const Graph& g);

/// All k-cliques (complete subgraphs of exactly k nodes) by ordered
/// extension. Exponential in the worst case; intended for small test graphs,
/// and used by the reference CPM implementation.
std::vector<NodeSet> all_k_cliques(const Graph& g, std::size_t k);

}  // namespace kcc
