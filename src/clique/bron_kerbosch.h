// Maximal-clique enumeration: Bron–Kerbosch with Tomita pivoting over a
// degeneracy ordering (Eppstein–Löffler–Strash).
//
// This is the substrate of the Clique Percolation Method: the paper reports
// 2,730,916 maximal cliques in its AS topology with 88 % of sizes in
// [18:28]; all k-clique communities are derived from the maximal-clique set
// (see cpm/cpm.h for why that is sound).
//
// DEPRECATED INTERFACE. The std::function-based entry points below are thin
// wrappers kept for source compatibility; the enumeration itself lives
// behind clique::Enumerator (clique/enumerator.h), which adds the
// sparse/bitset backend knob and the allocation-free CliqueSink reporting
// path. New code should construct an Enumerator; see docs/ALGORITHMS.md for
// the migration recipe.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// Visitor invoked once per maximal clique. The referenced set is sorted and
/// only valid for the duration of the call.
/// Deprecated: prefer a CliqueSink callable taking std::span<const NodeId>
/// (clique/enumerator.h) — no std::function indirection on the hot path.
using CliqueVisitor = std::function<void(const NodeSet&)>;

/// Enumerates every maximal clique of `g` with at least `min_size` nodes.
/// Isolated nodes are size-1 maximal cliques. The visit order is
/// deterministic (outer loop follows the degeneracy ordering).
void for_each_maximal_clique(const Graph& g, const CliqueVisitor& visit,
                             std::size_t min_size = 1);

/// Convenience wrapper collecting the cliques. Each clique is sorted; the
/// list order is deterministic.
std::vector<NodeSet> maximal_cliques(const Graph& g, std::size_t min_size = 1);

/// Size of the largest clique in `g` (0 for the empty graph). Runs the
/// enumerator with aggressive size pruning.
std::size_t maximum_clique_size(const Graph& g);

}  // namespace kcc
