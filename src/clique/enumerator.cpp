#include "clique/enumerator.h"

#include <algorithm>

#include "clique/bron_kerbosch_internal.h"
#include "common/error.h"

namespace kcc::clique {
namespace {

// Hub-fallback default: 2048 members cap the per-worker row blocks at
// 2048^2 bits = 512 KiB, comfortably inside L2 on the target machines.
constexpr std::size_t kDefaultBitsetMaxUniverse = 2048;

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kSparse:
      return "sparse";
    case Backend::kBitset:
      return "bitset";
  }
  return "unknown";
}

Backend parse_backend(const std::string& name) {
  if (name == "auto") return Backend::kAuto;
  if (name == "sparse") return Backend::kSparse;
  if (name == "bitset") return Backend::kBitset;
  throw Error("unknown clique backend '" + name + "' (auto|sparse|bitset)");
}

Enumerator::Enumerator(const Graph& g, Options options)
    : g_(g), options_(options), resolved_(options.backend),
      deg_(degeneracy_order(g)) {
  require(options_.min_size >= 1, "clique::Enumerator: min_size must be >= 1");
  if (options_.bitset_max_universe == 0) {
    options_.bitset_max_universe = kDefaultBitsetMaxUniverse;
  }
  if (resolved_ == Backend::kAuto) {
    // Near-treelike graphs (degeneracy < 3 means no subproblem holds more
    // than a couple of candidates) gain nothing from building bit rows;
    // everything denser does. This also keeps `auto` a genuinely distinct
    // point in the differential matrix on real topologies.
    resolved_ =
        deg_.degeneracy >= 3 ? Backend::kBitset : Backend::kSparse;
  }
  if (resolved_ == Backend::kBitset) {
    bits_ = std::make_unique<BitGraph>(g_, deg_);
  }
}

Enumerator::~Enumerator() = default;

namespace {

detail::EnumContext make_context(const Graph& g, const DegeneracyResult& deg,
                                 const BitGraph* bits,
                                 const Options& options) {
  detail::EnumContext ctx{g, deg};
  ctx.bits = bits;
  ctx.min_size = options.min_size;
  ctx.bitset_max_universe = options.bitset_max_universe;
  return ctx;
}

}  // namespace

void Enumerator::for_each_ref(const CliqueSinkRef& sink) const {
  detail::enumerate_sequential(
      make_context(g_, deg_, bits_.get(), options_), sink);
}

std::vector<NodeSet> Enumerator::collect() const {
  std::vector<NodeSet> out;
  for_each([&](std::span<const NodeId> clique) {
    out.emplace_back(clique.begin(), clique.end());
  });
  return out;
}

std::vector<NodeSet> Enumerator::collect(ThreadPool& pool) const {
  return detail::collect_parallel(
      make_context(g_, deg_, bits_.get(), options_), pool);
}

std::size_t Enumerator::stream_ref(ThreadPool& pool, const CliqueSinkRef& sink,
                                   const WindowFn& window_done) const {
  std::size_t window = options_.window_positions;
  if (window == 0) {
    // Enough positions that every worker gets several chunks per window,
    // small enough that two windows of slots stay a modest fraction of the
    // full clique table on large graphs.
    window = std::clamp<std::size_t>(pool.thread_count() * 256, 1024, 16384);
  }
  return detail::stream_enumerate(
      make_context(g_, deg_, bits_.get(), options_), pool, window, sink,
      window_done);
}

}  // namespace kcc::clique
