// Parallel maximal-clique enumeration.
//
// Each degeneracy-ordered vertex subproblem is independent (see
// bron_kerbosch_internal.h), so subproblems are distributed over a thread
// pool and per-task results merged in ordering position — the output is
// identical to the sequential enumerator regardless of thread count. This
// mirrors the first stage of the paper's Lightweight Parallel CPM, which
// needed 93 hours on 48 cores for the April-2010 topology.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// Enumerates maximal cliques of size >= min_size using `pool`.
/// Deterministic: output equals maximal_cliques(g, min_size).
std::vector<NodeSet> parallel_maximal_cliques(const Graph& g, ThreadPool& pool,
                                              std::size_t min_size = 1);

}  // namespace kcc
