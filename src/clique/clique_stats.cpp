#include "clique/clique_stats.h"

#include <algorithm>

namespace kcc {

double CliqueStats::fraction_in_range(std::size_t lo, std::size_t hi) const {
  if (count == 0) return 0.0;
  std::size_t in_range = 0;
  for (std::size_t s = lo; s <= hi && s < histogram.size(); ++s) {
    in_range += histogram[s];
  }
  return static_cast<double>(in_range) / static_cast<double>(count);
}

CliqueStats compute_clique_stats(const std::vector<NodeSet>& cliques) {
  CliqueStats s;
  s.count = cliques.size();
  if (cliques.empty()) return s;
  std::size_t total = 0;
  s.min_size = cliques.front().size();
  for (const auto& c : cliques) {
    s.min_size = std::min(s.min_size, c.size());
    s.max_size = std::max(s.max_size, c.size());
    total += c.size();
    if (c.size() >= s.histogram.size()) s.histogram.resize(c.size() + 1, 0);
    ++s.histogram[c.size()];
  }
  s.mean_size = static_cast<double>(total) / static_cast<double>(s.count);
  return s;
}

}  // namespace kcc
