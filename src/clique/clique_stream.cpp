#include "clique/clique_stream.h"

#include <algorithm>
#include <vector>

#include "clique/bron_kerbosch_internal.h"
#include "common/error.h"
#include "graph/degeneracy.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace kcc {
namespace {

// One window's enumeration state: a contiguous range of degeneracy
// positions and their per-position result slots. Tasks never share slots,
// so the window needs no locking and its drain order is
// scheduling-independent.
struct Window {
  std::size_t first = 0;                   // first degeneracy position
  std::vector<std::vector<NodeSet>> slots;  // one per position in range
};

void launch_window(const Graph& g, const DegeneracyResult& deg,
                   std::size_t min_size, std::size_t first, std::size_t last,
                   Window& window, TaskGroup& group) {
  window.first = first;
  window.slots.assign(last - first, {});
  // Chunked submission: a handful of jobs per worker keeps load balanced
  // without paying one std::function per vertex subproblem.
  const std::size_t count = last - first;
  const std::size_t num_jobs =
      std::min(count, std::max<std::size_t>(group.pool().thread_count() * 4, 1));
  const std::size_t chunk = (count + num_jobs - 1) / num_jobs;
  for (std::size_t j = 0; j < num_jobs; ++j) {
    const std::size_t lo = first + j * chunk;
    const std::size_t hi = std::min(last, lo + chunk);
    if (lo >= hi) break;
    group.run([&g, &deg, min_size, lo, hi, &window] {
      for (std::size_t pos = lo; pos < hi; ++pos) {
        auto& slot = window.slots[pos - window.first];
        enumerate_vertex_subproblem(
            g, deg, deg.order[pos],
            [&](const NodeSet& clique) {
              NodeSet sorted = clique;
              std::sort(sorted.begin(), sorted.end());
              slot.push_back(std::move(sorted));
            },
            min_size);
      }
    });
  }
}

}  // namespace

std::size_t stream_maximal_cliques(const Graph& g, ThreadPool& pool,
                                   const CliqueStreamOptions& options,
                                   const StreamCliqueVisitor& visit,
                                   const StreamWindowVisitor& window_done) {
  require(options.min_size >= 1,
          "stream_maximal_cliques: min_size must be >= 1");
  KCC_SPAN("clique/stream_enumerate");
  const DegeneracyResult deg = degeneracy_order(g);
  const std::size_t n = g.num_nodes();
  std::size_t window = options.window_positions;
  if (window == 0) {
    // Enough positions that every worker gets several chunks per window,
    // small enough that two windows of slots stay a modest fraction of the
    // full clique table on large graphs.
    window = std::clamp<std::size_t>(pool.thread_count() * 256, 1024, 16384);
  }
  const std::size_t num_windows = n == 0 ? 0 : (n + window - 1) / window;

  Window buffers[2];
  TaskGroup groups[2] = {TaskGroup(pool), TaskGroup(pool)};
  auto launch = [&](std::size_t w) {
    const std::size_t first = w * window;
    launch_window(g, deg, options.min_size, first, std::min(n, first + window),
                  buffers[w % 2], groups[w % 2]);
  };

  if (num_windows > 0) launch(0);
  for (std::size_t w = 0; w < num_windows; ++w) {
    if (w + 1 < num_windows) launch(w + 1);  // enumerate ahead
    groups[w % 2].wait();
    Window& current = buffers[w % 2];
    for (auto& slot : current.slots) {
      for (auto& clique : slot) visit(std::move(clique));
    }
    current.slots.clear();
    current.slots.shrink_to_fit();
    if (window_done) window_done(w + 1);
  }
  KCC_LOG(kDebug) << "stream_maximal_cliques: " << n << " subproblems in "
                  << num_windows << " windows of " << window << " on "
                  << pool.thread_count() << " threads";
  return num_windows;
}

}  // namespace kcc
