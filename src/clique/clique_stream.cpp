#include "clique/clique_stream.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "clique/bron_kerbosch_internal.h"
#include "clique/enumerator.h"
#include "common/error.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace kcc {
namespace clique::detail {
namespace {

// One window's enumeration state: a contiguous range of degeneracy
// positions, their per-position clique batches, and the self-scheduling
// cursor its jobs claim ranges from. Jobs never share slots, so the window
// needs no locking beyond the cursor and its drain order is
// scheduling-independent. Scratch buffers are per job *and* per window —
// the two in-flight windows may enumerate concurrently (window w's last
// jobs still running while window w+1's begin), so they must not share.
struct StreamWindow {
  std::size_t first = 0;  // first degeneracy position
  std::size_t count = 0;  // positions in this window
  std::vector<CliqueBatch> slots;
  std::vector<SubproblemScratch> scratch;
  std::atomic<std::size_t> cursor{0};
};

void launch_window(const EnumContext& ctx, std::size_t first, std::size_t last,
                   StreamWindow& window, TaskGroup& group) {
  window.first = first;
  window.count = last - first;
  window.slots.assign(window.count, {});
  window.cursor.store(0, std::memory_order_relaxed);
  // Small grain: within a window, subproblem costs vary by orders of
  // magnitude, and a stalled window delays the whole drain pipeline.
  constexpr std::size_t kGrain = 4;
  const std::size_t ranges = (window.count + kGrain - 1) / kGrain;
  const std::size_t num_jobs = std::max<std::size_t>(
      1, std::min(group.pool().thread_count(), ranges));
  if (window.scratch.size() < num_jobs) window.scratch.resize(num_jobs);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    group.run([&ctx, &window, j] {
      SubproblemScratch& scratch = window.scratch[j];
      for (;;) {
        const std::size_t begin =
            window.cursor.fetch_add(kGrain, std::memory_order_relaxed);
        if (begin >= window.count) return;
        const std::size_t end = std::min(window.count, begin + kGrain);
        for (std::size_t off = begin; off < end; ++off) {
          CliqueBatch& slot = window.slots[off];
          auto into_slot = [&slot](std::span<const NodeId> clique) {
            slot.add(clique);
          };
          const CliqueSinkRef sink(into_slot);
          enumerate_vertex_subproblem(ctx, window.first + off, scratch, sink);
        }
      }
    });
  }
}

}  // namespace

std::size_t stream_enumerate(const EnumContext& ctx, ThreadPool& pool,
                             std::size_t window_positions,
                             const CliqueSinkRef& sink,
                             const WindowFn& window_done) {
  require(window_positions >= 1,
          "stream_enumerate: window_positions must be >= 1");
  KCC_SPAN("clique/stream_enumerate");
  const std::size_t n = ctx.g.num_nodes();
  const std::size_t window = window_positions;
  const std::size_t num_windows = n == 0 ? 0 : (n + window - 1) / window;

  StreamWindow buffers[2];
  TaskGroup groups[2] = {TaskGroup(pool), TaskGroup(pool)};
  auto launch = [&](std::size_t w) {
    const std::size_t first = w * window;
    launch_window(ctx, first, std::min(n, first + window), buffers[w % 2],
                  groups[w % 2]);
  };

  if (num_windows > 0) launch(0);
  for (std::size_t w = 0; w < num_windows; ++w) {
    if (w + 1 < num_windows) launch(w + 1);  // enumerate ahead
    groups[w % 2].wait();
    StreamWindow& current = buffers[w % 2];
    for (const CliqueBatch& slot : current.slots) {
      slot.for_each(sink);
    }
    current.slots.clear();
    current.slots.shrink_to_fit();
    if (window_done) window_done(w + 1);
  }
  KCC_LOG(kDebug) << "stream_maximal_cliques: " << n << " subproblems in "
                  << num_windows << " windows of " << window << " on "
                  << pool.thread_count() << " threads";
  return num_windows;
}

}  // namespace clique::detail

std::size_t stream_maximal_cliques(const Graph& g, ThreadPool& pool,
                                   const CliqueStreamOptions& options,
                                   const StreamCliqueVisitor& visit,
                                   const StreamWindowVisitor& window_done) {
  require(options.min_size >= 1,
          "stream_maximal_cliques: min_size must be >= 1");
  clique::Options opts;
  opts.min_size = options.min_size;
  opts.window_positions = options.window_positions;
  const clique::Enumerator e(g, opts);
  return e.stream(
      pool,
      [&](std::span<const NodeId> clique) {
        visit(NodeSet(clique.begin(), clique.end()));
      },
      window_done ? clique::WindowFn(window_done) : clique::WindowFn{});
}

}  // namespace kcc
