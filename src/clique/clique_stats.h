// Statistics over a maximal-clique set.
//
// Reproduces the paper's Sec. 3 characterisation: "2,730,916 maximal
// k-cliques, 88 % of which have k values in the range [18:28]".
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace kcc {

struct CliqueStats {
  std::size_t count = 0;           // number of maximal cliques
  std::size_t min_size = 0;        // smallest clique size (0 when empty)
  std::size_t max_size = 0;        // largest clique size
  double mean_size = 0.0;
  /// histogram[s] = number of maximal cliques of size s
  /// (indices 0 and 1 unused unless the graph has isolated nodes).
  std::vector<std::size_t> histogram;

  /// Fraction of cliques with size in [lo, hi] inclusive.
  double fraction_in_range(std::size_t lo, std::size_t hi) const;
};

CliqueStats compute_clique_stats(const std::vector<NodeSet>& cliques);

}  // namespace kcc
