// Shared report rendering for examples and experiment harnesses.
#pragma once

#include <iosfwd>

#include "analysis/pipeline.h"

namespace kcc {

/// Dataset dimensions + tag counts (paper Sec. 2 summary).
void print_ecosystem_summary(std::ostream& os, const AsEcosystem& eco);

/// Per-k table: community count, main size, parallel sizes, density, ODF
/// (the Fig. 4.1/4.3/4.4 series in one table).
void print_level_table(std::ostream& os, const PipelineResult& result);

/// Crown/trunk/root band summary (Sec. 4.1-4.3).
void print_band_summary(std::ostream& os, const PipelineResult& result);

/// Overlap-fraction study (Sec. 4).
void print_overlap_summary(std::ostream& os, const PipelineResult& result);

}  // namespace kcc
