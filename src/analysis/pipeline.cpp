#include "analysis/pipeline.h"

#include "common/error.h"
#include "common/timer.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace kcc {

const CommunityMetrics& PipelineResult::metrics_of(std::size_t k,
                                                   CommunityId id) const {
  require(cpm.has_k(k), "PipelineResult::metrics_of: k out of range");
  const auto& level = metrics_by_k[k - cpm.min_k];
  require(id < level.size(), "PipelineResult::metrics_of: id out of range");
  return level[id];
}

PipelineResult analyze_ecosystem(AsEcosystem eco, const cpm::Options& cpm_opts) {
  KCC_SPAN("pipeline/analyze");
  Timer stage_timer;  // lap() per stage keeps one timer across the sequence
  PipelineResult result;
  result.eco = std::move(eco);
  {
    KCC_SPAN("pipeline/cpm");
    // The sweep engine emits the nesting tree in the same pass; other
    // engines reconstruct it post-hoc inside the facade.
    cpm::Result engine_result =
        cpm::Engine(cpm_opts).run(result.eco.topology.graph);
    result.cpm = std::move(engine_result.cpm);
    require(result.cpm.max_k >= result.cpm.min_k,
            "analyze_ecosystem: the graph has no cliques to percolate");
    require(engine_result.has_tree,
            "analyze_ecosystem: the engine produced no community tree");
    result.tree = std::move(engine_result.tree);
    result.level_stats = tree_level_stats(result.tree);
  }
  KCC_LOG(kInfo) << "pipeline: cpm+tree ("
                 << cpm_opts.engine << " engine) done in "
                 << stage_timer.lap() << "s ("
                 << result.cpm.cliques.size() << " cliques, k in ["
                 << result.cpm.min_k << ", " << result.cpm.max_k << "], "
                 << result.tree.nodes().size() << " communities)";
  {
    KCC_SPAN("pipeline/metrics");
    result.metrics_by_k.reserve(result.cpm.by_k.size());
    for (const CommunitySet& set : result.cpm.by_k) {
      result.metrics_by_k.push_back(
          compute_metrics(result.eco.topology.graph, set));
    }
  }
  KCC_LOG(kInfo) << "pipeline: metrics done in " << stage_timer.lap() << "s";
  {
    KCC_SPAN("pipeline/profiles");
    result.profiles = profile_communities(result.cpm, result.tree,
                                          result.eco.ixps, result.eco.geo);
  }
  {
    KCC_SPAN("pipeline/bands");
    result.bands = derive_bands(result.profiles, result.cpm.min_k,
                                result.cpm.max_k);
  }
  {
    KCC_SPAN("pipeline/overlaps");
    result.overlaps =
        overlap_stats(result.cpm, main_ids_by_k(result.tree));
  }
  KCC_LOG(kInfo) << "pipeline: tagging/overlaps done in " << stage_timer.lap()
                 << "s";
  return result;
}

PipelineResult run_pipeline(const PipelineOptions& options) {
  AsEcosystem eco;
  {
    KCC_SPAN("pipeline/generate");
    eco = generate_ecosystem(options.synth);
  }
  return analyze_ecosystem(std::move(eco), options.cpm);
}

}  // namespace kcc
