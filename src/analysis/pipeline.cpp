#include "analysis/pipeline.h"

#include "common/error.h"

namespace kcc {

const CommunityMetrics& PipelineResult::metrics_of(std::size_t k,
                                                   CommunityId id) const {
  require(cpm.has_k(k), "PipelineResult::metrics_of: k out of range");
  const auto& level = metrics_by_k[k - cpm.min_k];
  require(id < level.size(), "PipelineResult::metrics_of: id out of range");
  return level[id];
}

PipelineResult analyze_ecosystem(AsEcosystem eco, const CpmOptions& cpm_opts) {
  PipelineResult result;
  result.eco = std::move(eco);
  result.cpm = run_cpm(result.eco.topology.graph, cpm_opts);
  require(result.cpm.max_k >= result.cpm.min_k,
          "analyze_ecosystem: the graph has no cliques to percolate");
  result.tree = CommunityTree::build(result.cpm);
  result.level_stats = tree_level_stats(result.tree);
  result.metrics_by_k.reserve(result.cpm.by_k.size());
  for (const CommunitySet& set : result.cpm.by_k) {
    result.metrics_by_k.push_back(
        compute_metrics(result.eco.topology.graph, set));
  }
  result.profiles = profile_communities(result.cpm, result.tree,
                                        result.eco.ixps, result.eco.geo);
  result.bands = derive_bands(result.profiles, result.cpm.min_k,
                              result.cpm.max_k);
  result.overlaps =
      overlap_stats(result.cpm, main_ids_by_k(result.tree));
  return result;
}

PipelineResult run_pipeline(const PipelineOptions& options) {
  return analyze_ecosystem(generate_ecosystem(options.synth), options.cpm);
}

}  // namespace kcc
