// Temporal community tracking — a library extension beyond the paper.
//
// The paper analyses a single April-2010 snapshot; its related work ([22],
// Palla et al. 2007) studies how communities evolve. This module generates
// a sequence of perturbed ecosystem snapshots (AS churn: stub birth/death,
// provider rewiring, IXP membership churn) and tracks k-clique communities
// across them by best-Jaccard matching, classifying the standard events:
// survival, growth/shrinkage, birth, death.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "synth/as_topology.h"

namespace kcc {

struct ChurnParams {
  /// Fraction of stub ASes whose provider set is resampled per step.
  double stub_rewire_fraction = 0.05;
  /// Fraction of peering (non-hierarchy) edges dropped per step.
  double edge_drop_fraction = 0.02;
  /// Number of brand-new multi-homed stub attachment edges added per step.
  std::size_t new_edges = 100;
};

/// Applies one churn step to `topology`, returning the next snapshot's
/// graph. Node count is preserved (AS death is modelled as edge loss).
/// Deterministic in (input, params, seed).
Graph churn_step(const Graph& topology, const ChurnParams& params,
                 std::uint64_t seed);

/// Community lifecycle events between two consecutive snapshots.
struct CommunityEvent {
  enum class Kind { kSurvived, kBorn, kDied };
  Kind kind = Kind::kSurvived;
  int from_index = -1;  // community index in the earlier snapshot
  int to_index = -1;    // community index in the later snapshot
  double jaccard = 0.0;
  std::ptrdiff_t size_change = 0;
};

/// Matches communities (sorted node sets) across two snapshots. A pair is a
/// survival when it is the mutual best match with Jaccard >= `min_jaccard`;
/// unmatched earlier communities die, unmatched later ones are born.
std::vector<CommunityEvent> match_communities(
    const std::vector<NodeSet>& before, const std::vector<NodeSet>& after,
    double min_jaccard = 0.3);

/// Full tracking run: T snapshots of k-clique communities at order k.
struct TemporalSummary {
  std::size_t steps = 0;
  std::size_t survivals = 0;
  std::size_t births = 0;
  std::size_t deaths = 0;
  double mean_survivor_jaccard = 0.0;
  /// Per-step community counts (size steps + 1).
  std::vector<std::size_t> community_counts;
};

TemporalSummary track_communities(const Graph& initial, std::size_t k,
                                  std::size_t steps,
                                  const ChurnParams& params,
                                  std::uint64_t seed);

}  // namespace kcc
