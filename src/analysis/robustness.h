// Robustness of the community structure under node removal — a library
// extension (the k-core AS studies the paper cites, e.g. Carmi et al. [6],
// run exactly this kind of attack/failure analysis).
//
// Two removal policies:
//  * targeted — remove the highest-degree ASes first (attack on hubs /
//    big IXP participants);
//  * random — uniform failures.
// After each removal step the k-clique community structure is recomputed
// and its key aggregates recorded, showing how the crown collapses under
// targeted attack long before random failure affects it.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

enum class RemovalPolicy { kTargetedByDegree, kRandom };

struct RobustnessPoint {
  double removed_fraction = 0.0;
  std::size_t nodes_left = 0;
  std::size_t edges_left = 0;
  std::size_t max_k = 0;              // largest community order remaining
  std::size_t total_communities = 0;  // over all k
  std::size_t giant_component = 0;    // largest connected component size
};

struct RobustnessOptions {
  RemovalPolicy policy = RemovalPolicy::kTargetedByDegree;
  /// Removal fractions to evaluate (of the original node count). 0 must not
  /// be included; the baseline is reported separately by callers if wanted.
  std::vector<double> fractions{0.01, 0.02, 0.05, 0.10};
  std::uint64_t seed = 7;  // used by the random policy
};

/// Evaluates the community structure after cumulative node removals.
/// Returned points are ordered as `options.fractions`.
std::vector<RobustnessPoint> community_robustness(
    const Graph& g, const RobustnessOptions& options);

}  // namespace kcc
