// k-clique percolation critical point on Erdős–Rényi graphs — the theory
// behind CPM (Derényi, Palla, Vicsek 2005).
//
// For G(n, p), the giant k-clique community appears at
//     p_c(k) = [ (k-1) * n ]^(-1/(k-1)).
// This module sweeps p across p_c and records the relative size of the
// largest k-clique community — a clean scientific validation that the CPM
// engine exhibits the published phase transition. (The paper leans on this
// machinery implicitly: the crown is the supercritical IXP-dense region.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kcc {

/// The Derényi-Palla-Vicsek critical edge probability.
double critical_probability(std::size_t n, std::size_t k);

struct PercolationPoint {
  double p = 0.0;              // edge probability
  double p_over_pc = 0.0;      // p / p_c(k)
  std::size_t communities = 0; // number of k-clique communities
  std::size_t largest = 0;     // largest community size (nodes)
  double largest_fraction = 0.0;  // largest / n
};

struct PercolationSweepOptions {
  std::size_t n = 300;
  std::size_t k = 3;
  /// Multiples of p_c to evaluate.
  std::vector<double> ratios{0.6, 0.8, 1.0, 1.2, 1.6, 2.0};
  std::size_t trials = 3;      // graphs averaged per point
  std::uint64_t seed = 1;
};

/// Sweeps p = ratio * p_c(k) and reports averaged community statistics.
std::vector<PercolationPoint> percolation_sweep(
    const PercolationSweepOptions& options);

}  // namespace kcc
