// One-call analysis pipeline: ecosystem → CPM → tree → metrics → tags.
//
// This is the top-level convenience API the examples and the experiment
// harnesses share; every paper table/figure is a projection of a
// PipelineResult.
#pragma once

#include <vector>

#include "cpm/community.h"
#include "cpm/community_tree.h"
#include "cpm/engine.h"
#include "data/tag_analysis.h"
#include "metrics/community_metrics.h"
#include "metrics/overlap.h"
#include "synth/as_topology.h"

namespace kcc {

struct PipelineOptions {
  SynthParams synth;   // used by run_pipeline (generated input)
  cpm::Options cpm;    // engine selection + k range (sweep by default)
};

struct PipelineResult {
  AsEcosystem eco;
  CpmResult cpm;
  CommunityTree tree;
  std::vector<TreeLevelStats> level_stats;
  std::vector<std::vector<CommunityMetrics>> metrics_by_k;  // aligned with cpm.by_k
  std::vector<CommunityTagProfile> profiles;
  BandThresholds bands;  // derived from the full-share structure
  std::vector<OverlapStatsAtK> overlaps;

  const CommunityMetrics& metrics_of(std::size_t k, CommunityId id) const;
};

/// Generates a synthetic ecosystem and analyses it.
PipelineResult run_pipeline(const PipelineOptions& options);

/// Analyses a pre-built ecosystem (e.g. loaded from disk).
PipelineResult analyze_ecosystem(AsEcosystem eco, const cpm::Options& cpm);

}  // namespace kcc
