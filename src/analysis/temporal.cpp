#include "analysis/temporal.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "cpm/cpm.h"
#include "metrics/similarity.h"

namespace kcc {

Graph churn_step(const Graph& topology, const ChurnParams& params,
                 std::uint64_t seed) {
  require(topology.num_nodes() >= 10, "churn_step: graph too small");
  Rng rng(seed);
  auto edges = topology.edges();

  // Drop a fraction of edges, but never disconnect a degree-1 node: track
  // residual degrees and refuse drops that would strand an endpoint.
  std::vector<std::size_t> degree(topology.num_nodes());
  for (NodeId v = 0; v < topology.num_nodes(); ++v) {
    degree[v] = topology.degree(v);
  }
  std::vector<std::pair<NodeId, NodeId>> kept;
  kept.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    const bool droppable = degree[u] > 1 && degree[v] > 1;
    if (droppable && rng.next_bool(params.edge_drop_fraction)) {
      --degree[u];
      --degree[v];
      continue;
    }
    kept.push_back({u, v});
  }

  // Rewire a fraction of low-degree ("stub-like") nodes: move one of their
  // edges to a random high-degree target.
  const std::size_t rewires = static_cast<std::size_t>(
      params.stub_rewire_fraction * double(topology.num_nodes()));
  // High-degree targets: the top decile.
  std::vector<NodeId> by_degree(topology.num_nodes());
  for (NodeId v = 0; v < topology.num_nodes(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    return topology.degree(a) > topology.degree(b);
  });
  const std::size_t top = std::max<std::size_t>(1, by_degree.size() / 10);
  for (std::size_t i = 0; i < rewires; ++i) {
    const NodeId v =
        static_cast<NodeId>(rng.next_below(topology.num_nodes()));
    const NodeId target = by_degree[rng.next_below(top)];
    if (target != v) kept.push_back({std::min(v, target), std::max(v, target)});
  }

  // Fresh attachment edges (new customers multi-homing).
  for (std::size_t i = 0; i < params.new_edges; ++i) {
    const NodeId v =
        static_cast<NodeId>(rng.next_below(topology.num_nodes()));
    const NodeId target = by_degree[rng.next_below(top)];
    if (target != v) kept.push_back({std::min(v, target), std::max(v, target)});
  }

  return Graph::from_edges(topology.num_nodes(), kept);
}

std::vector<CommunityEvent> match_communities(
    const std::vector<NodeSet>& before, const std::vector<NodeSet>& after,
    double min_jaccard) {
  const auto forward = best_matches(before, after);
  const auto backward = best_matches(after, before);

  std::vector<CommunityEvent> events;
  std::vector<bool> after_matched(after.size(), false);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const BestMatch& match = forward[i];
    const bool mutual =
        match.index >= 0 && match.jaccard >= min_jaccard &&
        backward[static_cast<std::size_t>(match.index)].index ==
            static_cast<int>(i);
    if (mutual) {
      CommunityEvent event;
      event.kind = CommunityEvent::Kind::kSurvived;
      event.from_index = static_cast<int>(i);
      event.to_index = match.index;
      event.jaccard = match.jaccard;
      event.size_change =
          static_cast<std::ptrdiff_t>(after[match.index].size()) -
          static_cast<std::ptrdiff_t>(before[i].size());
      after_matched[match.index] = true;
      events.push_back(event);
    } else {
      CommunityEvent event;
      event.kind = CommunityEvent::Kind::kDied;
      event.from_index = static_cast<int>(i);
      events.push_back(event);
    }
  }
  for (std::size_t j = 0; j < after.size(); ++j) {
    if (!after_matched[j]) {
      CommunityEvent event;
      event.kind = CommunityEvent::Kind::kBorn;
      event.to_index = static_cast<int>(j);
      events.push_back(event);
    }
  }
  return events;
}

TemporalSummary track_communities(const Graph& initial, std::size_t k,
                                  std::size_t steps,
                                  const ChurnParams& params,
                                  std::uint64_t seed) {
  TemporalSummary summary;
  summary.steps = steps;

  auto communities_of = [&](const Graph& g) {
    CpmOptions options;
    options.min_k = std::max<std::size_t>(2, k);
    options.max_k = k;
    const CpmResult result = run_cpm(g, options);
    std::vector<NodeSet> out;
    if (result.has_k(k)) {
      for (const auto& c : result.at(k).communities) out.push_back(c.nodes);
    }
    return out;
  };

  Graph current = initial;
  std::vector<NodeSet> communities = communities_of(current);
  summary.community_counts.push_back(communities.size());

  double jaccard_sum = 0.0;
  for (std::size_t step = 0; step < steps; ++step) {
    current = churn_step(current, params, seed + step + 1);
    std::vector<NodeSet> next = communities_of(current);
    for (const CommunityEvent& event :
         match_communities(communities, next)) {
      switch (event.kind) {
        case CommunityEvent::Kind::kSurvived:
          ++summary.survivals;
          jaccard_sum += event.jaccard;
          break;
        case CommunityEvent::Kind::kBorn:
          ++summary.births;
          break;
        case CommunityEvent::Kind::kDied:
          ++summary.deaths;
          break;
      }
    }
    communities = std::move(next);
    summary.community_counts.push_back(communities.size());
  }
  if (summary.survivals > 0) {
    summary.mean_survivor_jaccard = jaccard_sum / double(summary.survivals);
  }
  return summary;
}

}  // namespace kcc
