#include "analysis/robustness.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "cpm/cpm.h"
#include "graph/graph_algorithms.h"
#include "graph/subgraph.h"

namespace kcc {

std::vector<RobustnessPoint> community_robustness(
    const Graph& g, const RobustnessOptions& options) {
  require(g.num_nodes() > 0, "community_robustness: empty graph");
  for (double f : options.fractions) {
    require(f > 0.0 && f < 1.0,
            "community_robustness: fractions must be in (0, 1)");
  }

  // Removal order shared by all points (cumulative removal).
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  if (options.policy == RemovalPolicy::kTargetedByDegree) {
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
      return a < b;
    });
  } else {
    Rng rng(options.seed);
    rng.shuffle(order);
  }

  std::vector<RobustnessPoint> out;
  for (double fraction : options.fractions) {
    const auto removed_count = static_cast<std::size_t>(
        fraction * double(g.num_nodes()));
    NodeSet survivors;
    std::vector<bool> removed(g.num_nodes(), false);
    for (std::size_t i = 0; i < removed_count; ++i) removed[order[i]] = true;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!removed[v]) survivors.push_back(v);
    }
    const InducedSubgraph sub = induced_subgraph(g, survivors);

    RobustnessPoint point;
    point.removed_fraction = fraction;
    point.nodes_left = sub.graph.num_nodes();
    point.edges_left = sub.graph.num_edges();
    point.giant_component = largest_component(sub.graph).size();
    const CpmResult cpm = run_cpm(sub.graph);
    point.total_communities = cpm.total_communities();
    point.max_k = cpm.max_k >= cpm.min_k ? cpm.max_k : 0;
    out.push_back(point);
  }
  return out;
}

}  // namespace kcc
