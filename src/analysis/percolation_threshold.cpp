#include "analysis/percolation_threshold.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "cpm/cpm.h"
#include "graph/graph.h"

namespace kcc {

double critical_probability(std::size_t n, std::size_t k) {
  require(n >= 2 && k >= 2, "critical_probability: need n >= 2, k >= 2");
  return std::pow(double(k - 1) * double(n), -1.0 / double(k - 1));
}

std::vector<PercolationPoint> percolation_sweep(
    const PercolationSweepOptions& options) {
  require(options.trials >= 1, "percolation_sweep: trials must be >= 1");
  const double pc = critical_probability(options.n, options.k);

  std::vector<PercolationPoint> out;
  Rng rng(options.seed);
  for (double ratio : options.ratios) {
    const double p = std::min(1.0, ratio * pc);
    PercolationPoint point;
    point.p = p;
    point.p_over_pc = ratio;

    double communities_sum = 0.0, largest_sum = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      GraphBuilder builder(options.n);
      for (NodeId i = 0; i < options.n; ++i) {
        for (NodeId j = i + 1; j < options.n; ++j) {
          if (rng.next_bool(p)) builder.add_edge(i, j);
        }
      }
      builder.ensure_nodes(options.n);
      const Graph g = builder.build();

      CpmOptions cpm_options;
      cpm_options.min_k = std::max<std::size_t>(2, options.k);
      cpm_options.max_k = options.k;
      const CpmResult result = run_cpm(g, cpm_options);
      std::size_t communities = 0, largest = 0;
      if (result.has_k(options.k)) {
        communities = result.at(options.k).count();
        for (const Community& c : result.at(options.k).communities) {
          largest = std::max(largest, c.size());
        }
      }
      communities_sum += double(communities);
      largest_sum += double(largest);
    }
    point.communities = static_cast<std::size_t>(
        communities_sum / double(options.trials) + 0.5);
    point.largest = static_cast<std::size_t>(
        largest_sum / double(options.trials) + 0.5);
    point.largest_fraction =
        largest_sum / double(options.trials) / double(options.n);
    out.push_back(point);
  }
  return out;
}

}  // namespace kcc
