#include "analysis/report.h"

#include <ostream>

#include "common/table.h"
#include "data/tags.h"

namespace kcc {

void print_ecosystem_summary(std::ostream& os, const AsEcosystem& eco) {
  const Graph& g = eco.topology.graph;
  os << "AS-level topology: " << g.num_nodes() << " ASes, " << g.num_edges()
     << " connections\n";
  os << "IXP dataset: " << eco.ixps.count() << " IXPs\n";
  os << "Geographical dataset: " << eco.geo.known_node_count()
     << " ASes with at least one country\n\n";

  const IxpTagCounts ixp_counts = count_ixp_tags(eco.ixps, g.num_nodes());
  TextTable ixp_table({"on-IXP", "not-on-IXP"});
  ixp_table.add(ixp_counts.on_ixp, ixp_counts.not_on_ixp);
  os << "IXP tagging (Table 2.1 analogue):\n" << ixp_table << "\n";

  const GeoTagCounts geo_counts = count_geo_tags(eco.geo, g.num_nodes());
  TextTable geo_table({"National", "Continental", "Worldwide", "Unknown"});
  geo_table.add(geo_counts.national, geo_counts.continental,
                geo_counts.worldwide, geo_counts.unknown);
  os << "Geo tagging (Table 2.2 analogue):\n" << geo_table;
}

void print_level_table(std::ostream& os, const PipelineResult& result) {
  TextTable table({"k", "communities", "main size", "largest parallel",
                   "main density", "main ODF"});
  for (std::size_t k = result.cpm.min_k; k <= result.cpm.max_k; ++k) {
    const TreeLevelStats& stats = result.level_stats[k - result.cpm.min_k];
    CommunityId main_id = 0;
    for (int idx : result.tree.level(k)) {
      if (result.tree.nodes()[idx].is_main) {
        main_id = result.tree.nodes()[idx].community_id;
        break;
      }
    }
    const CommunityMetrics& main_metrics = result.metrics_of(k, main_id);
    table.add(k, stats.community_count, stats.main_size,
              stats.largest_parallel_size, fixed(main_metrics.density, 4),
              fixed(main_metrics.avg_odf, 4));
  }
  os << table;
}

void print_band_summary(std::ostream& os, const PipelineResult& result) {
  os << "Derived bands: root k <= " << result.bands.root_max_k
     << ", trunk k <= " << result.bands.trunk_max_k << ", crown above\n";
  TextTable table({"band", "communities", "mean size", "full-share IXP",
                   "country-contained", "mean on-IXP frac"});
  for (const BandSummary& s : summarize_bands(result.profiles, result.bands)) {
    table.add(band_name(s.band), s.community_count, fixed(s.mean_size, 2),
              s.with_full_share_ixp, s.country_contained,
              fixed(s.mean_on_ixp_fraction, 3));
  }
  os << table;
}

void print_overlap_summary(std::ostream& os, const PipelineResult& result) {
  const OverlapAggregate agg = aggregate_parallel_vs_main(result.overlaps);
  os << "Parallel-vs-main overlap fraction: mean over k = "
     << fixed(agg.mean, 3) << ", variance = " << fixed(agg.variance, 3)
     << ", per-k minimum = " << fixed(agg.min, 3) << " (" << agg.k_count
     << " k values with parallel communities)\n";
  std::size_t disjoint = 0;
  for (const auto& s : result.overlaps) disjoint += s.disjoint_from_main;
  os << "Parallel communities sharing no AS with their main community: "
     << disjoint << "\n";
}

}  // namespace kcc
