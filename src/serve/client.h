// Client side of the serve protocol: a blocking unix-socket connection with
// typed helpers for every op, used by `kcc query`, the serve tests and the
// perf_serve benchmark. One Client per thread — the connection is a plain
// fd with no internal locking.
//
// Two usage styles:
//   * request/response helpers (info(), membership(), ...) — one frame out,
//     one frame in; simplest, pays a round trip per query.
//   * pipelining — send_request() N times, then read_response() N times.
//     The server answers in order, so deep pipelines amortize the syscall
//     round trip; perf_serve uses this to saturate a single core.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace kcc::serve {

/// One (k, community id) membership.
struct Membership {
  std::uint32_t k = 0;
  std::uint32_t id = 0;

  bool operator==(const Membership&) const = default;
};

/// One ancestry entry: the community and its node count.
struct AncestryEntry {
  std::uint32_t k = 0;
  std::uint32_t id = 0;
  std::uint32_t size = 0;

  bool operator==(const AncestryEntry&) const = default;
};

/// kOverlap answer: deepest k where the two nodes share a community.
struct Overlap {
  std::uint32_t max_k = 0;  // 0 = the nodes never share a community
  std::uint32_t community = 0;
  std::uint32_t count = 0;  // co-memberships at max_k

  bool operator==(const Overlap&) const = default;
};

/// kInfo answer.
struct ServerInfo {
  std::uint64_t min_k = 0;
  std::uint64_t max_k = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_communities = 0;
  bool has_tree = false;
  std::uint8_t exactness = 0;
  std::string engine;
};

class Client {
 public:
  /// Connects to the daemon's unix socket. Retries for up to
  /// `timeout_seconds` while the socket does not exist / refuses — covers
  /// the daemon-still-starting window in tests. Throws kcc::Error on
  /// timeout.
  explicit Client(const std::string& socket_path,
                  double timeout_seconds = 5.0);
  ~Client();

  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // -- one-shot helpers (send + receive; throw kcc::Error on a non-kOk
  //    status except where the signature says otherwise) -------------------
  ServerInfo info();
  std::vector<Membership> membership(std::uint32_t node, std::uint32_t k = 0);
  std::vector<std::uint32_t> community(std::uint32_t k, std::uint32_t id);
  std::vector<AncestryEntry> ancestry(std::uint32_t k, std::uint32_t id);
  std::optional<Membership> lca(std::uint32_t k1, std::uint32_t id1,
                                std::uint32_t k2, std::uint32_t id2);
  Overlap overlap(std::uint32_t u, std::uint32_t v);
  /// Returns the server's status byte (kOk, or kShuttingDown when remote
  /// shutdown is disabled) instead of throwing.
  Status request_shutdown();
  /// Asks the daemon to remap its snapshot. Returns the status byte: kOk,
  /// kUnsupported when remote reload is disabled, kBadRequest when the new
  /// snapshot failed to load (daemon keeps serving the old one).
  Status request_reload();

  // -- pipelining -----------------------------------------------------------
  void send_request(const std::vector<std::uint8_t>& payload);
  /// Reads the next response frame (status byte + payload).
  std::vector<std::uint8_t> read_response();

  int fd() const { return fd_; }

 private:
  /// send_request + read_response + require(kOk), returning a Reader-ready
  /// payload without the status byte.
  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request);

  int fd_ = -1;
};

// -- request encoders (shared by the helpers above and by pipelining
//    callers like perf_serve) ------------------------------------------------
std::vector<std::uint8_t> encode_info();
std::vector<std::uint8_t> encode_membership(std::uint32_t node,
                                            std::uint32_t k = 0);
std::vector<std::uint8_t> encode_community(std::uint32_t k, std::uint32_t id);
std::vector<std::uint8_t> encode_ancestry(std::uint32_t k, std::uint32_t id);
std::vector<std::uint8_t> encode_lca(std::uint32_t k1, std::uint32_t id1,
                                     std::uint32_t k2, std::uint32_t id2);
std::vector<std::uint8_t> encode_overlap(std::uint32_t u, std::uint32_t v);
std::vector<std::uint8_t> encode_shutdown();
std::vector<std::uint8_t> encode_reload();

}  // namespace kcc::serve
