#include "serve/protocol.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace kcc::serve {

bool read_exact(int fd, void* buf, std::size_t bytes) {
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::read(fd, out + done, bytes - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("serve: read failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF between frames
      throw Error("serve: peer closed mid-frame (" + std::to_string(done) +
                  " of " + std::to_string(bytes) + " bytes)");
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t bytes) {
  const auto* in = static_cast<const std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n = ::write(fd, in + done, bytes - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("serve: write failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

void write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  std::uint8_t prefix[4];
  const auto bytes = static_cast<std::uint32_t>(payload.size());
  std::memcpy(prefix, &bytes, 4);  // little-endian host (see snapshot.cpp)
  // One writev-style buffer would save a syscall; a 4-byte + payload pair of
  // writes is kept for simplicity — clients batch frames anyway.
  std::vector<std::uint8_t> framed;
  framed.reserve(4 + payload.size());
  framed.insert(framed.end(), prefix, prefix + 4);
  framed.insert(framed.end(), payload.begin(), payload.end());
  write_all(fd, framed.data(), framed.size());
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_bytes) {
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, 4)) return false;
  std::uint32_t bytes = 0;
  std::memcpy(&bytes, prefix, 4);
  require(bytes <= max_bytes,
          "serve: frame of " + std::to_string(bytes) +
              " bytes exceeds the limit of " + std::to_string(max_bytes));
  payload.resize(bytes);
  if (bytes > 0) {
    if (!read_exact(fd, payload.data(), bytes)) {
      throw Error("serve: peer closed between length prefix and payload");
    }
  }
  return true;
}

}  // namespace kcc::serve
