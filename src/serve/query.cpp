#include "serve/query.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

namespace kcc::serve {
namespace {

void reply_error(std::vector<std::uint8_t>& response, Status status,
                 const std::string& message) {
  response.clear();
  put_u8(response, static_cast<std::uint8_t>(status));
  response.insert(response.end(), message.begin(), message.end());
}

void reply_ok(std::vector<std::uint8_t>& response) {
  put_u8(response, static_cast<std::uint8_t>(Status::kOk));
}

void do_info(const snapshot::SnapshotView& view,
             std::vector<std::uint8_t>& response) {
  reply_ok(response);
  put_u64(response, view.min_k());
  put_u64(response, view.max_k());
  put_u64(response, view.num_nodes());
  put_u64(response, view.num_communities());
  put_u8(response, view.has_tree() ? 1 : 0);
  put_u8(response, static_cast<std::uint8_t>(view.exactness()));
  const auto name = view.engine_name();
  put_u16(response, static_cast<std::uint16_t>(name.size()));
  response.insert(response.end(), name.begin(), name.end());
}

void do_membership(const snapshot::SnapshotView& view, Reader& in,
                   std::vector<std::uint8_t>& response) {
  const std::uint32_t node = in.u32();
  const std::uint32_t k = in.u32();
  require(in.remaining() == 0, "membership: trailing bytes");
  require(k == 0 || view.has_k(k),
          "membership: k=" + std::to_string(k) + " outside the snapshot");
  reply_ok(response);
  const auto postings = view.postings(node);
  std::uint32_t count = 0;
  const std::size_t count_at = response.size();
  put_u32(response, 0);  // patched below
  for (const snapshot::Posting& p : postings) {
    if (k != 0 && p.k != k) continue;
    put_u32(response, p.k);
    put_u32(response, p.community);
    ++count;
  }
  std::memcpy(response.data() + count_at, &count, 4);
}

void do_community(const snapshot::SnapshotView& view, Reader& in,
                  std::vector<std::uint8_t>& response) {
  const std::uint32_t k = in.u32();
  const std::uint32_t id = in.u32();
  require(in.remaining() == 0, "community: trailing bytes");
  const auto nodes = view.community_nodes(k, id);  // validates (k, id)
  reply_ok(response);
  put_u32(response, static_cast<std::uint32_t>(nodes.size()));
  for (std::uint32_t v : nodes) put_u32(response, v);
}

void do_ancestry(const snapshot::SnapshotView& view, Reader& in,
                 std::vector<std::uint8_t>& response) {
  std::uint32_t k = in.u32();
  std::uint32_t id = in.u32();
  require(in.remaining() == 0, "ancestry: trailing bytes");
  view.community_nodes(k, id);  // validate before replying
  reply_ok(response);
  put_u32(response, k - static_cast<std::uint32_t>(view.min_k()) + 1);
  while (true) {
    put_u32(response, k);
    put_u32(response, id);
    put_u32(response,
            static_cast<std::uint32_t>(view.community_nodes(k, id).size()));
    if (k == view.min_k()) break;
    id = view.parent_of(k, id);
    --k;
  }
}

void do_lca(const snapshot::SnapshotView& view, Reader& in,
            std::vector<std::uint8_t>& response) {
  std::uint32_t k1 = in.u32(), id1 = in.u32();
  std::uint32_t k2 = in.u32(), id2 = in.u32();
  require(in.remaining() == 0, "lca: trailing bytes");
  view.community_nodes(k1, id1);  // validate both endpoints up front
  view.community_nodes(k2, id2);
  // Walk the deeper endpoint up to the shallower one's level, then both in
  // lockstep until the ids meet (or the bottom level proves them disjoint).
  while (k1 > k2) { id1 = view.parent_of(k1, id1); --k1; }
  while (k2 > k1) { id2 = view.parent_of(k2, id2); --k2; }
  while (id1 != id2 && k1 > view.min_k()) {
    id1 = view.parent_of(k1, id1);
    id2 = view.parent_of(k1, id2);
    --k1;
  }
  reply_ok(response);
  if (id1 == id2) {
    put_u8(response, 1);
    put_u32(response, k1);
    put_u32(response, id1);
  } else {
    put_u8(response, 0);
  }
}

void do_overlap(const snapshot::SnapshotView& view, Reader& in,
                std::vector<std::uint8_t>& response) {
  const std::uint32_t u = in.u32();
  const std::uint32_t v = in.u32();
  require(in.remaining() == 0, "overlap: trailing bytes");
  const auto pu = view.postings(u);
  const auto pv = view.postings(v);
  // Both lists are (k, id)-ascending; one linear merge finds every common
  // community, and the running maximum tracks the deepest co-membership.
  std::uint32_t max_k = 0, witness = 0, count = 0;
  std::size_t i = 0, j = 0;
  while (i < pu.size() && j < pv.size()) {
    const auto a = std::make_pair(pu[i].k, pu[i].community);
    const auto b = std::make_pair(pv[j].k, pv[j].community);
    if (a < b) {
      ++i;
    } else if (b < a) {
      ++j;
    } else {
      if (pu[i].k > max_k) {
        max_k = pu[i].k;
        witness = pu[i].community;
        count = 0;
      }
      if (pu[i].k == max_k) ++count;
      ++i;
      ++j;
    }
  }
  reply_ok(response);
  put_u32(response, max_k);
  put_u32(response, witness);
  put_u32(response, count);
}

}  // namespace

QueryAction evaluate(const snapshot::SnapshotView& view,
                     const std::uint8_t* request, std::size_t request_bytes,
                     std::vector<std::uint8_t>& response,
                     bool allow_shutdown, bool allow_reload) {
  response.clear();
  try {
    Reader in(request, request_bytes);
    const auto op = static_cast<Op>(in.u8());
    switch (op) {
      case Op::kInfo:
        require(in.remaining() == 0, "info: trailing bytes");
        do_info(view, response);
        return QueryAction::kReply;
      case Op::kMembership:
        do_membership(view, in, response);
        return QueryAction::kReply;
      case Op::kCommunity:
        do_community(view, in, response);
        return QueryAction::kReply;
      case Op::kAncestry:
      case Op::kLca:
        if (!view.has_tree()) {
          reply_error(response, Status::kUnsupported,
                      "snapshot carries no community tree");
          return QueryAction::kReply;
        }
        if (op == Op::kAncestry) {
          do_ancestry(view, in, response);
        } else {
          do_lca(view, in, response);
        }
        return QueryAction::kReply;
      case Op::kOverlap:
        do_overlap(view, in, response);
        return QueryAction::kReply;
      case Op::kShutdown:
        require(in.remaining() == 0, "shutdown: trailing bytes");
        if (!allow_shutdown) {
          reply_error(response, Status::kShuttingDown,
                      "remote shutdown disabled (--no-remote-shutdown)");
          return QueryAction::kReply;
        }
        reply_ok(response);
        return QueryAction::kShutdown;
      case Op::kReload:
        require(in.remaining() == 0, "reload: trailing bytes");
        if (!allow_reload) {
          reply_error(response, Status::kUnsupported,
                      "remote reload disabled (--no-remote-reload)");
          return QueryAction::kReply;
        }
        reply_ok(response);  // overwritten by the caller if the swap fails
        return QueryAction::kReload;
    }
    reply_error(response, Status::kBadRequest,
                "unknown op " + std::to_string(static_cast<int>(op)));
  } catch (const Error& error) {
    reply_error(response, Status::kBadRequest, error.what());
  }
  return QueryAction::kReply;
}

}  // namespace kcc::serve
