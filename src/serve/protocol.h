// Wire protocol of the `kcc serve` query daemon.
//
// Both directions use the same length-prefixed frame so either side can
// read without lookahead:
//
//   [u32 payload_bytes (LE)] [payload]
//
// Request payload:  [u8 op] [op-specific little-endian fields]
// Response payload: [u8 status] [status == kOk ? op-specific result
//                                              : UTF-8 error message]
//
// Every integer is little-endian, matching the snapshot format (the daemon
// answers straight out of the mapping). Clients may pipeline: the server
// answers frames strictly in arrival order per connection, so N requests
// can be written back-to-back and the N responses read in sequence — the
// trick that makes a 1-core QPS benchmark syscall-bound rather than
// RTT-bound. docs/SERVING.md is the prose spec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace kcc::serve {

/// Request opcodes (first payload byte of a request).
enum class Op : std::uint8_t {
  /// -> u64 min_k, u64 max_k, u64 num_nodes, u64 num_communities,
  ///    u8 has_tree, u8 exactness, u16 engine_name_bytes, engine name.
  kInfo = 1,
  /// u32 node, u32 k (0 = all k) -> u32 count, count x {u32 k, u32 id}.
  kMembership = 2,
  /// u32 k, u32 id -> u32 count, count x u32 node (sorted members).
  kCommunity = 3,
  /// u32 k, u32 id -> u32 count, count x {u32 k, u32 id, u32 size};
  /// self first, then parents down to min_k. Needs a snapshot with a tree.
  kAncestry = 4,
  /// u32 k1, u32 id1, u32 k2, u32 id2 -> u8 found, found ? {u32 k, u32 id}.
  /// Lowest common ancestor of two tree nodes; found=0 when the walks end
  /// in different bottom-level roots.
  kLca = 5,
  /// u32 u, u32 v -> u32 max_k (0 = never co-members), u32 community
  /// (witness id at max_k), u32 count (co-memberships at max_k).
  kOverlap = 6,
  /// -> empty. Asks the daemon to shut down gracefully (deny with
  /// --no-remote-shutdown).
  kShutdown = 7,
  /// -> empty. Asks the daemon to remap its snapshot path in place (deny
  /// with --no-remote-reload; SIGHUP triggers the same swap locally).
  /// In-flight and pipelined queries on other connections keep answering
  /// from the mapping they started on; the old mapping is unmapped once
  /// the last such query finishes. Errors: kUnsupported when disabled,
  /// kBadRequest with a message when the new snapshot fails to load (the
  /// daemon keeps serving the old one).
  kReload = 8,
};

/// First payload byte of a response.
enum class Status : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,   // malformed frame / unknown op / argument out of range
  kUnsupported = 2,  // query needs data this snapshot lacks (e.g. no tree)
  kShuttingDown = 3, // remote shutdown refused or server draining
};

/// Frames larger than this are rejected as malformed before allocation —
/// requests are tiny; only responses carry bulk data.
inline constexpr std::uint32_t kMaxRequestBytes = 1024;

/// Upper bound a well-behaved client enforces on response frames (largest
/// legit response is a community node list; 1 GiB is far beyond any graph
/// this serves).
inline constexpr std::uint32_t kMaxResponseBytes = 1u << 30;

// -- payload byte helpers ---------------------------------------------------

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Sequential bounds-checked reader over one received payload. Throws
/// kcc::Error on under-runs so truncated frames fail loudly on both sides.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t bytes)
      : data_(data), bytes_(bytes) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::size_t remaining() const { return bytes_ - pos_; }

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    const std::uint8_t* p = take(2);
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32() {
    const std::uint8_t* p = take(4);
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::uint64_t u64() {
    std::uint64_t lo = u32();
    std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  std::string bytes(std::size_t n) {
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

 private:
  const std::uint8_t* take(std::size_t n) {
    require(remaining() >= n, "serve protocol: truncated payload");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t bytes_;
  std::size_t pos_ = 0;
};

// -- blocking fd I/O (EINTR-safe) -------------------------------------------

/// Reads exactly `bytes`. Returns false on clean EOF at offset 0 (peer
/// closed between frames); throws kcc::Error on mid-frame EOF or errors.
bool read_exact(int fd, void* buf, std::size_t bytes);

/// Writes all of `bytes`; throws kcc::Error on error (incl. EPIPE).
void write_all(int fd, const void* buf, std::size_t bytes);

/// Writes one [length][payload] frame.
void write_frame(int fd, const std::vector<std::uint8_t>& payload);

/// Reads one frame into `payload` (resized). Returns false on clean EOF
/// before a length prefix. Frames above `max_bytes` throw.
bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::uint32_t max_bytes);

}  // namespace kcc::serve
