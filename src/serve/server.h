// The `kcc serve` daemon core: a unix-domain-socket server answering
// snapshot queries concurrently. One accept thread plus one thread per
// connection — AS-graph query payloads are microseconds of work, so the
// thread-per-connection model is simpler than an event loop and scales to
// the hundreds of clients a single snapshot replica is expected to carry
// (beyond that, run more replicas: the snapshot is immutable and mmapped,
// so replicas share page cache).
//
// Lifecycle: construct (binds + listens), start() (spawns the accept loop),
// then either wait() until a shutdown arrives or call shutdown() from a
// signal handler / another thread. Shutdown closes the listening socket,
// shuts down every live connection fd, and joins all threads; in-flight
// requests finish, queued-but-unread frames are dropped with the socket.
//
// Hot swap: the snapshot is held through a shared_ptr that every request
// copies at its start, so try_reload() — triggered by SIGHUP (via
// request_reload() from the signal handler, the waiter does the work) or
// the remote kReload op — atomically publishes a freshly mapped view while
// in-flight queries keep answering from the mapping they started on. The
// old mapping is unmapped when its last borrower finishes; a failed reload
// (missing/corrupt file) leaves the current view serving.
//
// Metrics (serve_* catalog in docs/SERVING.md): connections, active
// connections, requests by outcome, bytes in/out, per-request latency
// histogram, reloads and reload failures. Each request runs under a
// "serve.request" span.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/snapshot.h"

namespace kcc::serve {

struct ServerOptions {
  /// Filesystem path of the unix-domain socket. Bound at construction; an
  /// existing socket file at the path is unlinked first (stale socket from
  /// a killed daemon), any other file type is an error.
  std::string socket_path;
  /// Honor the remote kShutdown op (CLI: --no-remote-shutdown clears it).
  bool allow_remote_shutdown = true;
  /// Honor the remote kReload op (CLI: --no-remote-reload clears it).
  /// SIGHUP-driven reloads are always honored.
  bool allow_remote_reload = true;
};

class Server {
 public:
  /// Opens the snapshot and binds the socket. Throws kcc::Error on either.
  Server(const std::string& snapshot_path, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Borrowed reference to the current snapshot — valid only until the
  /// next reload swaps it out. Fine for startup-time introspection (the
  /// CLI banner, benchmark setup); request paths use view_ptr() so the
  /// mapping they read stays pinned.
  const snapshot::SnapshotView& view() const { return *view_ptr(); }

  /// The current snapshot, pinned: the mapping stays valid for as long as
  /// the returned pointer lives, across any number of reloads.
  std::shared_ptr<const snapshot::SnapshotView> view_ptr() const {
    std::lock_guard<std::mutex> lock(view_mutex_);
    return view_;
  }

  const std::string& socket_path() const { return options_.socket_path; }

  /// Spawns the accept loop. Call once.
  void start();

  /// Blocks until shutdown is needed and performs it. Returns once the
  /// server is fully stopped. A remote kShutdown op only *requests*
  /// shutdown (a connection thread cannot join itself); the waiter here is
  /// who actually tears the server down. Signal handlers can likewise call
  /// request_shutdown() (async-signal-safe: one atomic store; the waiter
  /// polls) and let wait() do the work.
  void wait();

  /// Flags the server for shutdown without doing any teardown work.
  /// Async-signal-safe.
  void request_shutdown() {
    shutdown_requested_.store(true, std::memory_order_release);
  }

  /// Flags the server to remap its snapshot; wait() performs the swap on
  /// its next poll tick (<= ~50 ms). Async-signal-safe — the SIGHUP
  /// handler in tools/kcc.cpp calls exactly this.
  void request_reload() {
    reload_requested_.store(true, std::memory_order_release);
  }

  /// Remaps the snapshot path and atomically publishes the new view.
  /// Returns an empty string on success, the load error otherwise (the
  /// previous view keeps serving). Safe from any non-signal thread.
  std::string try_reload();

  /// Idempotent, safe from any thread and from signal context is NOT
  /// guaranteed — signal handlers should set a flag and call this from the
  /// main thread (tools/kcc.cpp does; see cmd_serve).
  void shutdown();

  /// True once shutdown() has been called.
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

 private:
  void accept_loop();
  void connection_loop(int fd, std::uint64_t id);

  mutable std::mutex view_mutex_;  // guards the view_ pointer, not the view
  std::shared_ptr<const snapshot::SnapshotView> view_;
  std::string snapshot_path_;
  ServerOptions options_;
  int listen_fd_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> reload_requested_{false};
  std::thread accept_thread_;

  std::mutex mutex_;  // guards connections_ and threads_
  std::condition_variable shutdown_cv_;
  std::map<std::uint64_t, int> connections_;  // id -> live fd
  std::vector<std::thread> threads_;
  std::uint64_t next_connection_id_ = 0;
  bool started_ = false;
};

}  // namespace kcc::serve
