#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.h"

namespace kcc::serve {
namespace {

int connect_once(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, std::string("serve client: socket() failed: ") +
                       std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

Client::Client(const std::string& socket_path, double timeout_seconds) {
  require(socket_path.size() < sizeof(sockaddr_un{}.sun_path),
          "serve client: socket path too long: '" + socket_path + "'");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (true) {
    fd_ = connect_once(socket_path);
    if (fd_ >= 0) return;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw Error("serve client: cannot connect to '" + socket_path +
                  "' within " + std::to_string(timeout_seconds) + "s: " +
                  std::strerror(errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_request(const std::vector<std::uint8_t>& payload) {
  write_frame(fd_, payload);
}

std::vector<std::uint8_t> Client::read_response() {
  std::vector<std::uint8_t> payload;
  require(read_frame(fd_, payload, kMaxResponseBytes),
          "serve client: server closed the connection");
  require(!payload.empty(), "serve client: empty response frame");
  return payload;
}

std::vector<std::uint8_t> Client::call(
    const std::vector<std::uint8_t>& request) {
  send_request(request);
  std::vector<std::uint8_t> payload = read_response();
  const auto status = static_cast<Status>(payload[0]);
  if (status != Status::kOk) {
    throw Error("serve client: server error (status " +
                std::to_string(payload[0]) + "): " +
                std::string(payload.begin() + 1, payload.end()));
  }
  payload.erase(payload.begin());  // drop the status byte
  return payload;
}

ServerInfo Client::info() {
  const auto payload = call(encode_info());
  Reader in(payload);
  ServerInfo info;
  info.min_k = in.u64();
  info.max_k = in.u64();
  info.num_nodes = in.u64();
  info.num_communities = in.u64();
  info.has_tree = in.u8() != 0;
  info.exactness = in.u8();
  info.engine = in.bytes(in.u16());
  return info;
}

std::vector<Membership> Client::membership(std::uint32_t node,
                                           std::uint32_t k) {
  const auto payload = call(encode_membership(node, k));
  Reader in(payload);
  std::vector<Membership> out(in.u32());
  for (Membership& m : out) {
    m.k = in.u32();
    m.id = in.u32();
  }
  return out;
}

std::vector<std::uint32_t> Client::community(std::uint32_t k,
                                             std::uint32_t id) {
  const auto payload = call(encode_community(k, id));
  Reader in(payload);
  std::vector<std::uint32_t> nodes(in.u32());
  for (std::uint32_t& v : nodes) v = in.u32();
  return nodes;
}

std::vector<AncestryEntry> Client::ancestry(std::uint32_t k,
                                            std::uint32_t id) {
  const auto payload = call(encode_ancestry(k, id));
  Reader in(payload);
  std::vector<AncestryEntry> out(in.u32());
  for (AncestryEntry& entry : out) {
    entry.k = in.u32();
    entry.id = in.u32();
    entry.size = in.u32();
  }
  return out;
}

std::optional<Membership> Client::lca(std::uint32_t k1, std::uint32_t id1,
                                      std::uint32_t k2, std::uint32_t id2) {
  const auto payload = call(encode_lca(k1, id1, k2, id2));
  Reader in(payload);
  if (in.u8() == 0) return std::nullopt;
  Membership m;
  m.k = in.u32();
  m.id = in.u32();
  return m;
}

Overlap Client::overlap(std::uint32_t u, std::uint32_t v) {
  const auto payload = call(encode_overlap(u, v));
  Reader in(payload);
  Overlap o;
  o.max_k = in.u32();
  o.community = in.u32();
  o.count = in.u32();
  return o;
}

Status Client::request_shutdown() {
  send_request(encode_shutdown());
  const auto payload = read_response();
  return static_cast<Status>(payload[0]);
}

Status Client::request_reload() {
  send_request(encode_reload());
  const auto payload = read_response();
  return static_cast<Status>(payload[0]);
}

std::vector<std::uint8_t> encode_info() {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kInfo));
  return out;
}

std::vector<std::uint8_t> encode_membership(std::uint32_t node,
                                            std::uint32_t k) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kMembership));
  put_u32(out, node);
  put_u32(out, k);
  return out;
}

std::vector<std::uint8_t> encode_community(std::uint32_t k,
                                           std::uint32_t id) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kCommunity));
  put_u32(out, k);
  put_u32(out, id);
  return out;
}

std::vector<std::uint8_t> encode_ancestry(std::uint32_t k, std::uint32_t id) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kAncestry));
  put_u32(out, k);
  put_u32(out, id);
  return out;
}

std::vector<std::uint8_t> encode_lca(std::uint32_t k1, std::uint32_t id1,
                                     std::uint32_t k2, std::uint32_t id2) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kLca));
  put_u32(out, k1);
  put_u32(out, id1);
  put_u32(out, k2);
  put_u32(out, id2);
  return out;
}

std::vector<std::uint8_t> encode_overlap(std::uint32_t u, std::uint32_t v) {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kOverlap));
  put_u32(out, u);
  put_u32(out, v);
  return out;
}

std::vector<std::uint8_t> encode_shutdown() {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kShutdown));
  return out;
}

std::vector<std::uint8_t> encode_reload() {
  std::vector<std::uint8_t> out;
  put_u8(out, static_cast<std::uint8_t>(Op::kReload));
  return out;
}

}  // namespace kcc::serve
