// Query evaluation for the serve daemon: one request payload in, one
// response payload out, over an mmapped snapshot. Pure logic — no sockets,
// no threads — so the in-process tests can drive it against the in-memory
// cpm::Result oracle and the Server can stay a thin framing loop.
#pragma once

#include <cstdint>
#include <vector>

#include "io/snapshot.h"
#include "serve/protocol.h"

namespace kcc::serve {

/// What a request asked the connection loop to do besides answering.
enum class QueryAction {
  kReply,     // normal answer
  kShutdown,  // valid kShutdown request: reply, then stop the server
  kReload,    // valid kReload request: server remaps, then fills the reply
};

/// Evaluates one request payload against the snapshot and appends the
/// response payload (status byte first) to `response`. Malformed requests
/// produce a kBadRequest response rather than throwing; tree queries on a
/// treeless snapshot produce kUnsupported. When `allow_shutdown` is false a
/// kShutdown request is answered with kShuttingDown and kReply is returned;
/// when `allow_reload` is false a kReload request is answered with
/// kUnsupported likewise. An allowed kReload returns kReload with a kOk
/// response pre-filled — the caller performs the swap and overwrites the
/// response on failure (evaluate itself is pure and cannot remap).
QueryAction evaluate(const snapshot::SnapshotView& view,
                     const std::uint8_t* request, std::size_t request_bytes,
                     std::vector<std::uint8_t>& response,
                     bool allow_shutdown, bool allow_reload = true);

}  // namespace kcc::serve
