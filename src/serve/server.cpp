#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/query.h"

namespace kcc::serve {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Request latency buckets: 1 us .. ~1 s, exponential.
obs::Histogram& request_seconds() {
  static obs::Histogram& h = obs::metrics().histogram(
      "serve_request_seconds",
      obs::Histogram::exponential_bounds(1e-6, 2.0, 21));
  return h;
}

int make_listen_socket(const std::string& path) {
  require(!path.empty(), "serve: --socket path is empty");
  require(path.size() < sizeof(sockaddr_un{}.sun_path),
          "serve: socket path too long: '" + path + "'");
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0) {
    require(S_ISSOCK(st.st_mode),
            "serve: '" + path + "' exists and is not a socket");
    ::unlink(path.c_str());  // stale socket from a previous daemon
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, std::string("serve: socket() failed: ") +
                       std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw Error("serve: bind('" + path + "') failed: " + what);
  }
  if (::listen(fd, 128) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    throw Error("serve: listen('" + path + "') failed: " + what);
  }
  return fd;
}

}  // namespace

Server::Server(const std::string& snapshot_path, ServerOptions options)
    : view_(std::make_shared<const snapshot::SnapshotView>(snapshot_path)),
      snapshot_path_(snapshot_path),
      options_(std::move(options)) {
  listen_fd_ = make_listen_socket(options_.socket_path);
  KCC_LOG(kInfo) << "serve: snapshot '" << snapshot_path << "' ("
                 << view_->num_communities() << " communities, k "
                 << view_->min_k() << ".." << view_->max_k() << ", engine "
                 << view_->engine_name() << ") on socket '"
                 << options_.socket_path << "'";
}

Server::~Server() {
  shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
}

void Server::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    require(!started_, "serve: start() called twice");
    started_ = true;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Polling keeps request_shutdown() / request_reload() usable from
    // signal handlers, which must not touch the condition variable.
    while (!stopping() &&
           !shutdown_requested_.load(std::memory_order_acquire)) {
      if (reload_requested_.exchange(false, std::memory_order_acq_rel)) {
        lock.unlock();
        const std::string error = try_reload();
        if (!error.empty()) {
          KCC_LOG(kError) << "serve: reload failed: " << error;
        }
        lock.lock();
        continue;
      }
      shutdown_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  shutdown();
}

std::string Server::try_reload() {
  static obs::Counter& reloads = obs::metrics().counter("serve_reloads_total");
  static obs::Counter& failures =
      obs::metrics().counter("serve_reload_failures_total");
  try {
    auto fresh =
        std::make_shared<const snapshot::SnapshotView>(snapshot_path_);
    {
      std::lock_guard<std::mutex> lock(view_mutex_);
      view_ = fresh;
      // The old mapping is released here unless an in-flight request still
      // pins it via view_ptr(); the last borrower unmaps it.
    }
    reloads.inc();
    KCC_LOG(kInfo) << "serve: reloaded snapshot '" << snapshot_path_ << "' ("
                   << fresh->num_communities() << " communities, k "
                   << fresh->min_k() << ".." << fresh->max_k() << ", engine "
                   << fresh->engine_name() << ")";
    return {};
  } catch (const Error& error) {
    failures.inc();
    return error.what();
  }
}

void Server::shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    // Second caller: the first one is tearing down; just make sure wait()
    // wakes and the accept thread is gone before returning.
    shutdown_cv_.notify_all();
    return;
  }
  KCC_LOG(kInfo) << "serve: shutting down";
  // Unblock accept() and every blocking read; threads then exit on their
  // own and are joined below.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, fd] : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  shutdown_cv_.notify_all();
}

void Server::accept_loop() {
  static obs::Counter& accepted =
      obs::metrics().counter("serve_connections_total");
  while (!stopping()) {
    // Poll with a timeout instead of blocking in accept(): waking a blocked
    // accept() on an AF_UNIX listener is platform-murky, while a 100 ms
    // stopping_ check is a bounded, portable shutdown latency.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) {
      KCC_LOG(kError) << "serve: poll failed: " << std::strerror(errno);
      break;
    }
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping()) break;
      KCC_LOG(kError) << "serve: accept failed: " << std::strerror(errno);
      break;
    }
    if (stopping()) {
      ::close(fd);
      break;
    }
    accepted.inc();
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = next_connection_id_++;
    connections_[id] = fd;
    threads_.emplace_back([this, fd, id] { connection_loop(fd, id); });
  }
}

void Server::connection_loop(int fd, std::uint64_t id) {
  static obs::Counter& requests =
      obs::metrics().counter("serve_requests_total");
  static obs::Counter& errors = obs::metrics().counter("serve_errors_total");
  static obs::Counter& bytes_in =
      obs::metrics().counter("serve_bytes_in_total");
  static obs::Counter& bytes_out =
      obs::metrics().counter("serve_bytes_out_total");
  static obs::Gauge& active =
      obs::metrics().gauge("serve_active_connections");
  active.add(1);

  bool want_shutdown = false;
  std::vector<std::uint8_t> request, response;
  try {
    while (!stopping()) {
      if (!read_frame(fd, request, kMaxRequestBytes)) break;  // client done
      const double start = now_seconds();
      KCC_SPAN("serve.request");
      requests.inc();
      bytes_in.inc(4 + request.size());
      // Pin the view per request: a concurrent reload swaps the shared
      // pointer, not the mapping this request is reading.
      const std::shared_ptr<const snapshot::SnapshotView> view = view_ptr();
      const QueryAction action =
          evaluate(*view, request.data(), request.size(), response,
                   options_.allow_remote_shutdown,
                   options_.allow_remote_reload);
      if (action == QueryAction::kReload) {
        const std::string reload_error = try_reload();
        if (!reload_error.empty()) {
          response.clear();
          put_u8(response, static_cast<std::uint8_t>(Status::kBadRequest));
          const std::string message = "reload failed: " + reload_error;
          response.insert(response.end(), message.begin(), message.end());
        }
      }
      if (!response.empty() &&
          response[0] != static_cast<std::uint8_t>(Status::kOk)) {
        errors.inc();
      }
      write_frame(fd, response);
      bytes_out.inc(4 + response.size());
      request_seconds().observe(now_seconds() - start);
      if (action == QueryAction::kShutdown) {
        want_shutdown = true;
        break;
      }
    }
  } catch (const Error& error) {
    // Oversized/garbled frame or the peer vanished mid-frame: log, count,
    // drop the connection. The server itself stays up.
    errors.inc();
    KCC_LOG(kWarn) << "serve: connection " << id << ": " << error.what();
  }

  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.erase(id);
  }
  active.add(-1);
  if (want_shutdown) {
    // A connection thread cannot join itself, so it only flags the waiter
    // (Server::wait) to perform the actual teardown.
    request_shutdown();
    shutdown_cv_.notify_all();
  }
}

}  // namespace kcc::serve
