// z-P analysis (Guimerà & Amaral 2005) over a community cover.
//
// The paper (Sec. 1) deliberately avoids z-P for its own analysis because
// the role taxonomy relies on heuristic thresholds; we implement it so that
// the comparison the paper alludes to ([21] applies z-P to Internet
// communities) can be reproduced and the threshold-sensitivity demonstrated.
//
// For a node v with community assignment(s):
//  * z — within-community degree z-score: how hub-like v is inside its
//    community;
//  * P — participation coefficient: 1 - Σ_c (k_{v,c}/k_v)², how evenly v's
//    links spread over communities (0 = all links in one community).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "cpm/community.h"
#include "graph/graph.h"

namespace kcc {

struct ZpScore {
  NodeId node = 0;
  CommunityId community = 0;  // community the z-score is computed within
  double z = 0.0;
  double participation = 0.0;
};

/// Guimerà-Amaral role taxonomy (the heuristic thresholds the paper
/// distrusts; defaults are the published ones).
enum class ZpRole {
  kUltraPeripheral,  // z < 2.5, P <= 0.05
  kPeripheral,       // z < 2.5, P <= 0.62
  kConnector,        // z < 2.5, P <= 0.80
  kKinless,          // z < 2.5, P >  0.80
  kProvincialHub,    // z >= 2.5, P <= 0.30
  kConnectorHub,     // z >= 2.5, P <= 0.75
  kKinlessHub,       // z >= 2.5, P >  0.75
};

const char* zp_role_name(ZpRole role);

ZpRole classify_zp(double z, double participation);

/// Computes z and P for every (node, community) membership in `set`.
/// P uses the link distribution of v over all communities of `set`; links
/// to uncovered nodes count towards the "outside" remainder, which lowers P
/// by convention (they are treated as one extra pseudo-community).
std::vector<ZpScore> zp_scores(const Graph& g, const CommunitySet& set);

/// Role histogram over the scores (7 entries ordered as the enum).
std::vector<std::size_t> zp_role_histogram(const std::vector<ZpScore>& scores);

}  // namespace kcc
