#include "metrics/modularity.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace kcc {

double modularity(const Graph& g,
                  const std::vector<std::uint32_t>& community_of) {
  require(community_of.size() == g.num_nodes(),
          "modularity: labelling does not match the graph");
  const double m2 = 2.0 * static_cast<double>(g.num_edges());
  if (m2 == 0.0) return 0.0;

  // Internal edge endpoints and total degree per community.
  std::map<std::uint32_t, double> internal2, degree;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degree[community_of[v]] += static_cast<double>(g.degree(v));
    for (NodeId w : g.neighbors(v)) {
      if (community_of[w] == community_of[v]) {
        internal2[community_of[v]] += 1.0;  // counts each edge twice
      }
    }
  }
  double q = 0.0;
  for (const auto& [community, d] : degree) {
    const double e = internal2.count(community) ? internal2[community] : 0.0;
    q += e / m2 - (d / m2) * (d / m2);
  }
  return q;
}

std::vector<NodeSet> partition_to_cover(
    const std::vector<std::uint32_t>& community_of) {
  std::map<std::uint32_t, NodeSet> by_id;
  for (NodeId v = 0; v < community_of.size(); ++v) {
    by_id[community_of[v]].push_back(v);
  }
  std::vector<NodeSet> out;
  out.reserve(by_id.size());
  for (auto& [id, nodes] : by_id) {
    (void)id;
    out.push_back(std::move(nodes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kcc
