#include "metrics/similarity.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

double jaccard_index(const NodeSet& a, const NodeSet& b) {
  require(is_sorted_unique(a) && is_sorted_unique(b),
          "jaccard_index: inputs must be sorted node sets");
  if (a.empty() && b.empty()) return 1.0;
  const std::size_t inter = intersection_size(a, b);
  const std::size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

// pair (u, v) with u < v packed into a 64-bit key.
std::uint64_t pair_key(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

// Co-membership count per node pair appearing in at least one community.
std::unordered_map<std::uint64_t, std::uint32_t> pair_counts(
    const std::vector<NodeSet>& cover, std::size_t num_nodes) {
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  for (const NodeSet& community : cover) {
    for (std::size_t i = 0; i < community.size(); ++i) {
      require(community[i] < num_nodes, "omega_index: node out of range");
      for (std::size_t j = i + 1; j < community.size(); ++j) {
        ++counts[pair_key(community[i], community[j])];
      }
    }
  }
  return counts;
}

}  // namespace

double omega_index(const std::vector<NodeSet>& cover_a,
                   const std::vector<NodeSet>& cover_b,
                   std::size_t num_nodes) {
  require(num_nodes >= 2, "omega_index: need at least two nodes");
  const double total_pairs =
      static_cast<double>(num_nodes) * double(num_nodes - 1) / 2.0;

  const auto counts_a = pair_counts(cover_a, num_nodes);
  const auto counts_b = pair_counts(cover_b, num_nodes);

  // N_j per cover: number of pairs co-assigned exactly j times. j = 0 pairs
  // are the remainder.
  auto histogram = [&](const std::unordered_map<std::uint64_t, std::uint32_t>&
                           counts) {
    std::vector<double> h(1, total_pairs - double(counts.size()));
    for (const auto& [key, c] : counts) {
      (void)key;
      if (c >= h.size()) h.resize(c + 1, 0.0);
      ++h[c];
    }
    return h;
  };
  const auto ha = histogram(counts_a);
  const auto hb = histogram(counts_b);

  // Observed agreement: pairs with the same count in both covers.
  double agree = 0.0;
  // j = 0 agreements: pairs absent from both maps.
  std::size_t joint_nonzero_same = 0;
  std::size_t pairs_in_a_and_b = 0;
  for (const auto& [key, ca] : counts_a) {
    const auto it = counts_b.find(key);
    if (it != counts_b.end()) {
      ++pairs_in_a_and_b;
      if (it->second == ca) ++joint_nonzero_same;
    }
  }
  const double zero_zero = total_pairs - double(counts_a.size()) -
                           double(counts_b.size()) +
                           double(pairs_in_a_and_b);
  agree = (zero_zero + double(joint_nonzero_same)) / total_pairs;

  // Expected agreement under independence.
  double expected = 0.0;
  for (std::size_t j = 0; j < std::min(ha.size(), hb.size()); ++j) {
    expected += (ha[j] / total_pairs) * (hb[j] / total_pairs);
  }
  if (expected >= 1.0) return 1.0;  // degenerate: both covers trivial
  return (agree - expected) / (1.0 - expected);
}

std::vector<BestMatch> best_matches(const std::vector<NodeSet>& from,
                                    const std::vector<NodeSet>& to) {
  std::vector<BestMatch> out(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) {
    for (std::size_t j = 0; j < to.size(); ++j) {
      const double score = jaccard_index(from[i], to[j]);
      if (out[i].index < 0 || score > out[i].jaccard) {
        out[i].index = static_cast<int>(j);
        out[i].jaccard = score;
      }
    }
  }
  return out;
}

}  // namespace kcc
