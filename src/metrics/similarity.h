// Similarity between covers and between communities.
//
// * Jaccard index between node sets — the standard match score used when
//   tracking communities across snapshots (Palla et al. 2007).
// * Omega index (Collins & Dent 1988) — chance-corrected agreement between
//   two covers; the overlapping generalisation of the Adjusted Rand Index.
//   Used by the baseline study to quantify how far k-core / k-dense / GCE
//   covers sit from the CPM cover.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace kcc {

/// |A ∩ B| / |A ∪ B| for sorted unique sets; 1 when both empty.
double jaccard_index(const NodeSet& a, const NodeSet& b);

/// Omega index between two covers over a universe of `num_nodes` nodes.
/// A cover is a list of node sets (overlap allowed). Returns 1 for
/// identical pair-co-membership structure, ~0 for chance-level agreement
/// (can be negative).
double omega_index(const std::vector<NodeSet>& cover_a,
                   const std::vector<NodeSet>& cover_b,
                   std::size_t num_nodes);

/// Best-match result: for each community of `from`, the index in `to` with
/// the highest Jaccard score (-1 when `to` is empty), with the score.
struct BestMatch {
  int index = -1;
  double jaccard = 0.0;
};

std::vector<BestMatch> best_matches(const std::vector<NodeSet>& from,
                                    const std::vector<NodeSet>& to);

}  // namespace kcc
