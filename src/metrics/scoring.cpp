#include "metrics/scoring.h"

#include <limits>

#include "common/error.h"
#include "common/set_ops.h"
#include "metrics/community_metrics.h"

namespace kcc {

CommunityScores score_community(const Graph& g, const NodeSet& community) {
  require(is_sorted_unique(community),
          "score_community: community must be a sorted node set");
  CommunityScores scores;
  scores.size = community.size();
  if (community.empty()) return scores;

  std::size_t internal2 = 0;  // twice the internal edges
  std::size_t boundary = 0;
  for (NodeId v : community) {
    const std::size_t in = internal_degree(g, v, community);
    internal2 += in;
    boundary += g.degree(v) - in;
  }
  scores.internal_edges = internal2 / 2;
  scores.boundary_edges = boundary;

  if (scores.size >= 2) {
    const double possible =
        double(scores.size) * double(scores.size - 1) / 2.0;
    scores.density = double(scores.internal_edges) / possible;
  }
  const double volume = double(internal2 + boundary);
  scores.conductance = volume > 0.0 ? double(boundary) / volume : 0.0;
  scores.expansion = double(boundary) / double(scores.size);
  const std::size_t outside = g.num_nodes() - scores.size;
  if (outside > 0) {
    scores.cut_ratio =
        double(boundary) / (double(scores.size) * double(outside));
  }
  scores.separability =
      boundary > 0 ? double(scores.internal_edges) / double(boundary)
                   : std::numeric_limits<double>::max();
  return scores;
}

}  // namespace kcc
