// Community overlap analysis (paper Sec. 4, the overlap-fraction study).
//
// overlap(A, B) = |A ∩ B|; overlap_fraction = overlap / min(|A|, |B|).
// The paper reports, per k, the overlap fraction between each parallel
// community and its main community (mean over k: 0.704, variance 0.023,
// per-k mean always > 0.432) and the much noisier parallel-parallel
// fractions (variance 0.136).
#pragma once

#include <cstddef>
#include <vector>

#include "cpm/community.h"
#include "cpm/community_tree.h"

namespace kcc {

/// |A ∩ B| over member node sets.
std::size_t community_overlap(const Community& a, const Community& b);

/// overlap / min(size). Requires both communities non-empty.
double overlap_fraction(const Community& a, const Community& b);

/// Overlap-fraction statistics at one k.
struct OverlapStatsAtK {
  std::size_t k = 0;
  std::size_t parallel_count = 0;
  /// Mean fraction between each parallel community and the main community.
  double mean_parallel_vs_main = 0.0;
  /// Number of parallel communities sharing no AS with the main community
  /// (the paper found 6 such exceptions across all k).
  std::size_t disjoint_from_main = 0;
  /// Mean and variance of fractions over distinct parallel-parallel pairs.
  double mean_parallel_parallel = 0.0;
  std::size_t parallel_parallel_pairs = 0;
  /// Count of parallel-parallel pairs with zero overlap.
  std::size_t disjoint_parallel_pairs = 0;
};

/// Per-k overlap statistics. `main_id_of_k[k - cpm.min_k]` designates the
/// main community at each k (take it from the CommunityTree).
std::vector<OverlapStatsAtK> overlap_stats(
    const CpmResult& cpm, const std::vector<CommunityId>& main_id_of_k);

/// Helper: extracts the per-k main community ids from the tree.
std::vector<CommunityId> main_ids_by_k(const CommunityTree& tree);

/// Aggregates the per-k parallel-vs-main means (the paper's 0.704 / 0.023).
struct OverlapAggregate {
  double mean = 0.0;      // mean over k of mean_parallel_vs_main
  double variance = 0.0;  // population variance over k
  double min = 0.0;       // smallest per-k mean (paper: > 0.432)
  std::size_t k_count = 0;
};

OverlapAggregate aggregate_parallel_vs_main(
    const std::vector<OverlapStatsAtK>& stats);

}  // namespace kcc
