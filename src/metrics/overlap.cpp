#include "metrics/overlap.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

std::size_t community_overlap(const Community& a, const Community& b) {
  return intersection_size(a.nodes, b.nodes);
}

double overlap_fraction(const Community& a, const Community& b) {
  const std::size_t smaller = std::min(a.size(), b.size());
  require(smaller > 0, "overlap_fraction: empty community");
  return static_cast<double>(community_overlap(a, b)) /
         static_cast<double>(smaller);
}

std::vector<CommunityId> main_ids_by_k(const CommunityTree& tree) {
  std::vector<CommunityId> out;
  out.reserve(tree.max_k() - tree.min_k() + 1);
  for (std::size_t k = tree.min_k(); k <= tree.max_k(); ++k) {
    CommunityId main_id = CommunitySet::kNoCommunity;
    for (int idx : tree.level(k)) {
      if (tree.nodes()[idx].is_main) {
        main_id = tree.nodes()[idx].community_id;
        break;
      }
    }
    require(main_id != CommunitySet::kNoCommunity,
            "main_ids_by_k: level without a main community");
    out.push_back(main_id);
  }
  return out;
}

std::vector<OverlapStatsAtK> overlap_stats(
    const CpmResult& cpm, const std::vector<CommunityId>& main_id_of_k) {
  require(main_id_of_k.size() == cpm.by_k.size(),
          "overlap_stats: main-id vector does not match the k range");
  std::vector<OverlapStatsAtK> out;
  for (std::size_t i = 0; i < cpm.by_k.size(); ++i) {
    const CommunitySet& set = cpm.by_k[i];
    OverlapStatsAtK stats;
    stats.k = set.k;
    const Community& main = set.communities.at(main_id_of_k[i]);

    std::vector<const Community*> parallel;
    for (const Community& c : set.communities) {
      if (c.id != main.id) parallel.push_back(&c);
    }
    stats.parallel_count = parallel.size();

    double sum_main = 0.0;
    for (const Community* p : parallel) {
      const double f = overlap_fraction(*p, main);
      sum_main += f;
      if (community_overlap(*p, main) == 0) ++stats.disjoint_from_main;
    }
    if (!parallel.empty()) {
      stats.mean_parallel_vs_main = sum_main / double(parallel.size());
    }

    double sum_pp = 0.0;
    for (std::size_t a = 0; a < parallel.size(); ++a) {
      for (std::size_t b = a + 1; b < parallel.size(); ++b) {
        const double f = overlap_fraction(*parallel[a], *parallel[b]);
        sum_pp += f;
        ++stats.parallel_parallel_pairs;
        if (community_overlap(*parallel[a], *parallel[b]) == 0) {
          ++stats.disjoint_parallel_pairs;
        }
      }
    }
    if (stats.parallel_parallel_pairs > 0) {
      stats.mean_parallel_parallel =
          sum_pp / double(stats.parallel_parallel_pairs);
    }
    out.push_back(stats);
  }
  return out;
}

OverlapAggregate aggregate_parallel_vs_main(
    const std::vector<OverlapStatsAtK>& stats) {
  OverlapAggregate agg;
  std::vector<double> means;
  for (const auto& s : stats) {
    if (s.parallel_count > 0) means.push_back(s.mean_parallel_vs_main);
  }
  agg.k_count = means.size();
  if (means.empty()) return agg;
  double sum = 0.0;
  for (double m : means) sum += m;
  agg.mean = sum / double(means.size());
  double var = 0.0;
  for (double m : means) var += (m - agg.mean) * (m - agg.mean);
  agg.variance = var / double(means.size());
  agg.min = *std::min_element(means.begin(), means.end());
  return agg;
}

}  // namespace kcc
