// Newman-Girvan modularity of a partition.
//
// The paper's related work ([16] Kwak et al., [5] Blondel et al.) evaluates
// community quality by modularity Q = Σ_c (e_c/m - (d_c/2m)²); the
// Louvain baseline (baselines/louvain.h) maximises it. k-clique covers are
// not partitions, so Q applies only to the partition baselines — which is
// itself part of the paper's argument.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// Modularity of the partition `community_of` (one dense community id per
/// node). Returns 0 for edgeless graphs.
double modularity(const Graph& g, const std::vector<std::uint32_t>& community_of);

/// Converts a partition labelling into sorted node sets (communities
/// ordered by smallest member; empty ids skipped).
std::vector<NodeSet> partition_to_cover(
    const std::vector<std::uint32_t>& community_of);

}  // namespace kcc
