// Community scoring functions from Leskovec, Lang & Mahoney (WWW 2010) —
// the paper's reference [20], which is also where its ODF definition comes
// from. Beyond density and ODF the standard kit is:
//  * conductance — boundary edges over total incident volume;
//  * expansion — boundary edges per member;
//  * cut ratio — boundary edges over all possible boundary pairs;
//  * separability — internal vs boundary edge ratio.
// The paper argues these internal-vs-external scores are the wrong lens for
// Tier-1-style communities; the ext_scoring bench quantifies that claim.
#pragma once

#include <cstddef>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

struct CommunityScores {
  std::size_t size = 0;
  std::size_t internal_edges = 0;
  std::size_t boundary_edges = 0;
  double density = 0.0;       // internal / possible
  double conductance = 0.0;   // boundary / (2*internal + boundary)
  double expansion = 0.0;     // boundary / size
  double cut_ratio = 0.0;     // boundary / (size * (n - size))
  double separability = 0.0;  // internal / boundary (inf -> large sentinel)
};

/// Computes the full score bundle for `community` (sorted node set).
CommunityScores score_community(const Graph& g, const NodeSet& community);

}  // namespace kcc
