#include "metrics/community_metrics.h"

#include "common/error.h"
#include "common/set_ops.h"
#include "graph/subgraph.h"

namespace kcc {

double link_density(const Graph& g, const NodeSet& nodes) {
  const double n = static_cast<double>(nodes.size());
  if (n < 2) return 0.0;
  const double possible = n * (n - 1.0) / 2.0;
  return static_cast<double>(induced_edge_count(g, nodes)) / possible;
}

std::size_t internal_degree(const Graph& g, NodeId v, const NodeSet& nodes) {
  require(v < g.num_nodes(), "internal_degree: node out of range");
  const auto adj = g.neighbors(v);
  std::size_t count = 0, i = 0, j = 0;
  while (i < adj.size() && j < nodes.size()) {
    if (adj[i] < nodes[j]) {
      ++i;
    } else if (nodes[j] < adj[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double internal_degree_fraction(const Graph& g, NodeId v,
                                const NodeSet& nodes) {
  const std::size_t total = g.degree(v);
  if (total == 0) return 0.0;
  return static_cast<double>(internal_degree(g, v, nodes)) /
         static_cast<double>(total);
}

double out_degree_fraction(const Graph& g, NodeId v, const NodeSet& nodes) {
  const std::size_t total = g.degree(v);
  if (total == 0) return 0.0;
  return 1.0 - internal_degree_fraction(g, v, nodes);
}

double average_odf(const Graph& g, const NodeSet& nodes) {
  if (nodes.empty()) return 0.0;
  double sum = 0.0;
  for (NodeId v : nodes) sum += out_degree_fraction(g, v, nodes);
  return sum / static_cast<double>(nodes.size());
}

double average_internal_fraction(const Graph& g, const NodeSet& nodes) {
  if (nodes.empty()) return 0.0;
  double sum = 0.0;
  for (NodeId v : nodes) sum += internal_degree_fraction(g, v, nodes);
  return sum / static_cast<double>(nodes.size());
}

std::vector<CommunityMetrics> compute_metrics(const Graph& g,
                                              const CommunitySet& set) {
  std::vector<CommunityMetrics> out;
  out.reserve(set.count());
  for (const Community& community : set.communities) {
    CommunityMetrics m;
    m.k = community.k;
    m.id = community.id;
    m.size = community.size();
    m.density = link_density(g, community.nodes);
    m.avg_odf = average_odf(g, community.nodes);
    out.push_back(m);
  }
  return out;
}

}  // namespace kcc
