// Structural metrics the paper reports per community (Sec. 4, Fig. 4.3/4.4).
//
// * size — number of member ASes.
// * link density (Lancichinetti et al. [17]) — fraction of present edges
//   among community members over the full-mesh count.
// * ODF — the paper follows Leskovec et al. [20]: a node's Out Degree
//   Fraction is the share of its total degree that leaves the community.
//   (The TR's prose inverts the wording, but Fig. 4.4(b)'s discussion —
//   near-clique crown communities having *high* ODF because of their many
//   external customer links — only matches the out/total reading, which we
//   implement. internal_degree_fraction() is also provided.)
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "cpm/community.h"
#include "graph/graph.h"

namespace kcc {

/// Edge-density of the induced subgraph on `nodes`: |E(S)| / (|S| choose 2).
/// Returns 0 for |S| < 2.
double link_density(const Graph& g, const NodeSet& nodes);

/// Degree of `v` counted only towards members of `nodes` (sorted unique).
std::size_t internal_degree(const Graph& g, NodeId v, const NodeSet& nodes);

/// Fraction of v's total degree that stays inside `nodes`. Nodes with
/// degree 0 report 0.
double internal_degree_fraction(const Graph& g, NodeId v, const NodeSet& nodes);

/// Out Degree Fraction of `v` w.r.t. `nodes`: 1 - internal fraction.
double out_degree_fraction(const Graph& g, NodeId v, const NodeSet& nodes);

/// Mean ODF over the members of `nodes` (paper's "average ODF").
double average_odf(const Graph& g, const NodeSet& nodes);

/// Mean internal-degree fraction over members.
double average_internal_fraction(const Graph& g, const NodeSet& nodes);

/// Per-community metric bundle for one CommunitySet.
struct CommunityMetrics {
  std::size_t k = 0;
  CommunityId id = 0;
  std::size_t size = 0;
  double density = 0.0;
  double avg_odf = 0.0;
};

std::vector<CommunityMetrics> compute_metrics(const Graph& g,
                                              const CommunitySet& set);

}  // namespace kcc
