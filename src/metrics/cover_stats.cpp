#include "metrics/cover_stats.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

CoverStats compute_cover_stats(const CommunitySet& set,
                               std::size_t num_nodes) {
  CoverStats stats;
  stats.k = set.k;
  stats.community_count = set.count();

  // Membership counts per node.
  std::vector<std::uint32_t> membership(num_nodes, 0);
  for (const Community& c : set.communities) {
    for (NodeId v : c.nodes) {
      require(v < num_nodes, "compute_cover_stats: node out of range");
      ++membership[v];
    }
    if (c.size() >= stats.size_histogram.size()) {
      stats.size_histogram.resize(c.size() + 1, 0);
    }
    ++stats.size_histogram[c.size()];
  }
  std::size_t membership_total = 0;
  for (NodeId v = 0; v < num_nodes; ++v) {
    const std::uint32_t m = membership[v];
    if (m == 0) continue;
    ++stats.covered_nodes;
    membership_total += m;
    stats.max_membership = std::max<std::size_t>(stats.max_membership, m);
    if (m >= stats.membership_histogram.size()) {
      stats.membership_histogram.resize(m + 1, 0);
    }
    ++stats.membership_histogram[m];
  }
  if (stats.covered_nodes > 0) {
    stats.mean_membership =
        static_cast<double>(membership_total) /
        static_cast<double>(stats.covered_nodes);
  }

  // Pairwise overlaps.
  stats.community_degree.assign(set.count(), 0);
  for (std::size_t a = 0; a < set.count(); ++a) {
    for (std::size_t b = a + 1; b < set.count(); ++b) {
      const std::size_t shared = intersection_size(
          set.communities[a].nodes, set.communities[b].nodes);
      if (shared == 0) continue;
      ++stats.overlapping_pairs;
      ++stats.community_degree[a];
      ++stats.community_degree[b];
      if (shared >= stats.overlap_size_histogram.size()) {
        stats.overlap_size_histogram.resize(shared + 1, 0);
      }
      ++stats.overlap_size_histogram[shared];
    }
  }
  if (!stats.community_degree.empty()) {
    std::size_t total = 0;
    for (std::size_t d : stats.community_degree) total += d;
    stats.mean_community_degree =
        static_cast<double>(total) /
        static_cast<double>(stats.community_degree.size());
  }
  return stats;
}

double cover_fraction(const CommunitySet& set, std::size_t num_nodes) {
  if (num_nodes == 0) return 0.0;
  std::vector<bool> covered(num_nodes, false);
  for (const Community& c : set.communities) {
    for (NodeId v : c.nodes) {
      require(v < num_nodes, "cover_fraction: node out of range");
      covered[v] = true;
    }
  }
  const auto count = static_cast<std::size_t>(
      std::count(covered.begin(), covered.end(), true));
  return static_cast<double>(count) / static_cast<double>(num_nodes);
}

}  // namespace kcc
