// Cover-level statistics of a k-clique community set (CFinder-style).
//
// Palla et al. characterise a cover by four distributions; we compute them
// per k so the Internet analysis can compare against the universal shapes
// reported for CPM covers:
//  * community size distribution;
//  * membership number m_v — how many communities a node belongs to;
//  * community degree — number of other communities a community overlaps;
//  * overlap size s_ov — shared nodes between overlapping community pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "cpm/community.h"

namespace kcc {

struct CoverStats {
  std::size_t k = 0;
  std::size_t community_count = 0;

  /// Nodes covered by at least one community.
  std::size_t covered_nodes = 0;

  /// membership_histogram[m] = number of covered nodes in exactly m
  /// communities (index 0 unused).
  std::vector<std::size_t> membership_histogram;
  double mean_membership = 0.0;
  std::size_t max_membership = 0;

  /// community_degree[i] = number of other communities community i shares
  /// at least one node with.
  std::vector<std::size_t> community_degree;
  double mean_community_degree = 0.0;

  /// overlap_size_histogram[s] = number of community pairs sharing exactly
  /// s nodes (s >= 1).
  std::vector<std::size_t> overlap_size_histogram;
  std::size_t overlapping_pairs = 0;

  /// size_histogram[s] = number of communities of size s.
  std::vector<std::size_t> size_histogram;
};

/// Computes the cover statistics for one CommunitySet. `num_nodes` is the
/// underlying graph's node count.
CoverStats compute_cover_stats(const CommunitySet& set, std::size_t num_nodes);

/// Fraction of nodes covered by at least one community of order k
/// (the "community coverage" CFinder reports).
double cover_fraction(const CommunitySet& set, std::size_t num_nodes);

}  // namespace kcc
