#include "metrics/zp_roles.h"

#include <cmath>

#include "common/error.h"
#include "metrics/community_metrics.h"

namespace kcc {

const char* zp_role_name(ZpRole role) {
  switch (role) {
    case ZpRole::kUltraPeripheral:
      return "ultra-peripheral";
    case ZpRole::kPeripheral:
      return "peripheral";
    case ZpRole::kConnector:
      return "connector";
    case ZpRole::kKinless:
      return "kinless";
    case ZpRole::kProvincialHub:
      return "provincial-hub";
    case ZpRole::kConnectorHub:
      return "connector-hub";
    case ZpRole::kKinlessHub:
      return "kinless-hub";
  }
  return "?";
}

ZpRole classify_zp(double z, double participation) {
  if (z < 2.5) {
    if (participation <= 0.05) return ZpRole::kUltraPeripheral;
    if (participation <= 0.62) return ZpRole::kPeripheral;
    if (participation <= 0.80) return ZpRole::kConnector;
    return ZpRole::kKinless;
  }
  if (participation <= 0.30) return ZpRole::kProvincialHub;
  if (participation <= 0.75) return ZpRole::kConnectorHub;
  return ZpRole::kKinlessHub;
}

std::vector<ZpScore> zp_scores(const Graph& g, const CommunitySet& set) {
  std::vector<ZpScore> out;

  // Per-community internal-degree statistics.
  for (const Community& community : set.communities) {
    const std::size_t n = community.size();
    std::vector<std::size_t> internal(n);
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      internal[i] = internal_degree(g, community.nodes[i], community.nodes);
      mean += static_cast<double>(internal[i]);
    }
    mean /= static_cast<double>(n);
    double variance = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = static_cast<double>(internal[i]) - mean;
      variance += d * d;
    }
    variance /= static_cast<double>(n);
    const double stddev = std::sqrt(variance);

    for (std::size_t i = 0; i < n; ++i) {
      ZpScore score;
      score.node = community.nodes[i];
      score.community = community.id;
      score.z = stddev > 0.0
                    ? (static_cast<double>(internal[i]) - mean) / stddev
                    : 0.0;
      out.push_back(score);
    }
  }

  // Participation coefficient per node (computed once; copied to each of
  // the node's membership rows).
  std::vector<double> participation(g.num_nodes(), 0.0);
  std::vector<bool> computed(g.num_nodes(), false);
  for (ZpScore& score : out) {
    if (computed[score.node]) {
      score.participation = participation[score.node];
      continue;
    }
    const NodeId v = score.node;
    const std::size_t degree = g.degree(v);
    double sum_sq = 0.0;
    if (degree > 0) {
      std::size_t assigned = 0;
      for (const Community& community : set.communities) {
        const std::size_t kc = internal_degree(g, v, community.nodes);
        assigned += kc;
        const double frac =
            static_cast<double>(kc) / static_cast<double>(degree);
        sum_sq += frac * frac;
      }
      // Links to nodes outside every community act as one pseudo-community.
      // A link can be double-counted across overlapping communities; clamp.
      const std::size_t outside =
          assigned >= degree ? 0 : degree - assigned;
      const double frac =
          static_cast<double>(outside) / static_cast<double>(degree);
      sum_sq += frac * frac;
    }
    participation[v] = degree > 0 ? 1.0 - std::min(1.0, sum_sq) : 0.0;
    computed[v] = true;
    score.participation = participation[v];
  }
  return out;
}

std::vector<std::size_t> zp_role_histogram(
    const std::vector<ZpScore>& scores) {
  std::vector<std::size_t> histogram(7, 0);
  for (const ZpScore& s : scores) {
    ++histogram[static_cast<std::size_t>(classify_zp(s.z, s.participation))];
  }
  return histogram;
}

}  // namespace kcc
