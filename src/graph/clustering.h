// Triangle counting and clustering coefficients.
//
// Standard characterisation of the AS-level topology (high clustering in
// the IXP-rich core is precisely what seeds k-cliques); also used to sanity
// check the synthetic generator against real-Internet shapes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// Number of triangles each node participates in. Total graph triangles =
/// sum / 3.
std::vector<std::uint64_t> triangles_per_node(const Graph& g);

/// Total number of triangles in the graph.
std::uint64_t triangle_count(const Graph& g);

/// Local clustering coefficient of `v`: triangles(v) / (deg(v) choose 2);
/// 0 for degree < 2.
double local_clustering(const Graph& g, NodeId v);

/// Mean local clustering over all nodes (Watts-Strogatz style).
double average_clustering(const Graph& g);

/// Global transitivity: 3 * triangles / open-or-closed wedges.
double transitivity(const Graph& g);

}  // namespace kcc
