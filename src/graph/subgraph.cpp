#include "graph/subgraph.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

NodeSet InducedSubgraph::lift(const NodeSet& local) const {
  NodeSet out;
  out.reserve(local.size());
  for (NodeId v : local) {
    require(v < to_parent.size(), "InducedSubgraph::lift: node out of range");
    out.push_back(to_parent[v]);
  }
  // to_parent is sorted, and `local` is sorted, so `out` is already sorted.
  return out;
}

InducedSubgraph induced_subgraph(const Graph& g, const NodeSet& nodes) {
  require(is_sorted_unique(nodes),
          "induced_subgraph: node set must be sorted and duplicate-free");
  InducedSubgraph sub;
  sub.to_parent = nodes;

  // parent id -> local id, only for members.
  constexpr NodeId kAbsent = static_cast<NodeId>(-1);
  std::vector<NodeId> local_of(g.num_nodes(), kAbsent);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    require(nodes[i] < g.num_nodes(), "induced_subgraph: node out of range");
    local_of[nodes[i]] = static_cast<NodeId>(i);
  }

  GraphBuilder builder(nodes.size());
  for (NodeId v : nodes) {
    for (NodeId w : g.neighbors(v)) {
      if (v < w && local_of[w] != kAbsent) {
        builder.add_edge(local_of[v], local_of[w]);
      }
    }
  }
  builder.ensure_nodes(nodes.size());
  sub.graph = builder.build();
  return sub;
}

std::size_t induced_edge_count(const Graph& g, const NodeSet& nodes) {
  require(is_sorted_unique(nodes),
          "induced_edge_count: node set must be sorted and duplicate-free");
  std::size_t count = 0;
  for (NodeId v : nodes) {
    require(v < g.num_nodes(), "induced_edge_count: node out of range");
    const auto adj = g.neighbors(v);
    // Merge-count neighbours of v that are members and larger than v.
    std::size_t i = 0, j = 0;
    while (i < adj.size() && j < nodes.size()) {
      if (adj[i] < nodes[j]) {
        ++i;
      } else if (nodes[j] < adj[i]) {
        ++j;
      } else {
        if (adj[i] > v) ++count;
        ++i;
        ++j;
      }
    }
  }
  return count;
}

}  // namespace kcc
