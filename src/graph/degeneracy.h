// Degeneracy ordering and core numbers (Batagelj–Zaversnik peeling).
//
// Two consumers:
//  * Bron–Kerbosch over a degeneracy ordering bounds recursion width by the
//    degeneracy d (the enumeration runs in O(d * n * 3^(d/3)) time), which is
//    what makes maximal-clique enumeration feasible on AS-scale graphs.
//  * The k-core baseline (paper Sec. 1 related work, Seidman 1983) is a
//    direct read-out of the core numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

struct DegeneracyResult {
  /// Nodes in peeling order (smallest-degree-first removal).
  std::vector<NodeId> order;
  /// position_of[v] is v's index within `order`.
  std::vector<std::uint32_t> position_of;
  /// core_number[v] = largest k such that v belongs to the k-core.
  std::vector<std::uint32_t> core_number;
  /// Graph degeneracy = max core number (0 for edgeless graphs).
  std::uint32_t degeneracy = 0;
};

/// O(n + m) bucket-queue peeling.
DegeneracyResult degeneracy_order(const Graph& g);

}  // namespace kcc
