#include <algorithm>

#include "common/error.h"
#include "graph/graph.h"

namespace kcc {

GraphBuilder::GraphBuilder(std::size_t num_nodes) : num_nodes_(num_nodes) {}

void GraphBuilder::ensure_nodes(std::size_t num_nodes) {
  num_nodes_ = std::max(num_nodes_, num_nodes);
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  require(u != v, "GraphBuilder::add_edge: self-loops are not allowed");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  ensure_nodes(static_cast<std::size_t>(v) + 1);
}

Graph GraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes_; ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Edges were processed in (u, v)-sorted order, so each node's neighbour
  // list of larger ids is sorted, but smaller-id neighbours interleave;
  // sort each list to establish the invariant.
  for (std::size_t v = 0; v < num_nodes_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }

  num_nodes_ = 0;
  edges_.clear();
  return g;
}

}  // namespace kcc
