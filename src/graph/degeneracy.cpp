#include "graph/degeneracy.h"

#include <algorithm>

namespace kcc {

DegeneracyResult degeneracy_order(const Graph& g) {
  const std::size_t n = g.num_nodes();
  DegeneracyResult result;
  result.order.reserve(n);
  result.position_of.assign(n, 0);
  result.core_number.assign(n, 0);
  if (n == 0) return result;

  // Bucket queue keyed by current (residual) degree.
  std::vector<std::uint32_t> degree(n);
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.degree(v));
    max_deg = std::max<std::size_t>(max_deg, degree[v]);
  }
  // bucket[d] holds nodes with residual degree d; pos_in_bucket enables O(1)
  // moves between buckets (classic Batagelj–Zaversnik layout).
  std::vector<std::vector<NodeId>> bucket(max_deg + 1);
  std::vector<std::uint32_t> pos_in_bucket(n);
  for (NodeId v = 0; v < n; ++v) {
    pos_in_bucket[v] = static_cast<std::uint32_t>(bucket[degree[v]].size());
    bucket[degree[v]].push_back(v);
  }

  std::vector<bool> removed(n, false);
  std::uint32_t current_core = 0;
  std::size_t cursor = 0;  // smallest possibly-non-empty bucket
  for (std::size_t step = 0; step < n; ++step) {
    while (cursor <= max_deg && bucket[cursor].empty()) ++cursor;
    // Peeling can re-add nodes to smaller buckets; rewind when needed.
    // (We rewind eagerly on every decrement below, so cursor is exact here.)
    const NodeId v = bucket[cursor].back();
    bucket[cursor].pop_back();
    removed[v] = true;
    current_core = std::max(current_core, static_cast<std::uint32_t>(cursor));
    result.core_number[v] = current_core;
    result.position_of[v] = static_cast<std::uint32_t>(result.order.size());
    result.order.push_back(v);

    for (NodeId w : g.neighbors(v)) {
      if (removed[w] || degree[w] <= cursor) continue;
      // Move w from bucket[degree[w]] to bucket[degree[w] - 1].
      auto& from = bucket[degree[w]];
      const std::uint32_t pos = pos_in_bucket[w];
      const NodeId moved = from.back();
      from[pos] = moved;
      pos_in_bucket[moved] = pos;
      from.pop_back();
      --degree[w];
      pos_in_bucket[w] = static_cast<std::uint32_t>(bucket[degree[w]].size());
      bucket[degree[w]].push_back(w);
      if (degree[w] < cursor) cursor = degree[w];
    }
  }
  result.degeneracy = current_core;
  return result;
}

}  // namespace kcc
