// Immutable undirected unweighted graph in compressed-sparse-row form.
//
// This is the topology substrate of the library: the Internet AS-level graph
// (paper Sec. 2.1) is loaded/generated into a Graph, and every algorithm
// (clique enumeration, percolation, k-core, k-dense, metrics) reads it
// through this interface. Neighbour lists are sorted, enabling O(deg)
// merge-based intersection, which dominates clique-enumeration cost.
//
// Invariants: no self-loops, no parallel edges, adjacency sorted ascending.
// Construct through GraphBuilder (which establishes the invariants) or the
// checked Graph::from_edges factory.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace kcc {

class GraphBuilder;

class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Builds a graph with `num_nodes` nodes from an edge list. Self-loops are
  /// rejected; duplicate edges (in either orientation) are merged.
  static Graph from_edges(std::size_t num_nodes,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  std::size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t num_edges() const { return adjacency_.size() / 2; }

  /// Sorted neighbours of `v`.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Edge test over the smaller adjacency list: linear scan for short
  /// lists, galloping (exponential bracket + binary search) for hub lists.
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges as (u, v) pairs with u < v, ordered by (u, v).
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Fraction of present edges over possible edges; 0 for graphs with < 2
  /// nodes.
  double density() const;

  /// Maximum degree over all nodes (0 for the empty graph).
  std::size_t max_degree() const;

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // size num_nodes + 1
  std::vector<NodeId> adjacency_;     // size 2 * num_edges
};

/// Incremental edge collector that produces a canonical Graph.
///
/// add_edge accepts edges in any order and orientation; self-loops raise
/// kcc::Error (the AS topology is loop-free by construction) and duplicates
/// are merged silently, matching the paper's "spurious data removed" step.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes = 0);

  /// Grows the node count to at least `num_nodes`.
  void ensure_nodes(std::size_t num_nodes);

  std::size_t num_nodes() const { return num_nodes_; }

  /// Records the undirected edge {u, v}; grows the node count as needed.
  void add_edge(NodeId u, NodeId v);

  /// Finalises into a Graph. The builder is left empty.
  Graph build();

 private:
  std::size_t num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace kcc
