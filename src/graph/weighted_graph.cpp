#include "graph/weighted_graph.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

EdgeWeights::EdgeWeights(const Graph& g, std::vector<double> weights)
    : edges_(g.edges()), weights_(std::move(weights)) {
  require(weights_.size() == edges_.size(),
          "EdgeWeights: weight count does not match edge count");
  for (double w : weights_) {
    require(w > 0.0, "EdgeWeights: weights must be positive");
  }
}

EdgeWeights EdgeWeights::uniform(const Graph& g) {
  return EdgeWeights(g, std::vector<double>(g.num_edges(), 1.0));
}

double EdgeWeights::weight(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(),
                                   std::make_pair(u, v));
  require(it != edges_.end() && *it == std::make_pair(u, v),
          "EdgeWeights::weight: no such edge");
  return weights_[static_cast<std::size_t>(it - edges_.begin())];
}

double EdgeWeights::min_weight() const {
  require(!weights_.empty(), "EdgeWeights::min_weight: no edges");
  return *std::min_element(weights_.begin(), weights_.end());
}

double EdgeWeights::max_weight() const {
  require(!weights_.empty(), "EdgeWeights::max_weight: no edges");
  return *std::max_element(weights_.begin(), weights_.end());
}

EdgeWeights weights_from_ixps(const Graph& g, const IxpDataset& ixps) {
  const auto edges = g.edges();
  std::vector<double> weights;
  weights.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    const auto iu = ixps.ixps_of(u);
    const auto iv = ixps.ixps_of(v);
    weights.push_back(1.0 + double(intersection_size(iu, iv)));
  }
  return EdgeWeights(g, std::move(weights));
}

}  // namespace kcc
