// Degeneracy-reduced bitset adjacency — the substrate of the bitset
// Bron–Kerbosch kernel (clique/enumerator.h).
//
// A vertex subproblem of the degeneracy-ordered enumeration touches only the
// closed neighbourhood of its outer vertex v: candidates P are v's neighbours
// that come later in the degeneracy ordering, excluded X the earlier ones,
// and the whole recursion below v intersects subsets of N(v) with each other.
// BitGraph lowers one subproblem onto that local universe: members are
// N(v) in ascending NodeId order (exactly the Graph CSR row, so no copy or
// sort), and the adjacency among members is packed into row-blocked 64-bit
// words — row i holds one bit per member j with members[i] ~ members[j].
// Every P/X set of the recursion is then a bit mask over the members, and
// set intersection / pivot scoring run word-parallel with popcount instead
// of merging sorted id lists.
//
// The BitGraph itself is built once per enumeration (O(n) — it only snapshots
// the degeneracy positions); the quadratic row blocks are built per
// subproblem into caller-owned Scratch and reused across the subproblem's
// whole recursion. Row building scans a degeneracy-oriented CSR built once
// at construction: each edge {a, b} is stored only on its earlier-position
// endpoint, so every in-subproblem edge is discovered exactly once (setting
// both mirror bits) and the per-node scan length is bounded by the
// degeneracy instead of the degree — hubs sit late in the ordering, so
// their out-lists are short no matter how many neighbours they have.
// Membership tests go through a NodeId-indexed bitmap (n/8 bytes, so it
// stays cache-resident even on million-node graphs where a word-per-node
// map would thrash); the s bits set for a subproblem are cleared again
// before prepare() returns, so the bitmap never needs a full wipe.
//
// Local indices ascend with NodeId by construction, which is what keeps the
// bitset kernel's visit order identical to the sparse merge kernel's (both
// iterate candidates in ascending NodeId order and break pivot ties the same
// way) — the property behind the backend-independent canonical_digest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/degeneracy.h"
#include "graph/graph.h"

namespace kcc {

/// One vertex subproblem lowered onto bit rows. Valid until the next
/// prepare() call on the same Scratch.
struct SubproblemBits {
  /// N(v) in ascending NodeId order; local index i names members[i].
  std::span<const NodeId> members;
  /// 64-bit words per row / per mask.
  std::size_t words = 0;
  /// members.size() rows of `words` words each.
  const std::uint64_t* rows = nullptr;
  /// Depth-0 candidate mask (later neighbours); mutated by the kernel.
  std::uint64_t* p_mask = nullptr;
  /// Depth-0 excluded mask (earlier neighbours); mutated by the kernel.
  std::uint64_t* x_mask = nullptr;
  /// Bits set in p_mask at depth 0.
  std::size_t p_count = 0;

  const std::uint64_t* row(std::size_t local) const {
    return rows + local * words;
  }
};

class BitGraph {
 public:
  /// Reusable per-worker buffers. A Scratch may serve many subproblems (and
  /// many BitGraphs) in sequence; it grows to the largest universe seen.
  struct Scratch {
    std::vector<std::uint64_t> rows;         // members x words row blocks
    std::vector<std::uint64_t> stack;        // kernel P/X/branch masks per depth
    std::vector<std::uint64_t> member_bits;  // NodeId-indexed membership bitmap
    std::vector<std::uint32_t> local;        // NodeId -> local index (iff member)
  };

  /// Snapshots the degeneracy positions of `deg` (which must describe `g`).
  /// Holds a reference to `g`; the graph must outlive the BitGraph.
  BitGraph(const Graph& g, const DegeneracyResult& deg);

  std::uint32_t degeneracy() const { return degeneracy_; }
  std::uint32_t position_of(NodeId v) const { return position_of_[v]; }

  /// Builds the row blocks and depth-0 P/X masks for outer vertex `v` into
  /// `scratch`. The returned view (and the depth slots of scratch.stack the
  /// kernel recurses into) stays valid until the next prepare() call.
  SubproblemBits prepare(NodeId v, Scratch& scratch) const;

 private:
  const Graph& g_;
  std::vector<std::uint32_t> position_of_;
  // Degeneracy-oriented CSR: out_adj_[out_offsets_[u] .. out_offsets_[u+1])
  // holds the neighbours of u with a later degeneracy position, ascending
  // by NodeId. Out-degrees are bounded by the degeneracy; row building
  // scans only these lists — see the header comment.
  std::vector<std::size_t> out_offsets_;
  std::vector<NodeId> out_adj_;
  std::uint32_t degeneracy_ = 0;
};

}  // namespace kcc
