#include "graph/bit_graph.h"

#include <algorithm>

namespace kcc {

BitGraph::BitGraph(const Graph& g, const DegeneracyResult& deg)
    : g_(g), position_of_(deg.position_of), degeneracy_(deg.degeneracy) {
  // Degeneracy-oriented CSR: each edge lives on its earlier-position
  // endpoint only. Positions are a permutation, so exactly one endpoint
  // qualifies and the lists sum to num_edges(). Filtering the sorted CSR
  // rows keeps each out-list ascending by NodeId.
  const std::size_t n = g.num_nodes();
  out_offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    std::size_t out = 0;
    for (const NodeId w : g.neighbors(u)) {
      if (position_of_[w] > position_of_[u]) ++out;
    }
    out_offsets_[u + 1] = out_offsets_[u] + out;
  }
  out_adj_.resize(out_offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    std::size_t cursor = out_offsets_[u];
    for (const NodeId w : g.neighbors(u)) {
      if (position_of_[w] > position_of_[u]) out_adj_[cursor++] = w;
    }
  }
}

SubproblemBits BitGraph::prepare(NodeId v, Scratch& scratch) const {
  const std::span<const NodeId> members = g_.neighbors(v);
  const std::size_t s = members.size();
  const std::size_t words = (s + 63) / 64;

  SubproblemBits sub;
  sub.members = members;
  sub.words = words;
  if (s == 0) return sub;  // isolated vertex: the kernel emits {v} directly

  // Membership bitmap: bit u set iff u is a member of the *current*
  // subproblem, in which case local[u] is its local index. The bitmap is
  // kept clean between subproblems by clearing exactly the bits set here
  // before returning.
  const std::size_t bitmap_words = (g_.num_nodes() + 63) / 64;
  if (scratch.member_bits.size() < bitmap_words) {
    scratch.member_bits.assign(bitmap_words, 0ULL);
    scratch.local.resize(g_.num_nodes());
  }
  std::uint64_t* const member_bits = scratch.member_bits.data();
  for (std::size_t i = 0; i < s; ++i) {
    member_bits[members[i] / 64] |= 1ULL << (members[i] % 64);
    scratch.local[members[i]] = static_cast<std::uint32_t>(i);
  }

  // Row blocks: row i = adjacency of members[i] restricted to members.
  if (scratch.rows.size() < s * words) scratch.rows.resize(s * words);
  std::fill(scratch.rows.begin(), scratch.rows.begin() + s * words, 0ULL);
  // Kernel stack: three masks (P, X, branch) per recursion depth; depth is
  // bounded by |P| + 1 <= s + 1.
  const std::size_t stack_words = (s + 2) * 3 * words;
  if (scratch.stack.size() < stack_words) scratch.stack.resize(stack_words);

  std::uint64_t* p_mask = scratch.stack.data();
  std::uint64_t* x_mask = p_mask + words;
  std::fill(p_mask, p_mask + 2 * words, 0ULL);

  const std::uint32_t pv = position_of_[v];
  std::uint64_t* const rows = scratch.rows.data();
  for (std::size_t i = 0; i < s; ++i) {
    const NodeId u = members[i];
    if (position_of_[u] > pv) {
      p_mask[i / 64] |= 1ULL << (i % 64);
      ++sub.p_count;
    } else {
      x_mask[i / 64] |= 1ULL << (i % 64);
    }
    // Symmetric fill: every in-subproblem edge is stored on exactly one
    // endpoint of the degeneracy orientation, so it is found exactly once
    // and sets both mirror bits. Scan length is bounded by the degeneracy,
    // not the degree.
    for (std::size_t a = out_offsets_[u]; a < out_offsets_[u + 1]; ++a) {
      const NodeId w = out_adj_[a];
      if ((member_bits[w / 64] >> (w % 64)) & 1ULL) {
        const std::uint32_t j = scratch.local[w];
        rows[i * words + j / 64] |= 1ULL << (j % 64);
        rows[j * words + i / 64] |= 1ULL << (i % 64);
      }
    }
  }
  for (std::size_t i = 0; i < s; ++i) {
    member_bits[members[i] / 64] &= ~(1ULL << (members[i] % 64));
  }

  sub.rows = scratch.rows.data();
  sub.p_mask = p_mask;
  sub.x_mask = x_mask;
  return sub;
}

}  // namespace kcc
