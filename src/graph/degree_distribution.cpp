#include "graph/degree_distribution.h"

#include <cmath>

#include "common/error.h"

namespace kcc {

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> histogram(g.max_degree() + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ++histogram[g.degree(v)];
  }
  if (g.num_nodes() == 0) histogram.assign(1, 0);
  return histogram;
}

std::vector<double> degree_ccdf(const Graph& g) {
  const auto histogram = degree_histogram(g);
  std::vector<double> ccdf(histogram.size(), 0.0);
  if (g.num_nodes() == 0) return ccdf;
  std::size_t at_least = g.num_nodes();
  for (std::size_t d = 0; d < histogram.size(); ++d) {
    ccdf[d] = static_cast<double>(at_least) /
              static_cast<double>(g.num_nodes());
    at_least -= histogram[d];
  }
  return ccdf;
}

PowerLawFit fit_power_law(const Graph& g, std::size_t x_min) {
  require(x_min >= 1, "fit_power_law: x_min must be >= 1");
  PowerLawFit fit;
  fit.x_min = x_min;
  double log_sum = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t d = g.degree(v);
    if (d >= x_min) {
      ++fit.tail_size;
      log_sum += std::log(static_cast<double>(d) /
                          (static_cast<double>(x_min) - 0.5));
    }
  }
  require(fit.tail_size >= 2 && log_sum > 0.0,
          "fit_power_law: tail too small for a fit");
  fit.alpha = 1.0 + static_cast<double>(fit.tail_size) / log_sum;
  return fit;
}

}  // namespace kcc
