// Edge-weighted view over a Graph.
//
// The AS-level topology itself is unweighted (paper Sec. 2.1), but the
// weighted Clique Percolation Method (Palla et al.'s CPMw, implemented in
// cpm/weighted_cpm.h as a library extension) needs per-edge weights. For
// the Internet use case a natural weight is peering strength — e.g. 1 plus
// the number of IXPs shared by the endpoints (see weights_from_ixps).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "data/ixp.h"
#include "graph/graph.h"

namespace kcc {

/// Immutable weight table keyed by the graph's canonical edge order
/// (Graph::edges(): (u, v) with u < v, sorted).
class EdgeWeights {
 public:
  EdgeWeights() = default;

  /// Builds from per-edge weights aligned with g.edges(). Weights must be
  /// positive and the vector must match the edge count.
  EdgeWeights(const Graph& g, std::vector<double> weights);

  /// Uniform weights (all 1.0).
  static EdgeWeights uniform(const Graph& g);

  /// Weight of edge {u, v}; throws when the edge does not exist.
  double weight(NodeId u, NodeId v) const;

  std::size_t edge_count() const { return weights_.size(); }

  double min_weight() const;
  double max_weight() const;

 private:
  std::vector<std::pair<NodeId, NodeId>> edges_;  // sorted, u < v
  std::vector<double> weights_;
};

/// Internet-flavoured weights: weight(u, v) = 1 + |IXPs shared by u and v|.
EdgeWeights weights_from_ixps(const Graph& g, const IxpDataset& ixps);

}  // namespace kcc
