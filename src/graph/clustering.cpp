#include "graph/clustering.h"

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

std::vector<std::uint64_t> triangles_per_node(const Graph& g) {
  std::vector<std::uint64_t> count(g.num_nodes(), 0);
  // For each edge (u, v) with u < v, the common neighbours w > v close a
  // distinct triangle; credit all three corners.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto adj_u = g.neighbors(u);
    for (NodeId v : adj_u) {
      if (v <= u) continue;
      const auto adj_v = g.neighbors(v);
      // Merge-intersect the two sorted lists above v.
      std::size_t i = 0, j = 0;
      while (i < adj_u.size() && j < adj_v.size()) {
        if (adj_u[i] < adj_v[j]) {
          ++i;
        } else if (adj_v[j] < adj_u[i]) {
          ++j;
        } else {
          const NodeId w = adj_u[i];
          if (w > v) {
            ++count[u];
            ++count[v];
            ++count[w];
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return count;
}

std::uint64_t triangle_count(const Graph& g) {
  const auto per_node = triangles_per_node(g);
  std::uint64_t total = 0;
  for (auto c : per_node) total += c;
  return total / 3;
}

double local_clustering(const Graph& g, NodeId v) {
  require(v < g.num_nodes(), "local_clustering: node out of range");
  const std::size_t degree = g.degree(v);
  if (degree < 2) return 0.0;
  const auto adj = g.neighbors(v);
  std::uint64_t links = 0;
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (std::size_t j = i + 1; j < adj.size(); ++j) {
      if (g.has_edge(adj[i], adj[j])) ++links;
    }
  }
  const double wedges = double(degree) * double(degree - 1) / 2.0;
  return static_cast<double>(links) / wedges;
}

double average_clustering(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  const auto triangles = triangles_per_node(g);
  double sum = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t degree = g.degree(v);
    if (degree < 2) continue;
    const double wedges = double(degree) * double(degree - 1) / 2.0;
    sum += static_cast<double>(triangles[v]) / wedges;
  }
  return sum / static_cast<double>(g.num_nodes());
}

double transitivity(const Graph& g) {
  const auto triangles = triangles_per_node(g);
  std::uint64_t closed = 0;  // triangle corners = closed wedges
  double wedges = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    closed += triangles[v];
    const double degree = static_cast<double>(g.degree(v));
    wedges += degree * (degree - 1.0) / 2.0;
  }
  if (wedges == 0.0) return 0.0;
  return static_cast<double>(closed) / wedges;
}

}  // namespace kcc
