// Degree distribution analysis.
//
// The AS-level topology's heavy-tailed degree distribution is its most
// famous property; the generator must reproduce it (tested), and the `kcc
// info` tool reports it. The power-law fit follows the discrete MLE of
// Clauset-Shalizi-Newman with a fixed x_min (full KS minimisation is out of
// scope).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace kcc {

/// histogram[d] = number of nodes with degree exactly d.
std::vector<std::size_t> degree_histogram(const Graph& g);

/// Complementary CDF: ccdf[d] = fraction of nodes with degree >= d.
std::vector<double> degree_ccdf(const Graph& g);

struct PowerLawFit {
  double alpha = 0.0;      // exponent of p(d) ~ d^-alpha
  std::size_t x_min = 1;   // smallest degree included in the fit
  std::size_t tail_size = 0;  // nodes with degree >= x_min
};

/// Discrete MLE alpha = 1 + n / sum(ln(d / (x_min - 0.5))) over the tail.
/// Requires at least two tail nodes with degree >= x_min >= 1.
PowerLawFit fit_power_law(const Graph& g, std::size_t x_min = 2);

}  // namespace kcc
