// Connectivity and degree statistics over Graph.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// Result of a connected-components labelling.
struct ComponentLabeling {
  std::vector<std::uint32_t> component_of;  // per node, dense ids [0, count)
  std::size_t count = 0;

  /// Sizes per component id.
  std::vector<std::size_t> sizes() const;
};

/// Labels connected components via BFS; component ids are assigned in order
/// of their smallest node, so the labelling is deterministic.
ComponentLabeling connected_components(const Graph& g);

/// Node set of the largest connected component (ties broken by smallest
/// member node id). Empty for the empty graph.
NodeSet largest_component(const Graph& g);

/// BFS hop distances from `source`; unreachable nodes get
/// std::numeric_limits<std::uint32_t>::max().
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Summary degree statistics.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
};

DegreeStats degree_stats(const Graph& g);

/// Mean over `nodes` of each node's degree *in g* (the paper reports the
/// "average Internet degree" of community members this way).
double mean_degree(const Graph& g, const NodeSet& nodes);

}  // namespace kcc
