#include "graph/graph_algorithms.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace kcc {

std::vector<std::size_t> ComponentLabeling::sizes() const {
  std::vector<std::size_t> out(count, 0);
  for (auto c : component_of) ++out[c];
  return out;
}

ComponentLabeling connected_components(const Graph& g) {
  constexpr std::uint32_t kUnlabelled = std::numeric_limits<std::uint32_t>::max();
  ComponentLabeling result;
  result.component_of.assign(g.num_nodes(), kUnlabelled);
  std::vector<NodeId> frontier;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (result.component_of[start] != kUnlabelled) continue;
    const auto comp = static_cast<std::uint32_t>(result.count++);
    result.component_of[start] = comp;
    frontier.assign(1, start);
    while (!frontier.empty()) {
      const NodeId v = frontier.back();
      frontier.pop_back();
      for (NodeId w : g.neighbors(v)) {
        if (result.component_of[w] == kUnlabelled) {
          result.component_of[w] = comp;
          frontier.push_back(w);
        }
      }
    }
  }
  return result;
}

NodeSet largest_component(const Graph& g) {
  const ComponentLabeling labels = connected_components(g);
  if (labels.count == 0) return {};
  const auto sizes = labels.sizes();
  const std::size_t best =
      static_cast<std::size_t>(std::max_element(sizes.begin(), sizes.end()) -
                               sizes.begin());
  NodeSet out;
  out.reserve(sizes[best]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (labels.component_of[v] == best) out.push_back(v);
  }
  return out;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  require(source < g.num_nodes(), "bfs_distances: source out of range");
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_nodes(), kInf);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (NodeId w : g.neighbors(v)) {
      if (dist[w] == kInf) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.num_nodes() == 0) return s;
  std::vector<std::size_t> degrees(g.num_nodes());
  std::size_t total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degrees[v] = g.degree(v);
    total += degrees[v];
  }
  std::sort(degrees.begin(), degrees.end());
  s.min = degrees.front();
  s.max = degrees.back();
  s.mean = static_cast<double>(total) / static_cast<double>(degrees.size());
  const std::size_t mid = degrees.size() / 2;
  s.median = degrees.size() % 2 == 1
                 ? static_cast<double>(degrees[mid])
                 : (static_cast<double>(degrees[mid - 1]) +
                    static_cast<double>(degrees[mid])) /
                       2.0;
  return s;
}

double mean_degree(const Graph& g, const NodeSet& nodes) {
  if (nodes.empty()) return 0.0;
  std::size_t total = 0;
  for (NodeId v : nodes) {
    require(v < g.num_nodes(), "mean_degree: node out of range");
    total += g.degree(v);
  }
  return static_cast<double>(total) / static_cast<double>(nodes.size());
}

}  // namespace kcc
