// Induced subgraphs with node-id translation.
//
// The paper's "tag-induced subgraph" (Sec. 2.4, after Palla et al. 2008) is
// the subgraph made of all edges whose endpoints both carry a tag — i.e. the
// node-induced subgraph on the tagged node set. InducedSubgraph keeps the
// mapping back to the parent graph so communities computed inside a subgraph
// can be compared with parent-graph node sets.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

struct InducedSubgraph {
  Graph graph;                     // nodes re-labelled to [0, nodes.size())
  std::vector<NodeId> to_parent;   // subgraph id -> parent id (sorted)

  /// Translates a subgraph-local node set back to parent ids.
  NodeSet lift(const NodeSet& local) const;
};

/// Node-induced subgraph on `nodes` (must be sorted unique, ids valid in g).
InducedSubgraph induced_subgraph(const Graph& g, const NodeSet& nodes);

/// Number of edges of `g` with both endpoints in `nodes` (sorted unique).
/// This is the subgraph's edge count without materialising it.
std::size_t induced_edge_count(const Graph& g, const NodeSet& nodes);

}  // namespace kcc
