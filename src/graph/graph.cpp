#include "graph/graph.h"

#include <algorithm>

#include "common/error.h"

namespace kcc {

Graph Graph::from_edges(std::size_t num_nodes,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  builder.ensure_nodes(num_nodes);
  return builder.build();
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return false;
  if (degree(u) > degree(v)) std::swap(u, v);
  auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

double Graph::density() const {
  const double n = static_cast<double>(num_nodes());
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0) / 2.0);
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace kcc
