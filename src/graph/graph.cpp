#include "graph/graph.h"

#include <algorithm>

#include "common/error.h"

namespace kcc {

Graph Graph::from_edges(std::size_t num_nodes,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  builder.ensure_nodes(num_nodes);
  return builder.build();
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes() || u == v) return false;
  // Probe the smaller adjacency list: on power-law topologies most queries
  // involve a stub whose list is a handful of entries, even when the other
  // endpoint is a hub with thousands.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto adj = neighbors(u);
  const std::size_t n = adj.size();
  // Tiny lists: a linear scan beats binary search (no mispredicted halving,
  // one cache line).
  if (n <= 16) {
    for (const NodeId w : adj) {
      if (w >= v) return w == v;
    }
    return false;
  }
  // Hub lists: galloping search. Degree-sorted CSR rows cluster low ids at
  // the front, so doubling the probe index brackets v in O(log(position))
  // instead of O(log n), then a binary search finishes inside the bracket.
  std::size_t hi = 1;
  while (hi < n && adj[hi] < v) hi <<= 1;
  const std::size_t lo = hi >> 1;
  return std::binary_search(adj.begin() + lo, adj.begin() + std::min(hi + 1, n),
                            v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

double Graph::density() const {
  const double n = static_cast<double>(num_nodes());
  if (n < 2) return 0.0;
  return static_cast<double>(num_edges()) / (n * (n - 1.0) / 2.0);
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace kcc
