// Persistence for CPM results.
//
// The paper's community extraction took 93 hours on 48 cores — results of
// that magnitude must be storable and reloadable without recomputation.
// The format is a line-oriented text file:
//
//   kcc-cpm-result 1          (magic + version)
//   meta <min_k> <max_k> <num_cliques> <num_nodes>
//   clique <id> <node> <node> ...
//   set <k> <num_communities>
//   community <k> <id> nodes <n...> cliques <c...>
//
// Node ids are dense graph ids; pair the file with the edge list it was
// computed from.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "cpm/community.h"

namespace kcc {

/// Writes `result` (which must cover a valid k range) to a stream/file.
void write_cpm_result(std::ostream& out, const CpmResult& result);
void write_cpm_result_file(const std::string& path, const CpmResult& result);

/// Reads a CpmResult back; validates structure and re-derives
/// community_of_clique. `num_nodes` from the file header is returned via
/// the out-parameter when non-null.
CpmResult read_cpm_result(std::istream& in, std::size_t* num_nodes = nullptr);
CpmResult read_cpm_result_file(const std::string& path,
                               std::size_t* num_nodes = nullptr);

}  // namespace kcc
