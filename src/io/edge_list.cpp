#include "io/edge_list.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"

namespace kcc {

namespace {

/// Parses one whitespace token as a node label. Anything that is not a
/// plain decimal integer fitting in 64 bits — letters, signs, floats,
/// overflow — is a hard error carrying the line number.
std::uint64_t parse_label(const std::string& token, std::size_t line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  require(ec != std::errc::result_out_of_range,
          "read_edge_list: node id out of range on line " +
              std::to_string(line_no) + ": '" + token + "'");
  require(ec == std::errc() && ptr == token.data() + token.size(),
          "read_edge_list: non-numeric node id on line " +
              std::to_string(line_no) + ": '" + token + "'");
  return value;
}

}  // namespace

NodeId LabeledGraph::node_of(std::uint64_t label) const {
  const auto it = std::lower_bound(labels.begin(), labels.end(), label);
  require(it != labels.end() && *it == label,
          "LabeledGraph::node_of: unknown label");
  return static_cast<NodeId>(it - labels.begin());
}

LabeledGraph read_edge_list(std::istream& in) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw_edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Tokenize first, then parse: a line is either empty (after comment
    // stripping) or exactly "u v" with both tokens valid integers. Anything
    // else — one token, three tokens, letters, overflow — throws with the
    // line number instead of being silently skipped.
    std::istringstream ls(line);
    std::vector<std::string> tokens;
    for (std::string token; ls >> token;) tokens.push_back(std::move(token));
    if (tokens.empty()) continue;  // blank or comment-only line
    require(tokens.size() == 2,
            "read_edge_list: expected 'u v' on line " +
                std::to_string(line_no) + ", got " +
                std::to_string(tokens.size()) + " token(s)");
    const std::uint64_t u = parse_label(tokens[0], line_no);
    const std::uint64_t v = parse_label(tokens[1], line_no);
    if (u == v) continue;  // spurious self-loop: drop
    raw_edges.emplace_back(u, v);
  }

  // Dense relabelling, sorted by external label for determinism.
  std::vector<std::uint64_t> labels;
  labels.reserve(raw_edges.size() * 2);
  for (const auto& [u, v] : raw_edges) {
    labels.push_back(u);
    labels.push_back(v);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  LabeledGraph out;
  out.labels = std::move(labels);
  GraphBuilder builder(out.labels.size());
  for (const auto& [u, v] : raw_edges) {
    builder.add_edge(out.node_of(u), out.node_of(v));
  }
  builder.ensure_nodes(out.labels.size());
  out.graph = builder.build();
  return out;
}

LabeledGraph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "read_edge_list_file: cannot open '" + path + "'");
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const LabeledGraph& g) {
  require(g.labels.size() == g.graph.num_nodes(),
          "write_edge_list: label count does not match node count");
  for (const auto& [u, v] : g.graph.edges()) {
    out << g.labels[u] << ' ' << g.labels[v] << '\n';
  }
}

void write_edge_list_file(const std::string& path, const LabeledGraph& g) {
  std::ofstream out(path);
  require(out.good(), "write_edge_list_file: cannot open '" + path + "'");
  write_edge_list(out, g);
  require(out.good(), "write_edge_list_file: write failed for '" + path + "'");
}

LabeledGraph with_identity_labels(Graph g) {
  LabeledGraph out;
  out.labels.resize(g.num_nodes());
  for (std::size_t i = 0; i < out.labels.size(); ++i) out.labels[i] = i;
  out.graph = std::move(g);
  return out;
}

}  // namespace kcc
