#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace kcc {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "CsvWriter: header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "CsvWriter::add_row: arity mismatch");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "CsvWriter::save: cannot open '" + path + "'");
  out << to_string();
  require(out.good(), "CsvWriter::save: write failed for '" + path + "'");
}

}  // namespace kcc
