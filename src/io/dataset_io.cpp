#include "io/dataset_io.h"

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {
namespace {

// Strips comments; returns false for blank lines.
bool prepare_line(std::string& line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.resize(hash);
  return line.find_first_not_of(" \t\r") != std::string::npos;
}

// Splits "a,b,c" into tokens.
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream ts(s);
  while (std::getline(ts, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

std::uint64_t parse_u64(const std::string& s, const std::string& context) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    throw Error(context + ": invalid number '" + s + "'");
  }
  require(pos == s.size(), context + ": invalid number '" + s + "'");
  return v;
}

}  // namespace

IxpDataset read_ixp_dataset(std::istream& in, const LabeledGraph& g) {
  std::vector<Ixp> ixps;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!prepare_line(line)) continue;
    std::istringstream ls(line);
    Ixp ixp;
    std::string members;
    require(static_cast<bool>(ls >> ixp.name >> ixp.country >> members),
            "read_ixp_dataset: malformed line " + std::to_string(line_no));
    for (const std::string& token : split_csv(members)) {
      ixp.participants.push_back(
          g.node_of(parse_u64(token, "read_ixp_dataset")));
    }
    sort_unique(ixp.participants);
    ixps.push_back(std::move(ixp));
  }
  return IxpDataset(std::move(ixps));
}

IxpDataset read_ixp_dataset_file(const std::string& path,
                                 const LabeledGraph& g) {
  std::ifstream in(path);
  require(in.good(), "read_ixp_dataset_file: cannot open '" + path + "'");
  return read_ixp_dataset(in, g);
}

void write_ixp_dataset(std::ostream& out, const IxpDataset& ixps,
                       const LabeledGraph& g) {
  for (const Ixp& ixp : ixps.all()) {
    out << ixp.name << ' ' << ixp.country << ' ';
    for (std::size_t i = 0; i < ixp.participants.size(); ++i) {
      if (i > 0) out << ',';
      out << g.labels[ixp.participants[i]];
    }
    out << '\n';
  }
}

GeoDataset read_geo_dataset(std::istream& countries_in, std::istream& geo_in,
                            const LabeledGraph& g) {
  std::vector<Country> countries;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(countries_in, line)) {
    ++line_no;
    if (!prepare_line(line)) continue;
    std::istringstream ls(line);
    Country country;
    require(static_cast<bool>(ls >> country.code >> country.continent),
            "read_geo_dataset: malformed country line " +
                std::to_string(line_no));
    countries.push_back(std::move(country));
  }

  // Temporary code -> id lookup.
  auto find_code = [&](const std::string& code) -> CountryId {
    for (CountryId id = 0; id < countries.size(); ++id) {
      if (countries[id].code == code) return id;
    }
    throw Error("read_geo_dataset: unknown country code '" + code + "'");
  };

  std::vector<std::vector<CountryId>> locations(g.graph.num_nodes());
  line_no = 0;
  while (std::getline(geo_in, line)) {
    ++line_no;
    if (!prepare_line(line)) continue;
    std::istringstream ls(line);
    std::string label_str, codes;
    require(static_cast<bool>(ls >> label_str >> codes),
            "read_geo_dataset: malformed geo line " + std::to_string(line_no));
    const NodeId v = g.node_of(parse_u64(label_str, "read_geo_dataset"));
    for (const std::string& code : split_csv(codes)) {
      locations[v].push_back(find_code(code));
    }
  }
  return GeoDataset(std::move(countries), std::move(locations));
}

GeoDataset read_geo_dataset_files(const std::string& countries_path,
                                  const std::string& geo_path,
                                  const LabeledGraph& g) {
  std::ifstream countries_in(countries_path);
  require(countries_in.good(),
          "read_geo_dataset_files: cannot open '" + countries_path + "'");
  std::ifstream geo_in(geo_path);
  require(geo_in.good(),
          "read_geo_dataset_files: cannot open '" + geo_path + "'");
  return read_geo_dataset(countries_in, geo_in, g);
}

void write_geo_dataset(std::ostream& countries_out, std::ostream& geo_out,
                       const GeoDataset& geo, const LabeledGraph& g) {
  for (const Country& country : geo.all_countries()) {
    countries_out << country.code << ' ' << country.continent << '\n';
  }
  for (NodeId v = 0; v < geo.node_capacity(); ++v) {
    const auto& locations = geo.locations_of(v);
    if (locations.empty()) continue;
    geo_out << g.labels[v] << ' ';
    for (std::size_t i = 0; i < locations.size(); ++i) {
      if (i > 0) geo_out << ',';
      geo_out << geo.country(locations[i]).code;
    }
    geo_out << '\n';
  }
}

}  // namespace kcc
