// IXP and geographical dataset file I/O.
//
// IXP file: one IXP per line — "name country label1,label2,..." where labels
// are external node labels (AS numbers).
// Country file: "code continent" per line.
// Geo file: "label code1,code2,..." per line (countries of one AS).
// '#' comments and blank lines are allowed everywhere.
#pragma once

#include <iosfwd>
#include <string>

#include "data/geography.h"
#include "data/ixp.h"
#include "io/edge_list.h"

namespace kcc {

IxpDataset read_ixp_dataset(std::istream& in, const LabeledGraph& g);
IxpDataset read_ixp_dataset_file(const std::string& path,
                                 const LabeledGraph& g);
void write_ixp_dataset(std::ostream& out, const IxpDataset& ixps,
                       const LabeledGraph& g);

GeoDataset read_geo_dataset(std::istream& countries_in, std::istream& geo_in,
                            const LabeledGraph& g);
GeoDataset read_geo_dataset_files(const std::string& countries_path,
                                  const std::string& geo_path,
                                  const LabeledGraph& g);
void write_geo_dataset(std::ostream& countries_out, std::ostream& geo_out,
                       const GeoDataset& geo, const LabeledGraph& g);

}  // namespace kcc
