#include "io/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "obs/report.h"

namespace kcc::snapshot {

// The format is defined as little-endian and the reader casts straight into
// the mapping, so a big-endian host would need byte-swapping shims nobody
// has written. Refuse to compile there rather than corrupt silently.
static_assert(std::endian::native == std::endian::little,
              "snapshot format requires a little-endian host");

namespace {

constexpr std::size_t kSectionEntryBytes = 24;
constexpr std::size_t kMetaBytes = 56;

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::size_t align8(std::size_t offset) { return (offset + 7) & ~std::size_t{7}; }

struct SectionBuf {
  std::uint32_t id = 0;
  std::vector<std::uint8_t> bytes;
};

/// Highest node id + 1 across cliques and community node sets (reference
/// results carry no clique table, so cliques alone are not enough).
std::size_t derive_num_nodes(const CpmResult& data) {
  std::size_t num_nodes = 0;
  for (const NodeSet& clique : data.cliques) {
    if (!clique.empty()) {
      num_nodes = std::max<std::size_t>(num_nodes, clique.back() + 1);
    }
  }
  for (const CommunitySet& set : data.by_k) {
    for (const Community& community : set.communities) {
      if (!community.nodes.empty()) {
        num_nodes =
            std::max<std::size_t>(num_nodes, community.nodes.back() + 1);
      }
    }
  }
  return num_nodes;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

std::string default_manifest_json(const std::string& tool,
                                  const cpm::Result& result) {
  const obs::RunManifest m = obs::collect_manifest(tool);
  std::ostringstream out;
  out << "{\"kcc_snapshot_manifest_version\":1"
      << ",\"tool\":\"" << json_escape(m.tool) << '"'
      << ",\"engine\":\"" << json_escape(result.engine_name) << '"'
      << ",\"exactness\":\"" << cpm::exactness_name(result.exactness) << '"'
      << ",\"git_sha\":\"" << json_escape(m.git_sha) << '"'
      << ",\"git_dirty\":" << (m.git_dirty ? "true" : "false")
      << ",\"build_type\":\"" << json_escape(m.build_type) << '"'
      << ",\"compiler\":\"" << json_escape(m.compiler) << '"'
      << ",\"sanitize\":\"" << json_escape(m.sanitize) << '"'
      << ",\"hostname\":\"" << json_escape(m.hostname) << '"'
      << ",\"cpu_model\":\"" << json_escape(m.cpu_model) << '"'
      << ",\"cpu_logical_cores\":" << m.cpu_logical_cores << '}';
  return out.str();
}

void write_snapshot(std::ostream& out, const cpm::Result& result,
                    const std::string& manifest_json) {
  const CpmResult& data = result.cpm;
  const std::size_t num_levels =
      data.max_k >= data.min_k ? data.max_k - data.min_k + 1 : 0;
  require(data.by_k.size() == num_levels,
          "write_snapshot: by_k does not match the declared k range");
  const std::size_t num_nodes = derive_num_nodes(data);

  std::size_t num_communities = 0;
  for (const CommunitySet& set : data.by_k) num_communities += set.count();

  std::vector<SectionBuf> sections;
  auto section = [&sections](std::uint32_t id) -> std::vector<std::uint8_t>& {
    sections.push_back({id, {}});
    return sections.back().bytes;
  };

  {
    auto& meta = section(kSectionMeta);
    append_u64(meta, data.min_k);
    append_u64(meta, data.max_k);
    append_u64(meta, num_levels);
    append_u64(meta, num_nodes);
    append_u64(meta, data.cliques.size());
    append_u64(meta, num_communities);
    append_u32(meta, static_cast<std::uint32_t>(result.exactness));
    append_u32(meta, result.has_tree ? 1 : 0);
  }
  {
    auto& engine = section(kSectionEngine);
    engine.assign(result.engine_name.begin(), result.engine_name.end());
  }
  {
    const std::string& manifest = manifest_json.empty()
        ? default_manifest_json("kcc", result) : manifest_json;
    auto& buf = section(kSectionManifest);
    buf.assign(manifest.begin(), manifest.end());
  }
  {
    auto& offsets = section(kSectionCliqueOffsets);
    std::uint64_t total = 0;
    append_u64(offsets, 0);
    for (const NodeSet& clique : data.cliques) {
      total += clique.size();
      append_u64(offsets, total);
    }
  }
  {
    auto& nodes = section(kSectionCliqueNodes);
    for (const NodeSet& clique : data.cliques) {
      for (NodeId v : clique) append_u32(nodes, v);
    }
  }
  {
    auto& levels = section(kSectionLevels);
    std::uint64_t first = 0;
    for (const CommunitySet& set : data.by_k) {
      append_u64(levels, first);
      append_u64(levels, set.count());
      first += set.count();
    }
  }
  {
    auto& offsets = section(kSectionCommNodeOffsets);
    std::uint64_t total = 0;
    append_u64(offsets, 0);
    for (const CommunitySet& set : data.by_k) {
      for (const Community& community : set.communities) {
        total += community.nodes.size();
        append_u64(offsets, total);
      }
    }
  }
  {
    auto& nodes = section(kSectionCommNodes);
    for (const CommunitySet& set : data.by_k) {
      for (const Community& community : set.communities) {
        for (NodeId v : community.nodes) append_u32(nodes, v);
      }
    }
  }
  {
    auto& offsets = section(kSectionCommCliqueOffsets);
    std::uint64_t total = 0;
    append_u64(offsets, 0);
    for (const CommunitySet& set : data.by_k) {
      for (const Community& community : set.communities) {
        total += community.clique_ids.size();
        append_u64(offsets, total);
      }
    }
  }
  {
    auto& cliques = section(kSectionCommCliques);
    for (const CommunitySet& set : data.by_k) {
      for (const Community& community : set.communities) {
        for (CliqueId c : community.clique_ids) append_u32(cliques, c);
      }
    }
  }
  {
    // Per-node postings, built by walking levels in (k asc, id asc) order so
    // each node's list is already sorted the way queries want it.
    std::vector<std::vector<Posting>> per_node(num_nodes);
    for (const CommunitySet& set : data.by_k) {
      for (const Community& community : set.communities) {
        for (NodeId v : community.nodes) {
          per_node[v].push_back({static_cast<std::uint32_t>(set.k),
                                 static_cast<std::uint32_t>(community.id)});
        }
      }
    }
    auto& offsets = section(kSectionPostingOffsets);
    std::uint64_t total = 0;
    append_u64(offsets, 0);
    for (const auto& list : per_node) {
      total += list.size();
      append_u64(offsets, total);
    }
    auto& postings = section(kSectionPostings);
    for (const auto& list : per_node) {
      for (const Posting& p : list) {
        append_u32(postings, p.k);
        append_u32(postings, p.community);
      }
    }
  }
  if (result.has_tree) {
    auto& parents = section(kSectionTreeParents);
    for (const CommunitySet& set : data.by_k) {
      for (const Community& community : set.communities) {
        std::uint32_t parent = kNoParent;
        if (set.k > data.min_k) {
          const int index = result.tree.index_of(set.k, community.id);
          require(index >= 0,
                  "write_snapshot: community missing from the tree");
          const int parent_index = result.tree.nodes()[index].parent;
          require(parent_index >= 0,
                  "write_snapshot: tree parent missing above min_k");
          parent = result.tree.nodes()[parent_index].community_id;
        }
        append_u32(parents, parent);
      }
    }
  }

  // Lay the sections out after the table, 8-byte aligned, and assemble the
  // payload (table + sections) so the digest can cover it in one pass.
  const std::size_t table_bytes = sections.size() * kSectionEntryBytes;
  std::vector<std::uint8_t> payload;
  for (const SectionBuf& s : sections) {
    (void)s;
    payload.resize(payload.size() + kSectionEntryBytes);
  }
  std::size_t offset = kHeaderBytes + table_bytes;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    offset = align8(offset);
    std::uint8_t* entry = payload.data() + i * kSectionEntryBytes;
    std::uint32_t id = sections[i].id;
    std::uint64_t off64 = offset, len64 = sections[i].bytes.size();
    std::memcpy(entry, &id, 4);
    std::memset(entry + 4, 0, 4);  // reserved
    std::memcpy(entry + 8, &off64, 8);
    std::memcpy(entry + 16, &len64, 8);
    // Pad up to this section's aligned start, then append its bytes.
    payload.resize(offset - kHeaderBytes, 0);
    payload.insert(payload.end(), sections[i].bytes.begin(),
                   sections[i].bytes.end());
    offset += sections[i].bytes.size();
  }
  const std::uint64_t file_bytes = kHeaderBytes + payload.size();
  const std::uint64_t digest = fnv1a64(payload.data(), payload.size());

  std::vector<std::uint8_t> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic, kMagic + 8);
  append_u32(header, kVersion);
  append_u32(header, kHeaderBytes);
  append_u64(header, file_bytes);
  append_u64(header, digest);
  append_u32(header, static_cast<std::uint32_t>(sections.size()));
  header.resize(kHeaderBytes, 0);  // reserved tail

  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  require(out.good(), "write_snapshot: stream write failed");
}

void write_snapshot_file(const std::string& path, const cpm::Result& result,
                         const std::string& manifest_json) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "write_snapshot_file: cannot open '" + path + "'");
  write_snapshot(out, result, manifest_json);
  out.close();
  require(out.good(), "write_snapshot_file: write failed for '" + path + "'");
}

namespace {

/// Bounds-checked little-endian reads out of the raw header/table bytes.
std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

struct Section {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  bool present = false;
};

}  // namespace

SnapshotView::SnapshotView(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  require(fd_ >= 0, "snapshot: cannot open '" + path + "': " +
                        std::string(std::strerror(errno)));
  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw Error("snapshot: fstat failed for '" + path + "'");
  }
  bytes_ = static_cast<std::size_t>(st.st_size);
  if (bytes_ < kHeaderBytes) {
    ::close(fd_);
    fd_ = -1;
    throw Error("snapshot: '" + path + "' is truncated (" +
                std::to_string(bytes_) + " bytes, header needs " +
                std::to_string(kHeaderBytes) + ")");
  }
  void* mapping = ::mmap(nullptr, bytes_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (mapping == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    throw Error("snapshot: mmap failed for '" + path + "'");
  }
  data_ = static_cast<const std::uint8_t*>(mapping);

  // From here on, failures must unmap; funnel them through one thrower.
  auto fail = [this, &path](const std::string& what) {
    ::munmap(const_cast<std::uint8_t*>(data_), bytes_);
    ::close(fd_);
    data_ = nullptr;
    fd_ = -1;
    throw Error("snapshot: '" + path + "': " + what);
  };
  auto check = [&fail](bool ok, const std::string& what) {
    if (!ok) fail(what);
  };

  check(std::memcmp(data_, kMagic, 8) == 0,
        "bad magic (not a kcc snapshot file)");
  const std::uint32_t version = load_u32(data_ + 8);
  check(version == kVersion, "unsupported version " + std::to_string(version) +
                                 " (this build reads version " +
                                 std::to_string(kVersion) + ")");
  check(load_u32(data_ + 12) == kHeaderBytes, "unexpected header size");
  const std::uint64_t file_bytes = load_u64(data_ + 16);
  check(file_bytes == bytes_,
        "file size mismatch: header says " + std::to_string(file_bytes) +
            " bytes, file has " + std::to_string(bytes_) +
            " (truncated or padded)");
  digest_ = load_u64(data_ + 24);
  const std::uint32_t section_count = load_u32(data_ + 32);
  check(section_count >= 12 && section_count <= 64,
        "implausible section count " + std::to_string(section_count));
  const std::uint64_t table_end =
      kHeaderBytes + std::uint64_t{section_count} * kSectionEntryBytes;
  check(table_end <= bytes_, "section table extends past end of file");
  check(fnv1a64(data_ + kHeaderBytes, bytes_ - kHeaderBytes) == digest_,
        "payload digest mismatch (file corrupted)");

  // Section table: ids strictly increasing, every extent inside the file
  // and 8-byte aligned so the typed casts below are in-bounds and aligned.
  Section table[kSectionTreeParents + 1] = {};
  std::uint32_t prev_id = 0;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* entry =
        data_ + kHeaderBytes + std::size_t{i} * kSectionEntryBytes;
    const std::uint32_t id = load_u32(entry);
    const std::uint64_t offset = load_u64(entry + 8);
    const std::uint64_t length = load_u64(entry + 16);
    check(id > prev_id, "section ids not strictly increasing");
    prev_id = id;
    check(offset % 8 == 0, "section offset not 8-byte aligned");
    check(offset >= table_end && offset <= bytes_ &&
              length <= bytes_ - offset,
          "section extent outside the file");
    if (id <= kSectionTreeParents) {
      table[id] = {offset, length, true};
    }
    // Unknown higher ids are tolerated for forward-compat within a version.
  }
  for (std::uint32_t id = kSectionMeta; id <= kSectionPostings; ++id) {
    check(table[id].present,
          "missing required section " + std::to_string(id));
  }

  const Section& meta = table[kSectionMeta];
  check(meta.bytes == kMetaBytes, "META section has wrong size");
  const std::uint8_t* m = data_ + meta.offset;
  min_k_ = load_u64(m);
  max_k_ = load_u64(m + 8);
  num_levels_ = load_u64(m + 16);
  num_nodes_ = load_u64(m + 24);
  num_cliques_ = load_u64(m + 32);
  num_communities_ = load_u64(m + 40);
  const std::uint32_t exactness = load_u32(m + 48);
  has_tree_ = load_u32(m + 52) != 0;
  check(exactness <= 1, "unknown exactness value");
  exactness_ = static_cast<cpm::Exactness>(exactness);
  check(min_k_ >= 2, "min_k below 2");
  const std::size_t expect_levels =
      max_k_ >= min_k_ ? max_k_ - min_k_ + 1 : 0;
  check(num_levels_ == expect_levels, "level count contradicts the k range");
  check(num_cliques_ <= bytes_ / 4 && num_communities_ <= bytes_ / 4 &&
            num_nodes_ <= std::uint64_t{1} << 32,
        "implausible counts in META");

  engine_ = std::string_view(
      reinterpret_cast<const char*>(data_ + table[kSectionEngine].offset),
      table[kSectionEngine].bytes);
  manifest_ = std::string_view(
      reinterpret_cast<const char*>(data_ + table[kSectionManifest].offset),
      table[kSectionManifest].bytes);

  // Offset arrays: exact byte size, monotone, final entry equal to the
  // element count of the section they index into.
  auto offsets_array = [&](SectionId id, std::size_t count,
                           const char* what) -> const std::uint64_t* {
    check(table[id].bytes == (count + 1) * 8,
          std::string(what) + " offsets section has wrong size");
    const auto* arr =
        reinterpret_cast<const std::uint64_t*>(data_ + table[id].offset);
    check(arr[0] == 0, std::string(what) + " offsets must start at 0");
    for (std::size_t i = 0; i < count; ++i) {
      check(arr[i] <= arr[i + 1], std::string(what) + " offsets not monotone");
    }
    return arr;
  };
  auto elems_u32 = [&](SectionId id, std::uint64_t count,
                       const char* what) -> const std::uint32_t* {
    check(table[id].bytes == count * 4,
          std::string(what) + " section size disagrees with its offsets");
    return reinterpret_cast<const std::uint32_t*>(data_ + table[id].offset);
  };

  clique_offsets_ = offsets_array(kSectionCliqueOffsets, num_cliques_, "clique");
  clique_nodes_ =
      elems_u32(kSectionCliqueNodes, clique_offsets_[num_cliques_], "clique nodes");
  for (std::uint64_t i = 0; i < clique_offsets_[num_cliques_]; ++i) {
    check(clique_nodes_[i] < num_nodes_, "clique node id out of range");
  }

  check(table[kSectionLevels].bytes == num_levels_ * 16,
        "LEVELS section has wrong size");
  levels_ = reinterpret_cast<const std::uint64_t*>(
      data_ + table[kSectionLevels].offset);
  std::uint64_t expect_first = 0;
  for (std::size_t i = 0; i < num_levels_; ++i) {
    check(levels_[2 * i] == expect_first, "levels are not contiguous");
    expect_first += levels_[2 * i + 1];
  }
  check(expect_first == num_communities_,
        "level community counts disagree with META");

  comm_node_offsets_ =
      offsets_array(kSectionCommNodeOffsets, num_communities_, "community node");
  comm_nodes_ = elems_u32(kSectionCommNodes,
                          comm_node_offsets_[num_communities_], "community nodes");
  for (std::uint64_t i = 0; i < comm_node_offsets_[num_communities_]; ++i) {
    check(comm_nodes_[i] < num_nodes_, "community node id out of range");
  }
  comm_clique_offsets_ = offsets_array(kSectionCommCliqueOffsets,
                                       num_communities_, "community clique");
  comm_cliques_ =
      elems_u32(kSectionCommCliques, comm_clique_offsets_[num_communities_],
                "community cliques");
  for (std::uint64_t i = 0; i < comm_clique_offsets_[num_communities_]; ++i) {
    check(comm_cliques_[i] < num_cliques_, "community clique id out of range");
  }

  posting_offsets_ =
      offsets_array(kSectionPostingOffsets, num_nodes_, "posting");
  check(table[kSectionPostings].bytes ==
            posting_offsets_[num_nodes_] * sizeof(Posting),
        "POSTINGS section size disagrees with its offsets");
  postings_ =
      reinterpret_cast<const Posting*>(data_ + table[kSectionPostings].offset);
  for (std::uint64_t i = 0; i < posting_offsets_[num_nodes_]; ++i) {
    const Posting& p = postings_[i];
    if (p.k < min_k_ || p.k > max_k_) fail("posting k out of range");
    if (p.community >= levels_[2 * (p.k - min_k_) + 1]) {
      fail("posting community id out of range");
    }
  }

  if (has_tree_) {
    check(table[kSectionTreeParents].present,
          "META says has_tree but TREE_PARENTS section is missing");
    check(table[kSectionTreeParents].bytes == num_communities_ * 4,
          "TREE_PARENTS section has wrong size");
    tree_parents_ = reinterpret_cast<const std::uint32_t*>(
        data_ + table[kSectionTreeParents].offset);
    for (std::size_t level = 0; level < num_levels_; ++level) {
      const std::uint64_t first = levels_[2 * level];
      const std::uint64_t count = levels_[2 * level + 1];
      for (std::uint64_t i = first; i < first + count; ++i) {
        if (level == 0) {
          check(tree_parents_[i] == kNoParent,
                "bottom-level community has a tree parent");
        } else {
          check(tree_parents_[i] < levels_[2 * (level - 1) + 1],
                "tree parent id out of range");
        }
      }
    }
  } else {
    check(!table[kSectionTreeParents].present,
          "TREE_PARENTS present but META says no tree");
  }
}

SnapshotView::~SnapshotView() {
  if (data_ != nullptr) ::munmap(const_cast<std::uint8_t*>(data_), bytes_);
  if (fd_ >= 0) ::close(fd_);
}

SnapshotView::SnapshotView(SnapshotView&& other) noexcept
    : data_(other.data_), bytes_(other.bytes_), fd_(other.fd_),
      min_k_(other.min_k_), max_k_(other.max_k_),
      num_levels_(other.num_levels_), num_nodes_(other.num_nodes_),
      num_cliques_(other.num_cliques_),
      num_communities_(other.num_communities_), has_tree_(other.has_tree_),
      exactness_(other.exactness_), engine_(other.engine_),
      manifest_(other.manifest_), digest_(other.digest_),
      clique_offsets_(other.clique_offsets_),
      clique_nodes_(other.clique_nodes_), levels_(other.levels_),
      comm_node_offsets_(other.comm_node_offsets_),
      comm_nodes_(other.comm_nodes_),
      comm_clique_offsets_(other.comm_clique_offsets_),
      comm_cliques_(other.comm_cliques_),
      posting_offsets_(other.posting_offsets_), postings_(other.postings_),
      tree_parents_(other.tree_parents_) {
  other.data_ = nullptr;
  other.fd_ = -1;
}

std::size_t SnapshotView::level_index(std::size_t k) const {
  require(has_k(k), "snapshot query: k=" + std::to_string(k) +
                        " outside [" + std::to_string(min_k_) + ", " +
                        std::to_string(max_k_) + "]");
  return k - min_k_;
}

std::size_t SnapshotView::global_community(std::size_t k,
                                           std::uint32_t id) const {
  const std::size_t level = level_index(k);
  require(id < levels_[2 * level + 1],
          "snapshot query: community id " + std::to_string(id) +
              " out of range at k=" + std::to_string(k));
  return levels_[2 * level] + id;
}

std::size_t SnapshotView::community_count(std::size_t k) const {
  if (!has_k(k)) return 0;
  return levels_[2 * (k - min_k_) + 1];
}

std::span<const std::uint32_t> SnapshotView::community_nodes(
    std::size_t k, std::uint32_t id) const {
  const std::size_t g = global_community(k, id);
  return {comm_nodes_ + comm_node_offsets_[g],
          static_cast<std::size_t>(comm_node_offsets_[g + 1] -
                                   comm_node_offsets_[g])};
}

std::span<const std::uint32_t> SnapshotView::community_cliques(
    std::size_t k, std::uint32_t id) const {
  const std::size_t g = global_community(k, id);
  return {comm_cliques_ + comm_clique_offsets_[g],
          static_cast<std::size_t>(comm_clique_offsets_[g + 1] -
                                   comm_clique_offsets_[g])};
}

std::span<const std::uint32_t> SnapshotView::clique(std::uint32_t c) const {
  require(c < num_cliques_,
          "snapshot query: clique id " + std::to_string(c) + " out of range");
  return {clique_nodes_ + clique_offsets_[c],
          static_cast<std::size_t>(clique_offsets_[c + 1] -
                                   clique_offsets_[c])};
}

std::span<const Posting> SnapshotView::postings(std::uint32_t node) const {
  if (node >= num_nodes_) return {};
  return {postings_ + posting_offsets_[node],
          static_cast<std::size_t>(posting_offsets_[node + 1] -
                                   posting_offsets_[node])};
}

std::uint32_t SnapshotView::parent_of(std::size_t k, std::uint32_t id) const {
  require(has_tree_, "snapshot query: snapshot carries no tree");
  return tree_parents_[global_community(k, id)];
}

cpm::Result SnapshotView::to_result() const {
  cpm::Result result;
  result.engine_name = std::string(engine_);
  result.exactness = exactness_;

  CpmResult& data = result.cpm;
  data.min_k = min_k_;
  data.max_k = max_k_;
  data.cliques.resize(num_cliques_);
  for (std::size_t c = 0; c < num_cliques_; ++c) {
    const auto span = clique(static_cast<std::uint32_t>(c));
    data.cliques[c].assign(span.begin(), span.end());
  }

  data.by_k.resize(num_levels_);
  std::vector<std::vector<TreeParentLink>> levels(has_tree_ ? num_levels_ : 0);
  for (std::size_t i = 0; i < num_levels_; ++i) {
    const std::size_t k = min_k_ + i;
    CommunitySet& set = data.by_k[i];
    set.k = k;
    set.community_of_clique.assign(num_cliques_,
                                   CommunitySet::kNoCommunity);
    const std::size_t count = community_count(k);
    set.communities.resize(count);
    if (has_tree_) levels[i].resize(count);
    for (std::uint32_t id = 0; id < count; ++id) {
      Community& community = set.communities[id];
      community.k = k;
      community.id = id;
      const auto nodes = community_nodes(k, id);
      community.nodes.assign(nodes.begin(), nodes.end());
      const auto cliques = community_cliques(k, id);
      community.clique_ids.assign(cliques.begin(), cliques.end());
      for (CliqueId c : community.clique_ids) {
        set.community_of_clique[c] = id;
      }
      if (has_tree_) {
        levels[i][id] = {community.nodes.size(), parent_of(k, id)};
      }
    }
  }

  if (has_tree_ && num_levels_ > 0) {
    result.tree = CommunityTree::from_levels(min_k_, levels);
    result.has_tree = true;
  } else {
    result.has_tree = has_tree_;
  }
  return result;
}

cpm::Result read_snapshot_file(const std::string& path) {
  return SnapshotView(path).to_result();
}

}  // namespace kcc::snapshot
