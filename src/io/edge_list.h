// Edge-list file I/O.
//
// Format: one edge per line, "u v", '#' starts a comment, blank lines
// ignored. Node labels are arbitrary unsigned integers (AS numbers in the
// paper's datasets are non-dense), remapped to dense ids on load.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kcc {

/// A graph together with the original node labels (label[i] is the external
/// id of dense node i). Labels are unique; the mapping is sorted so loading
/// is deterministic regardless of edge order.
struct LabeledGraph {
  Graph graph;
  std::vector<std::uint64_t> labels;

  /// Dense id of an external label; throws when absent.
  NodeId node_of(std::uint64_t label) const;
};

/// Parses an edge list from a stream. Self-loops and duplicates are
/// discarded (the paper's "spurious data" cleaning). Malformed lines throw.
LabeledGraph read_edge_list(std::istream& in);

/// File convenience wrapper; throws kcc::Error when the file cannot open.
LabeledGraph read_edge_list_file(const std::string& path);

/// Writes "label_u label_v" lines, edges ordered by dense (u, v).
void write_edge_list(std::ostream& out, const LabeledGraph& g);
void write_edge_list_file(const std::string& path, const LabeledGraph& g);

/// Wraps a dense graph with identity labels.
LabeledGraph with_identity_labels(Graph g);

}  // namespace kcc
