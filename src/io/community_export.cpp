#include "io/community_export.h"

#include <fstream>
#include <ostream>

#include "common/error.h"

namespace kcc {

void write_membership_csv(std::ostream& out, const CpmResult& result,
                          const LabeledGraph& g) {
  require(g.labels.size() == g.graph.num_nodes(),
          "write_membership_csv: label table mismatch");
  out << "as,k,community\n";
  for (const CommunitySet& set : result.by_k) {
    for (const Community& community : set.communities) {
      for (NodeId v : community.nodes) {
        require(v < g.labels.size(),
                "write_membership_csv: node outside the labelled graph");
        out << g.labels[v] << ',' << set.k << ',' << community.id << '\n';
      }
    }
  }
}

void write_membership_csv_file(const std::string& path,
                               const CpmResult& result,
                               const LabeledGraph& g) {
  std::ofstream out(path);
  require(out.good(), "write_membership_csv_file: cannot open '" + path + "'");
  write_membership_csv(out, result, g);
  require(out.good(),
          "write_membership_csv_file: write failed for '" + path + "'");
}

void write_community_listing(std::ostream& out, const CpmResult& result,
                             const LabeledGraph& g) {
  require(g.labels.size() == g.graph.num_nodes(),
          "write_community_listing: label table mismatch");
  for (const CommunitySet& set : result.by_k) {
    for (const Community& community : set.communities) {
      out << 'k' << set.k << " id" << community.id << ':';
      for (NodeId v : community.nodes) {
        out << ' ' << g.labels[v];
      }
      out << '\n';
    }
  }
}

}  // namespace kcc
