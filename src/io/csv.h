// Minimal CSV writer used by the experiment harnesses to dump series
// (e.g. the Fig. 4.1/4.3/4.4 curves) for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace kcc {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with RFC-4180-style quoting where needed.
  std::string to_string() const;

  void save(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kcc
