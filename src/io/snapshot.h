// Community-tree snapshot: the versioned binary on-disk form of a full
// cpm::Result, designed to be written once by any engine and then mmapped
// read-only by the `kcc serve` query daemon (src/serve/) — the paper's
// 93-hour artefact class served to many concurrent clients without
// recomputation.
//
// Unlike the line-oriented io/result_io.h text format (human-greppable,
// re-parsed on every load), a snapshot is a random-access layout: all-k
// communities, the nesting tree's parent links, and a node→(k, community)
// postings index live in flat little-endian arrays addressable straight
// from the mapping, so membership-at-k / community-by-id / ancestry / LCA /
// overlap-depth queries never deserialize anything.
//
// Layout (full byte-level spec in docs/FORMATS.md):
//
//   header   64 bytes: magic "KCCSNAP1", version, file size, FNV-1a-64
//            payload digest, section count
//   table    section_count x 24-byte entries {id, offset, bytes}, id-sorted
//   sections 8-byte aligned: META, ENGINE, MANIFEST (provenance JSON),
//            clique table, per-k community node/clique-id lists,
//            node→community postings, tree parent links
//
// Readers are paranoid: magic/version/size/digest are checked on open, all
// offset arrays are validated monotone and in range, and every id is
// bounds-checked before use — a truncated or corrupted file throws
// kcc::Error naming what is wrong, never returns partial data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "cpm/engine.h"

namespace kcc::snapshot {

/// First 8 bytes of every snapshot file.
inline constexpr char kMagic[8] = {'K', 'C', 'C', 'S', 'N', 'A', 'P', '1'};

/// Format version this build writes and reads. Readers reject other
/// versions loudly (versioning policy in docs/FORMATS.md).
inline constexpr std::uint32_t kVersion = 1;

/// Fixed header size; the section table starts at this offset.
inline constexpr std::uint32_t kHeaderBytes = 64;

/// Section ids, in file order. All sections are present in every snapshot
/// except kTreeParents, which exists iff the result carries a tree.
enum SectionId : std::uint32_t {
  kSectionMeta = 1,          // fixed-size counts + flags (see SnapshotMeta)
  kSectionEngine = 2,        // engine name bytes (no terminator)
  kSectionManifest = 3,      // provenance JSON text (free-form)
  kSectionCliqueOffsets = 4, // (num_cliques+1) x u64, element offsets into 5
  kSectionCliqueNodes = 5,   // u32 node ids, each clique sorted
  kSectionLevels = 6,        // num_levels x {u64 first_community, u64 count}
  kSectionCommNodeOffsets = 7,   // (num_communities+1) x u64 into 8
  kSectionCommNodes = 8,         // u32 node ids, each community sorted
  kSectionCommCliqueOffsets = 9, // (num_communities+1) x u64 into 10
  kSectionCommCliques = 10,      // u32 clique ids, each community sorted
  kSectionPostingOffsets = 11,   // (num_nodes+1) x u64 into 12
  kSectionPostings = 12,         // {u32 k, u32 community} per node, (k,id) asc
  kSectionTreeParents = 13,      // num_communities x u32 parent community id
};

/// One node→community posting: node belongs to community `community` at
/// order `k`. A node in several overlapping communities at the same k has
/// one posting per community.
struct Posting {
  std::uint32_t k = 0;
  std::uint32_t community = 0;
};
static_assert(sizeof(Posting) == 8);

/// Sentinel parent id for communities at the bottom level (mirrors
/// CommunitySet::kNoCommunity).
inline constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

/// Provenance JSON for the MANIFEST section: build/host facts from
/// obs::collect_manifest plus the producing engine and exactness.
std::string default_manifest_json(const std::string& tool,
                                  const cpm::Result& result);

/// Serializes `result` as a complete snapshot. `manifest_json` lands in the
/// MANIFEST section verbatim (empty = call default_manifest_json("kcc")).
/// The stream must be binary-clean; "-"-style stdout routing is the
/// caller's job (obs::write_artifact).
void write_snapshot(std::ostream& out, const cpm::Result& result,
                    const std::string& manifest_json = "");

/// write_snapshot to a file path. Throws kcc::Error on I/O failure.
void write_snapshot_file(const std::string& path, const cpm::Result& result,
                         const std::string& manifest_json = "");

/// Read-only mmap view of a snapshot file. Construction validates the
/// header, section table, digest and every offset/id array; queries after
/// that are pure pointer arithmetic into the mapping (zero-copy spans).
/// The view owns the mapping; spans it returns die with it.
class SnapshotView {
 public:
  /// Maps `path` and validates it. Throws kcc::Error on any structural
  /// problem: truncation, bad magic, unsupported version, digest mismatch,
  /// out-of-range offsets or ids.
  explicit SnapshotView(const std::string& path);
  ~SnapshotView();

  SnapshotView(SnapshotView&& other) noexcept;
  SnapshotView& operator=(SnapshotView&&) = delete;
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  // -- meta ---------------------------------------------------------------
  std::size_t min_k() const { return min_k_; }
  std::size_t max_k() const { return max_k_; }  // max_k < min_k: no levels
  std::size_t num_levels() const { return num_levels_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_cliques() const { return num_cliques_; }
  std::size_t num_communities() const { return num_communities_; }
  bool has_tree() const { return has_tree_; }
  cpm::Exactness exactness() const { return exactness_; }
  std::string_view engine_name() const { return engine_; }
  std::string_view manifest_json() const { return manifest_; }
  std::uint64_t digest() const { return digest_; }
  std::size_t file_bytes() const { return bytes_; }

  bool has_k(std::size_t k) const { return k >= min_k_ && k <= max_k_; }

  // -- queries (all bounds-checked, throwing kcc::Error on bad ids) -------
  /// Number of communities at order k (0 when k is outside the range).
  std::size_t community_count(std::size_t k) const;

  /// Sorted member nodes of community (k, id).
  std::span<const std::uint32_t> community_nodes(std::size_t k,
                                                 std::uint32_t id) const;

  /// Sorted maximal-clique ids of community (k, id).
  std::span<const std::uint32_t> community_cliques(std::size_t k,
                                                   std::uint32_t id) const;

  /// Sorted member nodes of maximal clique `c`.
  std::span<const std::uint32_t> clique(std::uint32_t c) const;

  /// All (k, community) memberships of `node`, ascending (k, id). Nodes
  /// >= num_nodes() have an empty posting list by definition.
  std::span<const Posting> postings(std::uint32_t node) const;

  /// Parent community id (at order k-1) of community (k, id); kNoParent at
  /// the bottom level. Only valid when has_tree().
  std::uint32_t parent_of(std::size_t k, std::uint32_t id) const;

  /// Materializes the full in-memory cpm::Result (communities, clique
  /// table, re-derived clique→community maps, tree rebuilt via
  /// CommunityTree::from_levels) — the round-trip read path.
  cpm::Result to_result() const;

 private:
  std::size_t level_index(std::size_t k) const;  // throws when !has_k
  std::size_t global_community(std::size_t k, std::uint32_t id) const;

  const std::uint8_t* data_ = nullptr;
  std::size_t bytes_ = 0;
  int fd_ = -1;

  std::size_t min_k_ = 0, max_k_ = 0, num_levels_ = 0;
  std::size_t num_nodes_ = 0, num_cliques_ = 0, num_communities_ = 0;
  bool has_tree_ = false;
  cpm::Exactness exactness_ = cpm::Exactness::kExact;
  std::string_view engine_;
  std::string_view manifest_;
  std::uint64_t digest_ = 0;

  // Typed pointers into the mapping, set up (and fully validated) once.
  const std::uint64_t* clique_offsets_ = nullptr;
  const std::uint32_t* clique_nodes_ = nullptr;
  const std::uint64_t* levels_ = nullptr;  // pairs {first, count}
  const std::uint64_t* comm_node_offsets_ = nullptr;
  const std::uint32_t* comm_nodes_ = nullptr;
  const std::uint64_t* comm_clique_offsets_ = nullptr;
  const std::uint32_t* comm_cliques_ = nullptr;
  const std::uint64_t* posting_offsets_ = nullptr;
  const Posting* postings_ = nullptr;
  const std::uint32_t* tree_parents_ = nullptr;
};

/// Convenience: full round trip (mmap + materialize + unmap).
cpm::Result read_snapshot_file(const std::string& path);

}  // namespace kcc::snapshot
