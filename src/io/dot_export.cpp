#include "io/dot_export.h"

#include <fstream>
#include <ostream>

#include "common/error.h"

namespace kcc {

void write_tree_dot(std::ostream& out, const CommunityTree& tree,
                    std::size_t min_k_shown) {
  out << "graph community_tree {\n";
  out << "  node [shape=circle, fontsize=8];\n";
  const auto& nodes = tree.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& node = nodes[i];
    if (node.k < min_k_shown) continue;
    out << "  n" << i << " [label=\"k" << node.k << "id" << node.community_id
        << "\"";
    if (node.is_main) out << ", style=filled, fillcolor=black, fontcolor=white";
    out << "];\n";
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const TreeNode& node = nodes[i];
    if (node.parent < 0) continue;
    if (node.k < min_k_shown || nodes[node.parent].k < min_k_shown) continue;
    out << "  n" << node.parent << " -- n" << i << ";\n";
  }
  // Rank communities of equal k on one row, as in Fig. 4.2.
  for (std::size_t k = std::max(min_k_shown, tree.min_k()); k <= tree.max_k();
       ++k) {
    out << "  { rank=same;";
    for (int idx : tree.level(k)) out << " n" << idx << ";";
    out << " }\n";
  }
  out << "}\n";
}

void write_tree_dot_file(const std::string& path, const CommunityTree& tree,
                         std::size_t min_k_shown) {
  std::ofstream out(path);
  require(out.good(), "write_tree_dot_file: cannot open '" + path + "'");
  write_tree_dot(out, tree, min_k_shown);
  require(out.good(), "write_tree_dot_file: write failed for '" + path + "'");
}

void write_graph_dot(std::ostream& out, const Graph& g) {
  out << "graph g {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v << ";\n";
  }
  for (const auto& [u, v] : g.edges()) {
    out << "  n" << u << " -- n" << v << ";\n";
  }
  out << "}\n";
}

}  // namespace kcc
