// Graphviz DOT export for the community tree (paper Fig. 4.2) and for small
// graphs.
#pragma once

#include <iosfwd>
#include <string>

#include "cpm/community_tree.h"
#include "graph/graph.h"

namespace kcc {

/// Writes the community tree in the paper's Fig. 4.2 style: one node per
/// community labelled "k<k>id<id>", main communities filled black, parallel
/// communities unfilled. Levels with k below `min_k_shown` are skipped (the
/// paper omits k <= 5 for readability).
void write_tree_dot(std::ostream& out, const CommunityTree& tree,
                    std::size_t min_k_shown = 2);

void write_tree_dot_file(const std::string& path, const CommunityTree& tree,
                         std::size_t min_k_shown = 2);

/// Plain undirected graph in DOT (for small example graphs).
void write_graph_dot(std::ostream& out, const Graph& g);

}  // namespace kcc
