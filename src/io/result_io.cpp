#include "io/result_io.h"

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {
namespace {

constexpr const char* kMagic = "kcc-cpm-result";
constexpr int kVersion = 1;

}  // namespace

void write_cpm_result(std::ostream& out, const CpmResult& result) {
  require(result.max_k >= result.min_k,
          "write_cpm_result: result covers no k");
  // num_nodes is not stored in CpmResult; derive an upper bound from the
  // cliques (sufficient for validation on reload).
  std::size_t num_nodes = 0;
  for (const auto& clique : result.cliques) {
    if (!clique.empty()) {
      num_nodes = std::max<std::size_t>(num_nodes, clique.back() + 1);
    }
  }
  out << kMagic << ' ' << kVersion << '\n';
  out << "meta " << result.min_k << ' ' << result.max_k << ' '
      << result.cliques.size() << ' ' << num_nodes << '\n';
  for (CliqueId c = 0; c < result.cliques.size(); ++c) {
    out << "clique " << c;
    for (NodeId v : result.cliques[c]) out << ' ' << v;
    out << '\n';
  }
  for (const CommunitySet& set : result.by_k) {
    out << "set " << set.k << ' ' << set.count() << '\n';
    for (const Community& community : set.communities) {
      out << "community " << set.k << ' ' << community.id << " nodes";
      for (NodeId v : community.nodes) out << ' ' << v;
      out << " cliques";
      for (CliqueId c : community.clique_ids) out << ' ' << c;
      out << '\n';
    }
  }
}

void write_cpm_result_file(const std::string& path, const CpmResult& result) {
  std::ofstream out(path);
  require(out.good(), "write_cpm_result_file: cannot open '" + path + "'");
  write_cpm_result(out, result);
  require(out.good(), "write_cpm_result_file: write failed for '" + path + "'");
}

CpmResult read_cpm_result(std::istream& in, std::size_t* num_nodes_out) {
  std::string magic;
  int version = 0;
  require(static_cast<bool>(in >> magic >> version),
          "read_cpm_result: missing header");
  require(magic == kMagic, "read_cpm_result: bad magic '" + magic + "'");
  require(version == kVersion,
          "read_cpm_result: unsupported version " + std::to_string(version));

  std::string keyword;
  require(static_cast<bool>(in >> keyword) && keyword == "meta",
          "read_cpm_result: missing meta line");
  CpmResult result;
  std::size_t num_cliques = 0, num_nodes = 0;
  require(static_cast<bool>(in >> result.min_k >> result.max_k >>
                            num_cliques >> num_nodes),
          "read_cpm_result: malformed meta line");
  require(result.min_k >= 2 && result.max_k >= result.min_k,
          "read_cpm_result: invalid k range");

  result.cliques.resize(num_cliques);
  std::string line;
  std::getline(in, line);  // finish the meta line
  for (std::size_t i = 0; i < num_cliques; ++i) {
    require(static_cast<bool>(std::getline(in, line)),
            "read_cpm_result: truncated clique section");
    std::istringstream ls(line);
    CliqueId id = 0;
    require(static_cast<bool>(ls >> keyword >> id) && keyword == "clique" &&
                id == i,
            "read_cpm_result: malformed clique line " + std::to_string(i));
    NodeSet nodes;
    NodeId v = 0;
    while (ls >> v) {
      require(v < num_nodes, "read_cpm_result: clique node out of range");
      nodes.push_back(v);
    }
    require(nodes.size() >= 2 && is_sorted_unique(nodes),
            "read_cpm_result: clique must be a sorted set of >= 2 nodes");
    result.cliques[i] = std::move(nodes);
  }

  result.by_k.resize(result.max_k - result.min_k + 1);
  for (std::size_t k = result.min_k; k <= result.max_k; ++k) {
    require(static_cast<bool>(std::getline(in, line)),
            "read_cpm_result: truncated set section");
    std::istringstream ls(line);
    std::size_t file_k = 0, count = 0;
    require(static_cast<bool>(ls >> keyword >> file_k >> count) &&
                keyword == "set" && file_k == k,
            "read_cpm_result: malformed set line for k " + std::to_string(k));
    CommunitySet& set = result.at(k);
    set.k = k;
    set.community_of_clique.assign(result.cliques.size(),
                                   CommunitySet::kNoCommunity);
    for (CommunityId id = 0; id < count; ++id) {
      require(static_cast<bool>(std::getline(in, line)),
              "read_cpm_result: truncated community section");
      std::istringstream cs(line);
      std::size_t ck = 0;
      CommunityId cid = 0;
      require(static_cast<bool>(cs >> keyword >> ck >> cid) &&
                  keyword == "community" && ck == k && cid == id,
              "read_cpm_result: malformed community line");
      Community community;
      community.k = k;
      community.id = id;
      require(static_cast<bool>(cs >> keyword) && keyword == "nodes",
              "read_cpm_result: missing nodes section");
      std::string token;
      while (cs >> token && token != "cliques") {
        community.nodes.push_back(
            static_cast<NodeId>(std::stoul(token)));
      }
      require(token == "cliques", "read_cpm_result: missing cliques section");
      CliqueId c = 0;
      while (cs >> c) {
        require(c < result.cliques.size(),
                "read_cpm_result: community clique id out of range");
        community.clique_ids.push_back(c);
        set.community_of_clique[c] = id;
      }
      require(is_sorted_unique(community.nodes) &&
                  is_sorted_unique(community.clique_ids) &&
                  !community.clique_ids.empty(),
              "read_cpm_result: community sections must be sorted sets");
      set.communities.push_back(std::move(community));
    }
  }
  if (num_nodes_out != nullptr) *num_nodes_out = num_nodes;
  return result;
}

CpmResult read_cpm_result_file(const std::string& path,
                               std::size_t* num_nodes) {
  std::ifstream in(path);
  require(in.good(), "read_cpm_result_file: cannot open '" + path + "'");
  return read_cpm_result(in, num_nodes);
}

}  // namespace kcc
