// Community membership export.
//
// Downstream users (plotting, joins against BGP data) want communities as a
// flat table. Two formats:
//  * membership CSV — one row per (AS label, k, community id);
//  * per-k listing — the CFinder-style "communities" text file: one line
//    per community, "k id: label label ...".
#pragma once

#include <iosfwd>
#include <string>

#include "cpm/community.h"
#include "io/edge_list.h"

namespace kcc {

/// Writes "as,k,community" rows for every membership in `result`.
void write_membership_csv(std::ostream& out, const CpmResult& result,
                          const LabeledGraph& g);
void write_membership_csv_file(const std::string& path,
                               const CpmResult& result, const LabeledGraph& g);

/// Writes the per-k community listing.
void write_community_listing(std::ostream& out, const CpmResult& result,
                             const LabeledGraph& g);

}  // namespace kcc
