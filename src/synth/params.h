// Parameters of the synthetic AS-ecosystem generator (see as_topology.h for
// the mechanism and DESIGN.md Sec. 2 for why each knob exists).
//
// Presets:
//  * test_scale()  — small ecosystem for unit/integration tests (seconds);
//  * bench_scale() — default for the experiment harnesses; k range matches
//    the paper (apex clique of 36) at a node count that keeps the full CPM
//    pipeline in the seconds range;
//  * paper_scale() — the paper's published dataset dimensions (35,390 ASes,
//    232 IXPs); minutes of CPU.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kcc {

struct SynthParams {
  std::uint64_t seed = 42;

  // --- population ---
  std::size_t num_ases = 8000;
  std::size_t num_tier1 = 10;
  double transit_fraction = 0.08;  // of num_ases (tier1 excluded from this)

  // --- geography ---
  std::size_t num_countries = 40;
  double zipf_country_exponent = 1.05;  // country size skew
  double p_stub_unknown = 0.05;         // stubs with no geo data
  double p_stub_extra_country = 0.03;   // stubs present in a 2nd country
  double p_transit_worldwide = 0.30;
  double p_transit_continental = 0.25;  // else national
  double p_participant_gains_ixp_country = 0.9;

  // --- customer-provider hierarchy ---
  double p_stub_two_providers = 0.30;    // multi-homing
  double p_stub_three_providers = 0.15;
  double p_stub_same_country_provider = 0.75;
  std::size_t max_transit_providers = 3;
  /// Probability that a multi-homed stub's two providers peer directly.
  /// This closes customer-provider-provider triangles, whose shared
  /// provider-pair edges chain the triangles together — the mechanism
  /// behind the paper's giant k=3 main community (69% of all ASes).
  double p_provider_peering = 0.60;

  // --- regional cliques (root communities) ---
  std::size_t num_regional_cliques = 800;
  std::size_t regional_clique_min = 3;
  std::size_t regional_clique_max = 8;

  // --- IXPs ---
  std::size_t num_ixps = 80;
  std::size_t big_ixp_count = 3;            // the AMS-IX/DE-CIX/LINX analogs
  std::size_t big_ixp_participants = 260;
  std::size_t small_ixp_min = 5;
  std::size_t small_ixp_max = 70;
  double zipf_ixp_exponent = 1.0;           // small-IXP size skew
  std::size_t full_mesh_ixp_max = 6;        // small IXPs up to this size mesh
  /// Mid-size IXPs (up to route_server_ixp_max participants) run a
  /// route-server full mesh with this probability — the source of the
  /// paper's root-band full-share communities at k up to ~14.
  double p_route_server_mesh = 0.25;
  std::size_t route_server_ixp_max = 14;
  double p_small_ixp_peering = 0.08;        // other small-IXP pairs
  // graded peering inside the big three
  std::size_t big_core_size = 44;           // shared European core pool
  double p_core_peering = 0.35;
  std::size_t big_middle_ring = 70;         // per big IXP
  double p_middle_peering = 0.18;
  double p_middle_core_peering = 0.30;
  double p_outer_peering = 0.03;

  // --- planted dense structures ---
  std::size_t apex_clique_size = 36;       // the paper's maximum k
  std::size_t apex_satellites = 2;         // extra ASes adjacent to 35 apex members
  std::size_t crown_cliques_per_big_ixp = 3;
  std::size_t crown_clique_min = 29;
  std::size_t crown_clique_max = 34;
  std::size_t trunk_chains = 7;
  std::size_t trunk_chain_min_k = 15;
  std::size_t trunk_chain_max_k = 28;
  std::size_t trunk_chain_min_len = 3;
  std::size_t trunk_chain_max_len = 9;
  std::size_t nested_branch_base = 21;     // the MSK-IX-style branch (Sec. 4.2)
  std::size_t nested_branch_levels = 3;

  /// Throws kcc::Error when the parameters are inconsistent (e.g. core pool
  /// larger than the transit population).
  void validate() const;

  static SynthParams test_scale();
  static SynthParams bench_scale();
  static SynthParams paper_scale();
};

}  // namespace kcc
