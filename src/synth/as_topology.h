// Synthetic AS-ecosystem generator.
//
// Substitutes the paper's April-2010 measurement datasets (Sec. 2) with a
// mechanistic model that reproduces the structural drivers behind the
// paper's findings (see DESIGN.md Sec. 2 for the substitution argument):
//
//  * customer-provider hierarchy — Tier-1 full mesh, preferential-attachment
//    transit layer, multi-homed stubs → sparse global topology, heavy-tailed
//    degrees, a single connected component;
//  * geography — Zipf-sized countries grouped into continents; roles carry
//    different multi-country spread → the Table 2.2 tag mix;
//  * IXPs — three dominant European IXPs sharing a core participant pool
//    plus a power-law tail of small IXPs; peering probability graded from a
//    dense core outwards → dense crown structures and root-level meshes;
//  * planted dense structures — an apex clique (the paper's 36-clique), a
//    pair of "satellite" ASes adjacent to 35 of its members (the paper's
//    38-AS top community with non-European, non-IXP exceptions),
//    full-share crown cliques inside single big IXPs, window-chain trunk
//    structures spanning multiple IXPs (long k-clique chains with no
//    full-share IXP), a nested branch inside one medium IXP (the MSK-IX
//    case of Sec. 4.2), and small same-country regional cliques
//    (multi-homing root communities of Sec. 4.3).
//
// Everything is deterministic in (SynthParams, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "data/geography.h"
#include "data/ixp.h"
#include "data/relationships.h"
#include "io/edge_list.h"
#include "synth/params.h"

namespace kcc {

enum class AsRole : std::uint8_t { kTier1, kTransit, kStub };

const char* as_role_name(AsRole role);

/// A consistent (topology, IXP, geography) triple, plus generation
/// bookkeeping that tests and analyses can rely on.
struct AsEcosystem {
  LabeledGraph topology;          // labels are synthetic AS numbers (id + 1)
  IxpDataset ixps;
  GeoDataset geo;
  RelationshipMap relationships;  // per-link customer-provider vs peering
  std::vector<AsRole> roles;      // per node
  std::vector<IxpId> big_ixps;    // ids of the big-three analogs
  NodeSet apex_clique;            // the planted maximum clique
  NodeSet apex_satellites;        // the satellite ASes next to the apex

  std::size_t num_ases() const { return topology.graph.num_nodes(); }
};

/// Generates the full ecosystem; throws kcc::Error on invalid parameters.
AsEcosystem generate_ecosystem(const SynthParams& params);

}  // namespace kcc
