#include "synth/params.h"

#include "common/error.h"

namespace kcc {

void SynthParams::validate() const {
  require(num_ases >= 100, "SynthParams: need at least 100 ASes");
  require(num_tier1 >= 3 && num_tier1 < num_ases / 10,
          "SynthParams: tier1 count out of range");
  require(transit_fraction > 0.0 && transit_fraction < 0.5,
          "SynthParams: transit_fraction out of range");
  const auto num_transit =
      static_cast<std::size_t>(transit_fraction * double(num_ases));
  require(num_transit >= big_core_size,
          "SynthParams: transit population smaller than the big-IXP core");
  require(num_countries >= 6, "SynthParams: need at least 6 countries");
  require(num_ixps >= big_ixp_count + 1,
          "SynthParams: need more IXPs than big IXPs");
  require(big_ixp_count >= 1, "SynthParams: need at least one big IXP");
  require(big_ixp_participants >= big_core_size + big_middle_ring,
          "SynthParams: big IXP too small for core + middle ring");
  require(big_ixp_participants < num_ases,
          "SynthParams: big IXP larger than the AS population");
  require(apex_clique_size >= 4 && apex_clique_size <= big_core_size,
          "SynthParams: apex clique must fit in the core pool");
  require(crown_clique_min >= 3 && crown_clique_min <= crown_clique_max,
          "SynthParams: crown clique range invalid");
  require(crown_clique_max <= apex_clique_size,
          "SynthParams: crown cliques cannot exceed the apex size");
  require(trunk_chain_min_k >= 3 && trunk_chain_min_k <= trunk_chain_max_k,
          "SynthParams: trunk chain k range invalid");
  require(trunk_chain_max_k < crown_clique_min,
          "SynthParams: trunk chains must stay below the crown band");
  require(trunk_chain_min_len >= 1 &&
              trunk_chain_min_len <= trunk_chain_max_len,
          "SynthParams: trunk chain length range invalid");
  require(regional_clique_min >= 3 &&
              regional_clique_min <= regional_clique_max,
          "SynthParams: regional clique range invalid");
  require(small_ixp_min >= 3 && small_ixp_min <= small_ixp_max,
          "SynthParams: small IXP size range invalid");
  require(nested_branch_base > nested_branch_levels + 2,
          "SynthParams: nested branch too deep for its base size");
  require(nested_branch_base <= trunk_chain_max_k,
          "SynthParams: nested branch base outside the trunk band");
}

SynthParams SynthParams::test_scale() {
  SynthParams p;
  p.num_ases = 1500;
  p.num_tier1 = 6;
  p.transit_fraction = 0.10;
  p.num_countries = 18;
  p.num_regional_cliques = 50;
  p.num_ixps = 20;
  p.big_ixp_participants = 90;
  p.big_core_size = 26;
  p.big_middle_ring = 25;
  p.small_ixp_max = 40;
  p.apex_clique_size = 20;
  p.apex_satellites = 2;
  p.crown_clique_min = 16;
  p.crown_clique_max = 19;
  p.trunk_chains = 4;
  p.trunk_chain_min_k = 9;
  p.trunk_chain_max_k = 14;
  p.trunk_chain_max_len = 5;
  p.nested_branch_base = 12;
  p.nested_branch_levels = 2;
  return p;
}

SynthParams SynthParams::bench_scale() { return SynthParams{}; }

SynthParams SynthParams::paper_scale() {
  SynthParams p;
  p.num_ases = 35390;
  p.num_tier1 = 12;
  p.transit_fraction = 0.07;
  p.num_countries = 60;
  p.num_regional_cliques = 1000;
  p.num_ixps = 232;
  p.big_ixp_participants = 380;
  p.big_middle_ring = 90;
  p.trunk_chains = 10;
  return p;
}

}  // namespace kcc
