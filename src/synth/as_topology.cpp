#include "synth/as_topology.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/set_ops.h"
#include "graph/graph_algorithms.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace kcc {

const char* as_role_name(AsRole role) {
  switch (role) {
    case AsRole::kTier1:
      return "tier1";
    case AsRole::kTransit:
      return "transit";
    case AsRole::kStub:
      return "stub";
  }
  return "?";
}

namespace {

constexpr const char* kContinents[] = {"EU", "NA", "AS", "SA", "OC", "AF"};
// Fraction of countries per continent (Europe-heavy, like the IXP world).
constexpr double kContinentShare[] = {0.35, 0.15, 0.20, 0.10, 0.08, 0.12};

// Mutable generation state threaded through the build steps.
struct Generator {
  const SynthParams& p;
  Rng rng;

  std::size_t num_transit = 0;
  std::size_t first_transit = 0;  // == num_tier1
  std::size_t first_stub = 0;

  std::vector<Country> countries;
  std::vector<std::vector<CountryId>> locations;  // per node
  std::vector<AsRole> roles;

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<LinkType> edge_types;  // parallel to `edges`
  std::vector<NodeId> pref_pool;  // preferential-attachment multiset

  std::vector<Ixp> ixps;
  std::vector<bool> in_core;      // node is in the big-IXP core pool
  NodeSet core_pool;
  std::vector<NodeSet> big_middle;  // per big IXP: its middle ring
  std::vector<bool> on_any_ixp;

  NodeSet apex;
  NodeSet satellites;

  explicit Generator(const SynthParams& params) : p(params), rng(params.seed) {}

  std::size_t n() const { return p.num_ases; }

  // Every non-hierarchy link (IXP fabric, Tier-1 mesh, planted dense
  // structures, regional cliques) is settlement-free peering; only
  // customer-provider attachments pass kCustomerProvider explicitly.
  void add_edge(NodeId u, NodeId v, LinkType type = LinkType::kPeering) {
    if (u == v) return;
    edges.emplace_back(u, v);
    edge_types.push_back(type);
  }

  void full_mesh(const NodeSet& members) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        add_edge(members[i], members[j]);
      }
    }
  }

  // ---------------------------------------------------------------- roles
  void assign_roles() {
    num_transit = static_cast<std::size_t>(p.transit_fraction * double(n()));
    first_transit = p.num_tier1;
    first_stub = p.num_tier1 + num_transit;
    require(first_stub < n(), "generate_ecosystem: no stub population left");
    roles.assign(n(), AsRole::kStub);
    for (std::size_t i = 0; i < p.num_tier1; ++i) roles[i] = AsRole::kTier1;
    for (std::size_t i = first_transit; i < first_stub; ++i) {
      roles[i] = AsRole::kTransit;
    }
  }

  // ------------------------------------------------------------ geography
  void build_countries() {
    // Allocate countries to continents by the fixed shares; Europe first so
    // Zipf rank 0..  favours European countries (where the big IXPs live).
    countries.clear();
    std::size_t assigned = 0;
    for (std::size_t c = 0; c < 6; ++c) {
      std::size_t count = c == 5
                              ? p.num_countries - assigned
                              : std::max<std::size_t>(
                                    1, static_cast<std::size_t>(
                                           kContinentShare[c] *
                                           double(p.num_countries)));
      count = std::min(count, p.num_countries - assigned);
      for (std::size_t i = 0; i < count; ++i) {
        Country country;
        country.code = std::string(kContinents[c]) + "-" +
                       std::to_string(countries.size());
        country.continent = kContinents[c];
        countries.push_back(std::move(country));
      }
      assigned += count;
      if (assigned >= p.num_countries) break;
    }
  }

  CountryId sample_country() {
    return static_cast<CountryId>(
        rng.next_zipf(countries.size(), p.zipf_country_exponent));
  }

  CountryId sample_country_in_continent(const std::string& continent) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const CountryId c = sample_country();
      if (countries[c].continent == continent) return c;
    }
    // Fall back to the first country of the continent.
    for (CountryId c = 0; c < countries.size(); ++c) {
      if (countries[c].continent == continent) return c;
    }
    return 0;
  }

  void add_location(NodeId v, CountryId c) {
    auto& locs = locations[v];
    if (!contains(locs, c)) {
      locs.insert(std::lower_bound(locs.begin(), locs.end(), c), c);
    }
  }

  std::size_t countries_in_continent(const std::string& continent) const {
    std::size_t count = 0;
    for (const Country& c : countries) {
      if (c.continent == continent) ++count;
    }
    return count;
  }

  std::size_t continent_span(NodeId v) const {
    std::vector<std::string> seen;
    for (CountryId c : locations[v]) {
      const std::string& continent = countries[c].continent;
      if (std::find(seen.begin(), seen.end(), continent) == seen.end()) {
        seen.push_back(continent);
      }
    }
    return seen.size();
  }

  void assign_geography() {
    locations.assign(n(), {});
    for (NodeId v = 0; v < n(); ++v) {
      switch (roles[v]) {
        case AsRole::kTier1: {
          // Worldwide by construction: 4-8 countries over >= 3 continents.
          const std::size_t want = 4 + rng.next_below(5);
          std::size_t guard = 0;
          while ((locations[v].size() < want || continent_span(v) < 3) &&
                 ++guard < 1024) {
            add_location(v, sample_country());
          }
          break;
        }
        case AsRole::kTransit: {
          const double roll = rng.next_double();
          if (roll < p.p_transit_worldwide) {
            const std::size_t want = 3 + rng.next_below(4);
            std::size_t guard = 0;
            while ((locations[v].size() < want || continent_span(v) < 2) &&
                   ++guard < 1024) {
              add_location(v, sample_country());
            }
          } else if (roll < p.p_transit_worldwide + p.p_transit_continental) {
            const CountryId home = sample_country();
            add_location(v, home);
            // Clamp to the continent's country count (small continents may
            // not have enough distinct countries).
            const std::size_t want = std::min(
                countries_in_continent(countries[home].continent),
                std::size_t{2} + rng.next_below(3));
            std::size_t guard = 0;
            while (locations[v].size() < want && ++guard < 256) {
              add_location(v, sample_country_in_continent(
                                  countries[home].continent));
            }
          } else {
            add_location(v, sample_country());
          }
          break;
        }
        case AsRole::kStub: {
          if (rng.next_bool(p.p_stub_unknown)) break;  // unknown AS
          const CountryId home = sample_country();
          add_location(v, home);
          if (rng.next_bool(p.p_stub_extra_country)) {
            add_location(v, sample_country_in_continent(
                                countries[home].continent));
          }
          break;
        }
      }
    }
  }

  // ------------------------------------------------------------ hierarchy
  void build_hierarchy() {
    // Tier-1 full mesh (the paper's settlement-free top, Sec. 1).
    NodeSet tier1(p.num_tier1);
    for (std::size_t i = 0; i < p.num_tier1; ++i) {
      tier1[i] = static_cast<NodeId>(i);
    }
    full_mesh(tier1);
    for (NodeId v : tier1) {
      for (std::size_t i = 0; i < p.num_tier1 - 1; ++i) pref_pool.push_back(v);
    }

    // Transit layer: 1..max providers among earlier transits / tier1,
    // preferential by degree (the pref_pool multiset).
    for (NodeId t = static_cast<NodeId>(first_transit);
         t < static_cast<NodeId>(first_stub); ++t) {
      const std::size_t providers = 1 + rng.next_below(p.max_transit_providers);
      NodeSet chosen;
      for (std::size_t i = 0; i < providers; ++i) {
        for (int attempt = 0; attempt < 32; ++attempt) {
          const NodeId candidate =
              pref_pool[rng.next_below(pref_pool.size())];
          if (candidate != t && !contains(chosen, candidate)) {
            chosen.insert(
                std::lower_bound(chosen.begin(), chosen.end(), candidate),
                candidate);
            break;
          }
        }
      }
      for (NodeId provider : chosen) {
        add_edge(t, provider, LinkType::kCustomerProvider);
        pref_pool.push_back(provider);
        pref_pool.push_back(t);
      }
    }

    // Country -> transit providers index for regional provider choice.
    std::vector<std::vector<NodeId>> transit_in_country(countries.size());
    for (NodeId t = static_cast<NodeId>(first_transit);
         t < static_cast<NodeId>(first_stub); ++t) {
      for (CountryId c : locations[t]) transit_in_country[c].push_back(t);
    }

    // Stubs: multi-homing to 1-3 providers, same-country biased.
    for (NodeId s = static_cast<NodeId>(first_stub);
         s < static_cast<NodeId>(n()); ++s) {
      std::size_t providers = 1;
      const double roll = rng.next_double();
      if (roll < p.p_stub_three_providers) {
        providers = 3;
      } else if (roll < p.p_stub_three_providers + p.p_stub_two_providers) {
        providers = 2;
      }
      NodeSet chosen;
      for (std::size_t i = 0; i < providers; ++i) {
        NodeId provider = static_cast<NodeId>(-1);
        const bool prefer_local = rng.next_bool(p.p_stub_same_country_provider);
        if (prefer_local && !locations[s].empty()) {
          const CountryId home =
              locations[s][rng.next_below(locations[s].size())];
          const auto& local = transit_in_country[home];
          if (!local.empty()) {
            provider = local[rng.next_below(local.size())];
          }
        }
        if (provider == static_cast<NodeId>(-1)) {
          for (int attempt = 0; attempt < 32; ++attempt) {
            const NodeId candidate =
                pref_pool[rng.next_below(pref_pool.size())];
            if (candidate != s) {
              provider = candidate;
              break;
            }
          }
        }
        if (provider == static_cast<NodeId>(-1) || contains(chosen, provider)) {
          continue;
        }
        chosen.insert(
            std::lower_bound(chosen.begin(), chosen.end(), provider),
            provider);
        add_edge(s, provider, LinkType::kCustomerProvider);
        pref_pool.push_back(provider);
      }
      // Provider peering closes the multi-homing triangle; shared
      // provider-pair edges chain these triangles into the giant k=3
      // community.
      if (chosen.size() >= 2 && rng.next_bool(p.p_provider_peering)) {
        const std::size_t a = rng.next_below(chosen.size());
        std::size_t b = rng.next_below(chosen.size());
        if (a == b) b = (b + 1) % chosen.size();
        add_edge(chosen[a], chosen[b]);
      }
    }
  }

  // ----------------------------------------------------- regional cliques
  void plant_regional_cliques() {
    // Country -> non-tier1 members with a presence there. Transits are
    // repeated in the pool: a regional clique is a multi-homing structure
    // (customers + their providers), and the providers are also part of the
    // main percolation body — which is what gives the paper its high
    // parallel-vs-main overlap fractions.
    std::vector<std::vector<NodeId>> in_country(countries.size());
    for (NodeId v = static_cast<NodeId>(first_transit);
         v < static_cast<NodeId>(n()); ++v) {
      // The big-IXP core pool is excluded: meshing extra pairs among the
      // core would extend the planted apex clique past its intended size.
      if (!in_core.empty() && in_core[v]) continue;
      // Providers (transits) and exchange members are the glue between a
      // regional clique and the main percolation body — they are what gives
      // the paper its high parallel-vs-main overlap fractions.
      std::size_t repeats = roles[v] == AsRole::kTransit ? 6 : 1;
      if (!on_any_ixp.empty() && on_any_ixp[v]) repeats *= 3;
      for (CountryId c : locations[v]) {
        for (std::size_t r = 0; r < repeats; ++r) in_country[c].push_back(v);
      }
    }
    for (std::size_t i = 0; i < p.num_regional_cliques; ++i) {
      const CountryId c = sample_country();
      const auto& pool = in_country[c];
      if (pool.size() < p.regional_clique_min) continue;
      // Zipf-skewed sizes: most regional cliques are triangles/quads (a
      // multi-homed customer plus its providers), occasionally larger —
      // this is what makes the k=3 community count the Fig. 4.1 maximum.
      const std::size_t span =
          std::min(pool.size(), p.regional_clique_max) -
          p.regional_clique_min + 1;
      const std::size_t size =
          p.regional_clique_min + rng.next_zipf(span, 1.6);
      // The pool is a weighted multiset (transits repeated); draw with
      // rejection until `size` distinct members are collected.
      NodeSet members;
      for (std::size_t attempt = 0;
           members.size() < size && attempt < size * 64; ++attempt) {
        const NodeId v = pool[rng.next_below(pool.size())];
        if (!contains(members, v)) {
          members.insert(
              std::lower_bound(members.begin(), members.end(), v), v);
        }
      }
      if (members.size() < p.regional_clique_min) continue;
      full_mesh(members);
    }
  }

  // ------------------------------------------------------------------ IXPs
  // Weighted pick of `count` distinct nodes from `pool` with `weight(v)`
  // relative weights (rejection-based; weights must be small integers).
  NodeSet weighted_sample(const std::vector<NodeId>& pool, std::size_t count,
                          const std::vector<std::uint8_t>& weight_of) {
    std::vector<NodeId> expanded;
    for (NodeId v : pool) {
      for (std::uint8_t w = 0; w < weight_of[v]; ++w) expanded.push_back(v);
    }
    NodeSet chosen;
    std::size_t guard = 0;
    while (chosen.size() < count && guard < count * 64 + 1024) {
      ++guard;
      const NodeId v = expanded[rng.next_below(expanded.size())];
      if (!contains(chosen, v)) {
        chosen.insert(std::lower_bound(chosen.begin(), chosen.end(), v), v);
      }
    }
    return chosen;
  }

  bool has_continent(NodeId v, const std::string& continent) const {
    for (CountryId c : locations[v]) {
      if (countries[c].continent == continent) return true;
    }
    return false;
  }

  void build_core_pool() {
    // European transit (plus a few tier1) backbone shared by the big three.
    NodeSet candidates;
    for (std::size_t i = 0; i < std::min<std::size_t>(4, p.num_tier1); ++i) {
      candidates.push_back(static_cast<NodeId>(i));
    }
    for (NodeId t = static_cast<NodeId>(first_transit);
         t < static_cast<NodeId>(first_stub); ++t) {
      if (has_continent(t, "EU")) candidates.push_back(t);
    }
    // Top up with any transit when European presence is scarce.
    for (NodeId t = static_cast<NodeId>(first_transit);
         candidates.size() < p.big_core_size &&
         t < static_cast<NodeId>(first_stub);
         ++t) {
      if (!contains(candidates, t)) candidates.push_back(t);
    }
    require(candidates.size() >= p.big_core_size,
            "generate_ecosystem: cannot assemble the big-IXP core pool");
    std::vector<NodeId> shuffled(candidates.begin(), candidates.end());
    rng.shuffle(shuffled);
    shuffled.resize(p.big_core_size);
    core_pool.assign(shuffled.begin(), shuffled.end());
    std::sort(core_pool.begin(), core_pool.end());
    in_core.assign(n(), false);
    for (NodeId v : core_pool) {
      in_core[v] = true;
      // The core is the European heart of the topology: make sure members
      // actually have a European presence.
      if (!has_continent(v, "EU")) {
        add_location(v, sample_country_in_continent("EU"));
      }
    }
  }

  void build_ixps(std::vector<IxpId>& big_ids) {
    static const char* kBigNames[] = {"AMSIX-A", "DECIX-A", "LINX-A"};
    std::vector<std::uint8_t> weight(n(), 1);
    for (NodeId v = 0; v < n(); ++v) {
      if (roles[v] == AsRole::kTier1) {
        weight[v] = 8;
      } else if (roles[v] == AsRole::kTransit) {
        weight[v] = 4;
      }
    }

    // All nodes, used as the sampling pool with EU bias for the big three.
    std::vector<NodeId> everyone(n());
    for (NodeId v = 0; v < n(); ++v) everyone[v] = v;

    big_middle.clear();
    for (std::size_t b = 0; b < p.big_ixp_count; ++b) {
      Ixp ixp;
      ixp.name = b < 3 ? kBigNames[b] : "BIGIX-" + std::to_string(b);
      const CountryId home = sample_country_in_continent("EU");
      ixp.country = countries[home].code;

      // EU-biased weights for this IXP's extra participants.
      std::vector<std::uint8_t> w = weight;
      for (NodeId v = 0; v < n(); ++v) {
        if (has_continent(v, "EU")) {
          w[v] = static_cast<std::uint8_t>(std::min(12, w[v] * 3));
        }
        if (in_core[v]) w[v] = 0;  // core joins unconditionally
      }
      NodeSet middle = weighted_sample(everyone, p.big_middle_ring, w);
      for (NodeId v : middle) w[v] = 0;
      const std::size_t outer_count =
          p.big_ixp_participants - p.big_core_size - middle.size();
      NodeSet outer = weighted_sample(everyone, outer_count, w);

      ixp.participants = set_union(core_pool, set_union(middle, outer));
      big_middle.push_back(middle);
      big_ids.push_back(static_cast<IxpId>(ixps.size()));
      ixps.push_back(std::move(ixp));
    }

    // Small / medium IXPs with Zipf-ish sizes, country-anchored.
    std::vector<std::vector<NodeId>> in_country(countries.size());
    for (NodeId v = 0; v < n(); ++v) {
      for (CountryId c : locations[v]) in_country[c].push_back(v);
    }
    for (std::size_t i = p.big_ixp_count; i < p.num_ixps; ++i) {
      Ixp ixp;
      ixp.name = "IXP-" + std::to_string(i);
      const CountryId home = sample_country();
      ixp.country = countries[home].code;
      // next_zipf favours rank 0, so most IXPs sit near the minimum size
      // with a heavy tail of larger regional exchanges — matching the
      // skewed participant counts of the real IXP population.
      const std::size_t span = p.small_ixp_max - p.small_ixp_min + 1;
      const std::size_t size =
          p.small_ixp_min + rng.next_zipf(span, p.zipf_ixp_exponent);
      const auto& local = in_country[home];
      std::vector<std::uint8_t> w(n(), 0);
      for (NodeId v : local) {
        w[v] = roles[v] == AsRole::kStub ? 2 : 6;
      }
      // A sprinkle of out-of-country members (remote peering).
      for (std::size_t j = 0; j < size; ++j) {
        const NodeId v = static_cast<NodeId>(rng.next_below(n()));
        if (w[v] == 0) w[v] = 1;
      }
      std::vector<NodeId> pool;
      for (NodeId v = 0; v < n(); ++v) {
        if (w[v] > 0) pool.push_back(v);
      }
      if (pool.size() < p.small_ixp_min) continue;
      // Never absorb more than half the candidate pool: an IXP that covers
      // almost every AS of a country would make every regional clique there
      // a full-share community, which the paper's data contradicts (only 14
      // root communities have a full-share IXP).
      const std::size_t cap =
          std::max(p.small_ixp_min, pool.size() / 2);
      ixp.participants =
          weighted_sample(pool, std::min({size, pool.size(), cap}), w);
      ixps.push_back(std::move(ixp));
    }

    // Participants usually have a presence in the IXP's country.
    for (const Ixp& ixp : ixps) {
      CountryId home = 0;
      for (CountryId c = 0; c < countries.size(); ++c) {
        if (countries[c].code == ixp.country) {
          home = c;
          break;
        }
      }
      for (NodeId v : ixp.participants) {
        if (!contains(locations[v], home) &&
            rng.next_bool(p.p_participant_gains_ixp_country)) {
          add_location(v, home);
        }
      }
    }

    on_any_ixp.assign(n(), false);
    for (const Ixp& ixp : ixps) {
      for (NodeId v : ixp.participants) on_any_ixp[v] = true;
    }
  }

  void add_ixp_peering(const std::vector<IxpId>& big_ids) {
    // Core-core peering handled once globally (the core is shared by all
    // big IXPs; applying the probability per IXP would compound it).
    for (std::size_t i = 0; i < core_pool.size(); ++i) {
      for (std::size_t j = i + 1; j < core_pool.size(); ++j) {
        if (rng.next_bool(p.p_core_peering)) {
          add_edge(core_pool[i], core_pool[j]);
        }
      }
    }

    for (std::size_t b = 0; b < big_ids.size(); ++b) {
      const Ixp& ixp = ixps[big_ids[b]];
      const NodeSet& middle = big_middle[b];
      for (std::size_t i = 0; i < ixp.participants.size(); ++i) {
        for (std::size_t j = i + 1; j < ixp.participants.size(); ++j) {
          const NodeId a = ixp.participants[i];
          const NodeId c = ixp.participants[j];
          if (in_core[a] && in_core[c]) continue;  // handled above
          const bool a_mid = contains(middle, a);
          const bool c_mid = contains(middle, c);
          double prob = p.p_outer_peering;
          if ((in_core[a] && c_mid) || (in_core[c] && a_mid)) {
            prob = p.p_middle_core_peering;
          } else if (a_mid && c_mid) {
            prob = p.p_middle_peering;
          }
          if (rng.next_bool(prob)) add_edge(a, c);
        }
      }
    }

    for (std::size_t i = 0; i < ixps.size(); ++i) {
      if (std::find(big_ids.begin(), big_ids.end(), static_cast<IxpId>(i)) !=
          big_ids.end()) {
        continue;
      }
      const Ixp& ixp = ixps[i];
      if (ixp.participants.size() <= p.full_mesh_ixp_max ||
          (ixp.participants.size() <= p.route_server_ixp_max &&
           rng.next_bool(p.p_route_server_mesh))) {
        full_mesh(ixp.participants);  // route-server full mesh
        continue;
      }
      for (std::size_t a = 0; a < ixp.participants.size(); ++a) {
        for (std::size_t b = a + 1; b < ixp.participants.size(); ++b) {
          if (rng.next_bool(p.p_small_ixp_peering)) {
            add_edge(ixp.participants[a], ixp.participants[b]);
          }
        }
      }
    }
  }

  // -------------------------------------------------- planted structures
  void plant_apex() {
    // The apex clique: the paper's 36-clique community core, drawn from the
    // shared big-IXP pool.
    apex.assign(core_pool.begin(), core_pool.begin() + p.apex_clique_size);
    full_mesh(apex);

    // Satellites: stubs on no IXP, single non-European location, adjacent to
    // all but one apex member — they extend the apex community to 36 + s
    // ASes while keeping max k at 36 (the paper's four exceptions).
    for (std::size_t s = 0; s < p.apex_satellites; ++s) {
      NodeId satellite = static_cast<NodeId>(-1);
      for (NodeId v = static_cast<NodeId>(n()) - 1;
           v >= static_cast<NodeId>(first_stub); --v) {
        if (!on_any_ixp[v] && !contains(satellites, v)) {
          satellite = v;
          break;
        }
      }
      if (satellite == static_cast<NodeId>(-1)) break;
      locations[satellite].clear();
      add_location(satellite, sample_country_in_continent("NA"));
      for (std::size_t i = 0; i + 1 < apex.size(); ++i) {
        add_edge(satellite, apex[i]);
      }
      satellites.push_back(satellite);
    }
    std::sort(satellites.begin(), satellites.end());
  }

  void plant_crown_cliques(const std::vector<IxpId>& big_ids) {
    // Crown cliques draw their bulk from the APEX clique (already a mesh),
    // never from the wider core pool: sampling the whole core would union
    // many planted meshes over the same 40-50 nodes and push the maximum
    // clique far beyond the apex size. Fresh members come from the owning
    // IXP's middle ring, so each crown clique is a subset of that IXP's
    // participants (the full-share crown communities of Sec. 4.1).
    // A fresh member must appear in exactly one crown clique: a middle node
    // reused across cliques becomes adjacent to the union of their apex
    // subsets, which can complete the whole apex and fold every crown
    // clique into the main community (and grow the maximum clique past the
    // apex size).
    std::vector<bool> fresh_used(n(), false);
    for (std::size_t b = 0; b < big_ids.size(); ++b) {
      for (std::size_t i = 0; i < p.crown_cliques_per_big_ixp; ++i) {
        const std::size_t size =
            p.crown_clique_min +
            rng.next_below(p.crown_clique_max - p.crown_clique_min + 1);
        const std::size_t fresh = 2 + rng.next_below(3);
        require(size > fresh, "plant_crown_cliques: size too small");
        NodeSet members = rng.sample_without_replacement(apex, size - fresh);
        NodeSet extras;
        for (std::size_t attempt = 0;
             extras.size() < fresh && attempt < 256; ++attempt) {
          const NodeId v =
              big_middle[b][rng.next_below(big_middle[b].size())];
          if (!fresh_used[v] && !contains(extras, v)) {
            extras.insert(
                std::lower_bound(extras.begin(), extras.end(), v), v);
          }
        }
        for (NodeId v : extras) fresh_used[v] = true;
        members.insert(members.end(), extras.begin(), extras.end());
        sort_unique(members);
        full_mesh(members);
      }
    }
  }

  // One trunk structure: a sliding-window chain of k-cliques. Pool layout:
  // positions [0, attach) hold core members (gluing the chain to the main
  // body at low k), the rest fresh multi-IXP members; every window of
  // `k` consecutive positions is a clique.
  void plant_trunk_chains() {
    for (std::size_t j = 0; j < p.trunk_chains; ++j) {
      const std::size_t span = p.trunk_chain_max_k - p.trunk_chain_min_k;
      const std::size_t k =
          p.trunk_chain_min_k +
          (p.trunk_chains <= 1 ? 0 : (j * span) / (p.trunk_chains - 1));
      const std::size_t length =
          p.trunk_chain_min_len +
          rng.next_below(p.trunk_chain_max_len - p.trunk_chain_min_len + 1);
      const std::size_t attach = 4 + rng.next_below(std::max<std::size_t>(
                                         1, k > 7 ? k - 7 : 1));
      const std::size_t pool_size = k + length - 1;
      require(attach < k, "plant_trunk_chains: attach overlap too large");

      std::vector<NodeId> pool =
          rng.sample_without_replacement(core_pool, attach);
      // Fresh members: transit-biased from two random non-big IXPs so no
      // single IXP contains the chain (the trunk's "no full-share" trait).
      NodeSet fresh_pool;
      for (int pick = 0; pick < 2 && ixps.size() > p.big_ixp_count; ++pick) {
        const std::size_t idx =
            p.big_ixp_count +
            rng.next_below(ixps.size() - p.big_ixp_count);
        const auto& participants = ixps[idx].participants;
        fresh_pool.insert(fresh_pool.end(), participants.begin(),
                          participants.end());
      }
      sort_unique(fresh_pool);
      // Remove already-chosen members.
      NodeSet pool_sorted(pool.begin(), pool.end());
      std::sort(pool_sorted.begin(), pool_sorted.end());
      fresh_pool = set_difference(fresh_pool, pool_sorted);
      while (pool.size() < pool_size) {
        if (!fresh_pool.empty()) {
          const std::size_t pick = rng.next_below(fresh_pool.size());
          pool.push_back(fresh_pool[pick]);
          fresh_pool.erase(fresh_pool.begin() +
                           static_cast<std::ptrdiff_t>(pick));
        } else {
          const NodeId v = static_cast<NodeId>(
              first_transit + rng.next_below(n() - first_transit));
          if (std::find(pool.begin(), pool.end(), v) == pool.end()) {
            pool.push_back(v);
          }
        }
      }
      // Window edges: positions closer than k are connected.
      for (std::size_t a = 0; a < pool.size(); ++a) {
        for (std::size_t b = a + 1; b < pool.size() && b - a < k; ++b) {
          add_edge(pool[a], pool[b]);
        }
      }
    }

    plant_backbone_chains();
  }

  // Backbone chains keep the MAIN community large and chain-like through
  // the trunk band (paper Fig. 4.3: main size decays smoothly; Sec. 4.2:
  // trunk mains are "large and dense k-clique chains"). A backbone at order
  // k starts from k-1 apex members, so its first window shares k-1 nodes
  // with the apex clique and the whole chain belongs to the main community
  // at k. Lengths grow as k decreases, producing the smooth size ramp.
  void plant_backbone_chains() {
    for (std::size_t k = p.trunk_chain_max_k; k >= p.trunk_chain_min_k;
         k -= std::min<std::size_t>(k, 4)) {
      if (k < 4 || k >= p.apex_clique_size) continue;
      const std::size_t length = (p.trunk_chain_max_k - k + 2) * 3;
      const std::size_t attach = k - 1;
      std::vector<NodeId> pool =
          rng.sample_without_replacement(apex, attach);
      const std::size_t pool_size = k + length - 1;
      while (pool.size() < pool_size) {
        // Transit-biased fresh members: trunk ASes have high degree, are
        // mostly on-IXP, and have multi-country presence in the paper.
        const NodeId v = rng.next_bool(0.9)
                             ? static_cast<NodeId>(
                                   first_transit +
                                   rng.next_below(num_transit))
                             : static_cast<NodeId>(
                                   first_stub +
                                   rng.next_below(n() - first_stub));
        if (std::find(pool.begin(), pool.end(), v) == pool.end()) {
          pool.push_back(v);
        }
      }
      for (std::size_t a = 0; a < pool.size(); ++a) {
        for (std::size_t b = a + 1; b < pool.size() && b - a < k; ++b) {
          add_edge(pool[a], pool[b]);
        }
      }
      if (k < p.trunk_chain_min_k + 4) break;  // avoid size_t underflow
    }
  }

  // The MSK-IX-style nested branch (Sec. 4.2): a base clique inside one
  // medium IXP plus per-level fans producing nested parallel communities of
  // growing size as k decreases.
  void plant_nested_branch(const std::vector<IxpId>& big_ids) {
    // Pick the largest non-big IXP with enough participants.
    IxpId host = static_cast<IxpId>(-1);
    std::size_t best = 0;
    for (IxpId i = 0; i < ixps.size(); ++i) {
      if (std::find(big_ids.begin(), big_ids.end(), i) != big_ids.end()) {
        continue;
      }
      if (ixps[i].participants.size() > best) {
        best = ixps[i].participants.size();
        host = i;
      }
    }
    const std::size_t need =
        p.nested_branch_base + 6 * p.nested_branch_levels + 10;
    if (host == static_cast<IxpId>(-1) || best < need) return;

    const NodeSet& participants = ixps[host].participants;
    NodeSet pool = rng.sample_without_replacement(participants, need);
    std::size_t cursor = 0;
    // Base clique: mostly host-IXP participants plus one external transit,
    // so the branch has a > 95% max-share-IXP but no full-share (the
    // paper's MSK-IX observation).
    NodeSet base(pool.begin(), pool.begin() + p.nested_branch_base - 1);
    cursor += p.nested_branch_base - 1;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const NodeId external = static_cast<NodeId>(
          first_transit + rng.next_below(num_transit));
      if (!contains(participants, external) &&
          std::find(base.begin(), base.end(), external) == base.end()) {
        base.push_back(external);
        break;
      }
    }
    std::sort(base.begin(), base.end());
    full_mesh(base);

    // Level l fans connect to a (base - 1 - l)-subset of the base clique.
    // A couple of fan members per level are transits from OUTSIDE the host
    // IXP: the paper's MSK-IX branch shares > 95% of its members with its
    // max-share-IXP but is not fully contained in it.
    for (std::size_t level = 1; level <= p.nested_branch_levels; ++level) {
      const std::size_t anchor_size = p.nested_branch_base - 1 - level;
      const std::size_t fan = 5 + 5 * level;
      NodeSet anchors(base.begin(), base.begin() + anchor_size);
      for (std::size_t f = 0; f < fan; ++f) {
        NodeId member;
        if (f < 2) {
          member = static_cast<NodeId>(first_transit +
                                       rng.next_below(num_transit));
          if (contains(participants, member) || contains(base, member)) {
            continue;
          }
        } else if (cursor < pool.size()) {
          member = pool[cursor++];
        } else {
          break;
        }
        for (NodeId a : anchors) add_edge(member, a);
      }
    }
  }

  // ---------------------------------------------------------- confluence
  LabeledGraph finish_topology() {
    Graph g = Graph::from_edges(n(), edges);
    // The paper's dataset is one connected component; tie stragglers to a
    // tier1 (round-robin) without disturbing the dense structure.
    const ComponentLabeling labels = connected_components(g);
    if (labels.count > 1) {
      const auto sizes = labels.sizes();
      const std::size_t giant = static_cast<std::size_t>(
          std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
      std::vector<bool> component_seen(labels.count, false);
      std::size_t rr = 0;
      for (NodeId v = 0; v < n(); ++v) {
        const auto comp = labels.component_of[v];
        if (comp == giant || component_seen[comp]) continue;
        component_seen[comp] = true;
        add_edge(v, static_cast<NodeId>(rr % p.num_tier1),
                 LinkType::kCustomerProvider);
        ++rr;
      }
      g = Graph::from_edges(n(), edges);
    }
    LabeledGraph out;
    out.graph = std::move(g);
    out.labels.resize(n());
    for (std::size_t i = 0; i < n(); ++i) {
      out.labels[i] = static_cast<std::uint64_t>(i) + 1;  // AS numbers
    }
    return out;
  }

  // Consolidates the per-record link types onto the deduplicated canonical
  // edge list. When a link was created both as a transit contract and as
  // peering, the economic relationship (customer-provider) wins.
  RelationshipMap build_relationships(const Graph& g) const {
    const auto canonical = g.edges();
    std::vector<LinkType> types(canonical.size(), LinkType::kPeering);
    auto index_of = [&](NodeId u, NodeId v) {
      if (u > v) std::swap(u, v);
      const auto it = std::lower_bound(canonical.begin(), canonical.end(),
                                       std::make_pair(u, v));
      return static_cast<std::size_t>(it - canonical.begin());
    };
    // First pass marks everything that appears as peering (default), second
    // overlays customer-provider records.
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edge_types[i] == LinkType::kCustomerProvider) {
        types[index_of(edges[i].first, edges[i].second)] =
            LinkType::kCustomerProvider;
      }
    }
    return RelationshipMap(g, std::move(types));
  }
};

}  // namespace

AsEcosystem generate_ecosystem(const SynthParams& params) {
  KCC_SPAN("synth/generate_ecosystem");
  params.validate();
  Generator gen(params);

  {
    KCC_SPAN("synth/roles_geography");
    gen.assign_roles();
    gen.build_countries();
    gen.assign_geography();
  }
  {
    KCC_SPAN("synth/hierarchy");
    gen.build_hierarchy();
    gen.build_core_pool();
  }

  std::vector<IxpId> big_ids;
  {
    KCC_SPAN("synth/ixps");
    gen.build_ixps(big_ids);
    gen.add_ixp_peering(big_ids);
  }
  {
    KCC_SPAN("synth/planted_structures");
    // Regional cliques are planted after the IXPs so their member pool can
    // prefer exchange members (see plant_regional_cliques).
    gen.plant_regional_cliques();
    gen.plant_apex();
    gen.plant_crown_cliques(big_ids);
    gen.plant_trunk_chains();
    gen.plant_nested_branch(big_ids);
  }

  AsEcosystem eco;
  {
    KCC_SPAN("synth/finish_topology");
    eco.topology = gen.finish_topology();
    eco.relationships = gen.build_relationships(eco.topology.graph);
  }
  KCC_LOG(kDebug) << "generate_ecosystem: " << eco.num_ases() << " ASes, "
                  << eco.topology.graph.num_edges() << " links (seed "
                  << params.seed << ")";
  eco.ixps = IxpDataset(std::move(gen.ixps));
  eco.geo = GeoDataset(std::move(gen.countries), std::move(gen.locations));
  eco.roles = std::move(gen.roles);
  eco.big_ixps = std::move(big_ids);
  eco.apex_clique = std::move(gen.apex);
  eco.apex_satellites = std::move(gen.satellites);
  return eco;
}

}  // namespace kcc
