#include "cpm/compare.h"

#include <algorithm>
#include <sstream>

#include "metrics/similarity.h"
#include "obs/metrics.h"

namespace kcc::cpm {
namespace {

std::vector<NodeSet> node_sets_at(const Result& result, std::size_t k) {
  std::vector<NodeSet> sets;
  if (!result.cpm.has_k(k)) return sets;
  for (const Community& c : result.cpm.at(k).communities) {
    sets.push_back(c.nodes);
  }
  return sets;
}

double mean_best_jaccard(const std::vector<NodeSet>& from,
                         const std::vector<NodeSet>& to) {
  if (from.empty()) return 1.0;  // nothing to match is a perfect match
  double sum = 0.0;
  for (const BestMatch& m : best_matches(from, to)) sum += m.jaccard;
  return sum / static_cast<double>(from.size());
}

void publish_gap_metrics(const Comparison& comparison) {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.counter("cpm_gap_compares_total").inc();
  if (!comparison.ok) reg.counter("cpm_gap_failures_total").inc();
  obs::Histogram& f1_hist = reg.histogram(
      "cpm_gap_f1_permille", obs::Histogram::linear_bounds(900.0, 10.0, 11));
  for (const LevelGap& level : comparison.levels) {
    f1_hist.observe(level.f1 * 1000.0);
  }
  reg.gauge("cpm_gap_worst_f1_permille")
      .set(static_cast<std::int64_t>(comparison.worst_f1 * 1000.0));
}

}  // namespace

Comparison compare_results(const Result& baseline, const Result& candidate,
                           const CompareOptions& options) {
  Comparison out;
  const CpmResult& a = baseline.cpm;
  const CpmResult& b = candidate.cpm;

  if (a.min_k != b.min_k || a.max_k != b.max_k) {
    out.ok = false;
    out.worst_f1 = 0.0;
    std::ostringstream text;
    text << "k-range mismatch: baseline [" << a.min_k << ", " << a.max_k
         << "] vs candidate [" << b.min_k << ", " << b.max_k << "]";
    out.summary = text.str();
    if (options.publish_metrics) publish_gap_metrics(out);
    return out;
  }

  out.identical = true;
  for (std::size_t k = a.min_k; k <= a.max_k && a.max_k >= a.min_k; ++k) {
    const std::vector<NodeSet> sets_a = node_sets_at(baseline, k);
    const std::vector<NodeSet> sets_b = node_sets_at(candidate, k);
    LevelGap level;
    level.k = k;
    level.communities_baseline = sets_a.size();
    level.communities_candidate = sets_b.size();
    if (sets_a == sets_b) {
      // Equal canonical-ordered node sets: perfect level, defaults stand.
    } else {
      out.identical = false;
      level.recall = mean_best_jaccard(sets_a, sets_b);
      level.precision = mean_best_jaccard(sets_b, sets_a);
      level.f1 = (level.recall + level.precision) > 0.0
                     ? 2.0 * level.recall * level.precision /
                           (level.recall + level.precision)
                     : 0.0;
    }
    if (out.levels.empty() || level.f1 < out.worst_f1) {
      out.worst_f1 = level.f1;
      out.worst_k = k;
    }
    out.levels.push_back(level);
  }

  out.ok = out.worst_f1 >= options.min_f1;
  std::ostringstream text;
  text << baseline.engine_name << " vs " << candidate.engine_name << ": "
       << (out.identical ? "identical node sets"
                         : "worst community F1 " +
                               std::to_string(out.worst_f1) + " at k=" +
                               std::to_string(out.worst_k))
       << " over " << out.levels.size() << " levels ("
       << (out.ok ? "ok" : "below threshold") << ", min_f1="
       << options.min_f1 << ")";
  out.summary = text.str();

  if (options.publish_metrics) publish_gap_metrics(out);
  return out;
}

}  // namespace kcc::cpm
