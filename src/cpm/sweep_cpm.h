// Single-sweep community-tree engine.
//
// The per-k engine (cpm.h) re-scans the whole clique-overlap pair list once
// per k — O(k_max * |overlaps|) work over identical data. The nesting
// theorem (paper Sec. 3.1) says the communities at k are coarsened, not
// recomputed, as k decreases: lowering the threshold only merges components.
// This engine exploits that directly, Kruskal-style:
//
//  1. sort the overlap pairs by overlap size descending (a parallel sharded
//     counting sort over the ThreadPool — overlap values are small
//     integers, so the sort is O(|overlaps|));
//  2. run ONE union-find sweep from k = k_max down to 3: at level k,
//     activate the cliques of size k and unite the pairs with overlap
//     exactly k-1 (pairs with larger overlap were united at higher k);
//     after those unions the union-find components over the live cliques
//     ARE the k-clique communities at k — a per-k snapshot of a single
//     evolving structure rather than an independent percolation;
//  3. materialize each requested level from that snapshot, and resolve each
//     (k+1)-community's nesting parent against the freshly emitted level —
//     so the full community tree (Fig. 4.2) falls out of the same pass
//     instead of being reconstructed post-hoc.
//
// Every pair is therefore united exactly once across all k, and the output
// (community node sets, ids, clique maps, tree) is bit-identical to the
// per-k engine's.
#pragma once

#include <vector>

#include "cpm/clique_index.h"
#include "cpm/community_tree.h"
#include "cpm/cpm.h"
#include "graph/graph.h"

namespace kcc {

/// Output of the single-sweep engine: the standard CPM result plus the
/// nesting tree, built during the sweep itself. When the k range is empty
/// the tree is default-constructed (no nodes).
struct SweepCpmResult {
  CpmResult cpm;
  CommunityTree tree;
};

/// Extracts all k-clique communities and the community tree of `g` in one
/// descending-k sweep. Options are shared with the per-k engine.
SweepCpmResult run_sweep_cpm(const Graph& g, const CpmOptions& options = {});

/// Same, over a pre-enumerated maximal-clique set (each clique sorted, size
/// >= 2). `g` is still needed for the k = 2 special case.
SweepCpmResult run_sweep_cpm_on_cliques(const Graph& g,
                                        std::vector<NodeSet> cliques,
                                        const CpmOptions& options = {});

/// Same, over a pre-enumerated clique set AND a pre-computed overlap pair
/// multiset (every unordered clique pair sharing >= 2 nodes, any order,
/// clique ids indexing `cliques`). Skips the overlap join — the incremental
/// engine maintains the pairs across edge batches and re-enters the sweep
/// here, so its output is the sweep engine's output by construction. When
/// the effective k range stays below 3 the pairs are unused.
SweepCpmResult run_sweep_cpm_prejoined(const Graph& g,
                                       std::vector<NodeSet> cliques,
                                       std::vector<CliqueOverlap> overlaps,
                                       const CpmOptions& options = {});

}  // namespace kcc
