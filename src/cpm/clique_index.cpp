#include "cpm/clique_index.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kcc {
namespace {

// Overlap-join instruments. Candidate touches count every clique pair the
// stamp array examined; emitted pairs are the ones that met min_overlap.
// Both are accumulated per shard/batch and flushed with one atomic add.
struct OverlapMetrics {
  obs::Counter& candidates =
      obs::metrics().counter("cpm_overlap_candidates_total");
  obs::Counter& pairs = obs::metrics().counter("cpm_overlap_pairs_total");
};

OverlapMetrics& overlap_metrics() {
  static OverlapMetrics m;
  return m;
}

}  // namespace

std::vector<std::vector<CliqueId>> build_node_clique_index(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes) {
  std::vector<std::vector<CliqueId>> index(num_nodes);
  for (CliqueId c = 0; c < cliques.size(); ++c) {
    for (NodeId v : cliques[c]) {
      require(v < num_nodes, "build_node_clique_index: node out of range");
      index[v].push_back(c);
    }
  }
  return index;  // per-node lists are ascending because c increases
}

namespace {

// Overlap pairs (a, b) with b fixed, discovered through b's nodes. A stamp
// array deduplicates candidates; counting hits per candidate *is* the
// overlap size, because clique a appears in the index list of exactly the
// |A ∩ B| shared nodes. Returns the number of candidate cliques examined.
std::size_t overlaps_for_clique(const std::vector<NodeSet>& cliques,
                                const std::vector<std::vector<CliqueId>>& index,
                                CliqueId b, std::size_t min_overlap,
                                std::vector<std::uint32_t>& hit_count,
                                std::vector<CliqueId>& touched,
                                std::vector<CliqueOverlap>& out) {
  touched.clear();
  for (NodeId v : cliques[b]) {
    for (CliqueId a : index[v]) {
      if (a >= b) break;  // index lists are ascending; only a < b wanted
      if (hit_count[a] == 0) touched.push_back(a);
      ++hit_count[a];
    }
  }
  for (CliqueId a : touched) {
    if (hit_count[a] >= min_overlap) {
      out.push_back({a, b, hit_count[a]});
    }
    hit_count[a] = 0;
  }
  return touched.size();
}

}  // namespace

std::vector<CliqueOverlap> compute_clique_overlaps_sequential(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes,
    std::size_t min_overlap) {
  require(min_overlap >= 1, "compute_clique_overlaps: min_overlap must be >= 1");
  const auto index = build_node_clique_index(cliques, num_nodes);
  std::vector<CliqueOverlap> out;
  std::vector<std::uint32_t> hit_count(cliques.size(), 0);
  std::vector<CliqueId> touched;
  std::uint64_t candidates = 0;
  for (CliqueId b = 0; b < cliques.size(); ++b) {
    candidates += overlaps_for_clique(cliques, index, b, min_overlap,
                                      hit_count, touched, out);
  }
  overlap_metrics().candidates.inc(candidates);
  overlap_metrics().pairs.inc(out.size());
  std::sort(out.begin(), out.end(), [](const CliqueOverlap& x, const CliqueOverlap& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  return out;
}

namespace {

// Shared body of the parallel join; the merged pair list is ordered by
// shard, i.e. by b-ranges of equal clique count, with no global sort.
std::vector<CliqueOverlap> overlap_join(const std::vector<NodeSet>& cliques,
                                        std::size_t num_nodes,
                                        std::size_t min_overlap,
                                        ThreadPool& pool) {
  require(min_overlap >= 1, "compute_clique_overlaps: min_overlap must be >= 1");
  KCC_SPAN("cpm/overlap_join");
  const auto index = build_node_clique_index(cliques, num_nodes);

  // Shard cliques into contiguous ranges; each task owns a result slot, so
  // the merged output is independent of scheduling.
  const std::size_t shards =
      std::max<std::size_t>(1, std::min(cliques.size(), pool.thread_count() * 8));
  const std::size_t shard_size = (cliques.size() + shards - 1) / shards;
  std::vector<std::vector<CliqueOverlap>> slots(shards);

  parallel_for(pool, shards, [&](std::size_t s) {
    const CliqueId begin = static_cast<CliqueId>(s * shard_size);
    const CliqueId end = static_cast<CliqueId>(
        std::min(cliques.size(), (s + 1) * shard_size));
    std::vector<std::uint32_t> hit_count(cliques.size(), 0);
    std::vector<CliqueId> touched;
    std::uint64_t candidates = 0;
    std::size_t emitted_before = slots[s].size();
    for (CliqueId b = begin; b < end; ++b) {
      candidates += overlaps_for_clique(cliques, index, b, min_overlap,
                                        hit_count, touched, slots[s]);
    }
    overlap_metrics().candidates.inc(candidates);
    overlap_metrics().pairs.inc(slots[s].size() - emitted_before);
  });

  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  std::vector<CliqueOverlap> out;
  out.reserve(total);
  for (auto& slot : slots) {
    out.insert(out.end(), slot.begin(), slot.end());
  }
  return out;
}

}  // namespace

std::vector<CliqueOverlap> compute_clique_overlaps_unsorted(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes,
    std::size_t min_overlap, ThreadPool& pool) {
  return overlap_join(cliques, num_nodes, min_overlap, pool);
}

std::vector<CliqueOverlap> compute_clique_overlaps(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes,
    std::size_t min_overlap, ThreadPool& pool) {
  std::vector<CliqueOverlap> out =
      overlap_join(cliques, num_nodes, min_overlap, pool);
  KCC_SPAN("cpm/overlap_sort");
  std::sort(out.begin(), out.end(),
            [](const CliqueOverlap& x, const CliqueOverlap& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  return out;
}

}  // namespace kcc
