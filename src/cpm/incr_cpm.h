// Incremental CPM engine — exact clique percolation under edge churn.
//
// The AS-level topology is not static: the serving scenario (ROADMAP item
// 3) needs community results that track edge updates without recomputing
// from scratch. This engine holds live state — the maximal-clique table, a
// per-node clique index and the pairwise overlap multiset — and patches it
// locally per edge, so a batch touching b edges costs work proportional to
// the affected neighborhoods, not the graph.
//
// Clique maintenance is exact, by two local theorems:
//
//  * ADD (u, v): a maximal clique of G' = G + uv that is not one of G
//    contains both u and v (adjacency only grows, so any other clique kept
//    or lost its maximality status unchanged), and equals {u, v} ∪ S for S
//    a maximal clique of G'[N'(u) ∩ N'(v)] — found by restricting
//    Bron–Kerbosch (clique::Enumerator, min_size = 1) to the common
//    neighborhood. An old clique Q dies iff it absorbs the new edge: Q ∋ u
//    with Q ⊆ N'(v) ∪ {v}, or symmetrically.
//
//  * REMOVE (u, v): exactly the cliques containing both endpoints die. A
//    maximal clique of G' = G - uv that is not one of G is a fragment
//    Q \ {u} or Q \ {v} of a dying clique Q; a fragment survives iff it
//    still has >= 2 nodes and no witness node adjacent to all its members.
//    Fragments are pairwise incomparable and never collide with a
//    surviving clique (v was adjacent to all of Q \ {v}, contradicting
//    that clique's prior maximality), so insertion needs no dedup.
//
// The overlap multiset is patched with the same locality: retiring a
// clique drops its pairs, inserting one counts shared nodes against the
// per-node index (epoch-stamped counters). Both indexes use lazy
// invalidation — a retire bumps the slot's generation and leaves the
// stale back-references in place; scans skip (and compact away) entries
// whose stamped generation no longer matches, and an amortized global
// compaction bounds the stale fraction. This keeps a retire O(own lists)
// instead of O(sum of neighbor lists), which is the difference between
// milliseconds and minutes when an edge removal inside the dense AS core
// retires thousands of mutually-overlapping cliques at once.
// Materialization then re-enters
// the sweep engine over the maintained table + pairs
// (run_sweep_cpm_prejoined) — the communities, ids, maps and tree are
// produced by literally the same code as a from-scratch sweep, so
// exactness reduces to the clique/overlap maintenance above. The
// check::churn_differential harness re-proves the digest identity against
// a from-scratch run after every batch of every fuzzed schedule.
//
// One serialization caveat: the table is emitted in lexicographic order
// (churn cannot preserve enumeration order), so digest comparisons against
// enumeration-ordered engines go through cpm::canonicalise_clique_order()
// — see EngineCaps::canonical_clique_order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cpm/engine.h"
#include "graph/graph.h"

namespace kcc::cpm {

/// One batch of edge updates. `remove` is applied first, then `add`.
/// Validation is strict and happens against the pre-batch graph before any
/// mutation: self-loops, adding an edge already present, removing one that
/// is absent, a pair listed twice on one side, or the same pair on both
/// sides (a remove-then-re-add round trip is two batches, not one) all
/// throw kcc::Error and leave the state untouched.
struct EdgeBatch {
  std::vector<std::pair<NodeId, NodeId>> add;
  std::vector<std::pair<NodeId, NodeId>> remove;

  bool empty() const { return add.empty() && remove.empty(); }
  std::size_t size() const { return add.size() + remove.size(); }

  /// The batch that undoes this one: adds and removes swapped. Applying a
  /// batch then its inverse restores the original graph (and therefore the
  /// original canonical digest — tested in test_incr_cpm).
  EdgeBatch inverse() const { return EdgeBatch{remove, add}; }
};

/// Live CPM state under edge churn. Construct from a graph (full
/// enumeration bootstrap), mutate with apply(), and snapshot the full
/// all-k Result — digest-identical to a from-scratch sweep on the current
/// graph — with result() whenever needed.
class IncrementalCpm {
 public:
  /// Bootstraps from a full maximal-clique enumeration of `g`. Honors
  /// options.min_k / max_k / min_clique_size / threads / clique_backend /
  /// bitset_max_universe / build_tree; options.engine is ignored (this
  /// state IS the engine). The k range and clique floor only filter
  /// materialization — the maintained table always holds every maximal
  /// clique of size >= 2, which the update theorems require.
  explicit IncrementalCpm(const Graph& g, Options options = {});

  /// Applies one edge batch: removes first, then adds, each patching the
  /// clique table, per-node index and overlap multiset locally. Throws
  /// kcc::Error on an invalid batch (see EdgeBatch) with the state
  /// untouched.
  void apply(const EdgeBatch& batch);

  /// Materializes the Result for the current graph by running the sweep
  /// tail (run_sweep_cpm_prejoined) over the maintained clique table and
  /// overlap multiset, clique table in lexicographic order.
  Result result() const;

  /// The current graph, rebuilt from the maintained adjacency.
  Graph graph() const;

  const Options& options() const { return options_; }
  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return num_edges_; }
  /// Maintained maximal cliques of size >= 2 (before the min_clique_size
  /// materialization filter).
  std::size_t num_cliques() const { return alive_count_; }
  std::uint64_t batches_applied() const { return batches_applied_; }

 private:
  friend Result run_incremental_on_cliques(const Options&, const Graph&,
                                           std::vector<NodeSet>);
  struct FromCliquesTag {};
  /// Materialize-only bootstrap over a pre-enumerated table (the registry
  /// run_on_cliques hook). The table may already be min_clique_size
  /// filtered, so apply() is not supported on a state built this way.
  IncrementalCpm(FromCliquesTag, const Graph& g, std::vector<NodeSet> cliques,
                 Options options);

  /// Shared ctor tail: copies the adjacency of `g` and builds the per-node
  /// index, overlap lists and scratch over the already-set clique table.
  void bootstrap(const Graph& g);
  void validate(const EdgeBatch& batch) const;
  void add_edge(NodeId u, NodeId v);
  void remove_edge(NodeId u, NodeId v);
  bool adjacent(NodeId u, NodeId v) const;
  bool is_maximal(const NodeSet& nodes);
  CliqueId insert_clique(NodeSet nodes);
  void retire_clique(CliqueId c);
  void grow_scratch();

  /// A lazily-invalidated reference to clique slot `clique`: valid iff
  /// `gen == gen_[clique]` (a retire bumps the slot generation, so stale
  /// entries — including ones pointing at a since-reused slot — fail the
  /// check without ever being eagerly removed).
  struct CliqueRef {
    CliqueId clique;
    std::uint32_t gen;
  };
  struct OverlapEntry {
    CliqueId clique;
    std::uint32_t gen;
    std::uint32_t overlap;
  };
  bool valid(CliqueRef e) const { return gen_[e.clique] == e.gen; }
  bool valid(const OverlapEntry& e) const { return gen_[e.clique] == e.gen; }
  /// Rebuilds every node/overlap list without its stale entries once the
  /// stale fraction crosses 1/2 (amortized O(1) per staleness created).
  void compact_if_needed();

  Options options_;
  std::vector<std::vector<NodeId>> adjacency_;  // sorted neighbor lists
  std::size_t num_edges_ = 0;

  // Slotted clique table: retired slots go to the free list and are reused
  // by later inserts; `alive_` masks them out everywhere else.
  std::vector<NodeSet> cliques_;
  std::vector<char> alive_;
  std::vector<CliqueId> free_slots_;
  std::size_t alive_count_ = 0;
  std::vector<std::uint32_t> gen_;  // bumped per retire; see CliqueRef

  std::vector<std::vector<CliqueRef>> cliques_of_node_;  // unsorted
  /// overlaps_[c] = (d, |c ∩ d|) for every alive d sharing >= 2 nodes with
  /// c; stored symmetrically (each unordered pair appears in both lists).
  std::vector<std::vector<OverlapEntry>> overlaps_;
  /// Upper bound on stale entries across both index structures, reset by
  /// compact_if_needed().
  std::size_t stale_entries_ = 0;

  // Epoch-stamped scratch counters over clique slots, reused across
  // operations so no per-op allocation or clearing is needed.
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint32_t> count_;
  std::uint64_t epoch_ = 0;

  // Same trick over node ids: is_maximal counts, for every node adjacent
  // to a fragment member, how many members it is adjacent to (a witness
  // reaches the full fragment size — and is never a member, since a node
  // is not adjacent to itself); collect_absorbed stamps one endpoint's
  // neighborhood for O(1) membership tests.
  std::vector<std::uint64_t> node_stamp_;
  std::vector<std::uint32_t> node_count_;
  std::uint64_t node_epoch_ = 0;

  /// Set by the FromCliquesTag ctor when the given table was already
  /// min_clique_size filtered — apply() then refuses (the update theorems
  /// need the full size >= 2 table).
  bool materialize_only_ = false;

  std::uint64_t batches_applied_ = 0;
  std::uint64_t cliques_created_ = 0;
  std::uint64_t cliques_retired_ = 0;
};

/// Registry hooks for the `incremental` engine (caps.exact,
/// caps.canonical_clique_order). The full-run hook deliberately exercises
/// churn: it bootstraps on the graph minus a held-back suffix of edges and
/// apply()s them as one batch, so every differential-matrix run covers the
/// patch path, not just the bootstrap.
Result run_incremental_full(const Options& options, const Graph& g);
Result run_incremental_on_cliques(const Options& options, const Graph& g,
                                  std::vector<NodeSet> cliques);

}  // namespace kcc::cpm
