// The k-clique community tree (paper Sec. 4, Fig. 4.2).
//
// By the nesting theorem (Sec. 3.1; verified as a library property test),
// every community of order k is contained in exactly one community of order
// k-1. Drawing an edge from each community to that unique parent yields a
// tree whose levels are the k values. The paper classifies:
//  * main communities — the maximum-k community ("apex") and all of its
//    ancestors (the filled nodes in Fig. 4.2);
//  * parallel communities — everything else (branches of the tree);
// and, using IXP data, splits the levels into root / trunk / crown bands.
#pragma once

#include <cstddef>
#include <vector>

#include "cpm/community.h"

namespace kcc {

/// Vertical band of the tree (paper Sec. 4.1-4.3).
enum class Band { kRoot, kTrunk, kCrown };

/// Band boundaries: k <= root_max_k is root, k <= trunk_max_k is trunk,
/// larger k is crown. Defaults are the paper's observed bands.
struct BandThresholds {
  std::size_t root_max_k = 14;
  std::size_t trunk_max_k = 28;

  Band band_of(std::size_t k) const {
    if (k <= root_max_k) return Band::kRoot;
    if (k <= trunk_max_k) return Band::kTrunk;
    return Band::kCrown;
  }
};

const char* band_name(Band band);

struct TreeNode {
  std::size_t k = 0;
  CommunityId community_id = 0;  // id within the CommunitySet at level k
  std::size_t size = 0;          // community node count
  int parent = -1;               // index into CommunityTree::nodes(); -1 at min_k
  std::vector<int> children;     // indices into CommunityTree::nodes()
  bool is_main = false;
};

/// One community's tree entry as resolved by an engine: its node count and
/// the community id of its parent at the level below (kNoCommunity at the
/// bottom level). Levels are vectors of these in canonical community-id
/// order; see CommunityTree::from_levels.
struct TreeParentLink {
  std::size_t size = 0;
  CommunityId parent_id = CommunitySet::kNoCommunity;
};

class CommunityTree {
 public:
  /// Builds the tree from a CPM result. When several communities exist at
  /// the maximum k, the apex is the canonical first one (largest size).
  /// Requires cpm to cover a non-empty contiguous k range. Parents are
  /// resolved through the clique -> community maps; communities that carry
  /// no clique ids (reference-oracle results) fall back to node-containment
  /// search.
  static CommunityTree build(const CpmResult& cpm);

  /// Assembles the tree from per-level parent links already resolved by an
  /// engine — the sweep engine produces these directly from its union-find
  /// state, so no post-hoc reconstruction pass over the CPM result is
  /// needed. levels[i] describes the communities at k = min_k + i in
  /// canonical id order; parent ids refer to the level below.
  static CommunityTree from_levels(
      std::size_t min_k, const std::vector<std::vector<TreeParentLink>>& levels);

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  std::size_t min_k() const { return min_k_; }
  std::size_t max_k() const { return max_k_; }

  /// Node indices at level k, in community-id order.
  const std::vector<int>& level(std::size_t k) const;

  /// Index of the node for community (k, id); -1 when absent.
  int index_of(std::size_t k, CommunityId id) const;

  /// The apex (maximum-k main community) node index.
  int apex() const { return apex_; }

  /// Main-community node indices from min_k up to max_k.
  std::vector<int> main_chain() const;

  std::size_t main_count() const;
  std::size_t parallel_count() const;

  /// Longest chain of parallel communities ending at `node` going upward
  /// (towards larger k). A "branch" in the paper's sense.
  std::size_t branch_length_above(int node) const;

 private:
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<int>> levels_;  // levels_[k - min_k]
  std::size_t min_k_ = 0;
  std::size_t max_k_ = 0;
  int apex_ = -1;
};

/// Per-level tree statistics used by the Fig. 4.2 harness.
struct TreeLevelStats {
  std::size_t k = 0;
  std::size_t community_count = 0;   // Fig. 4.1 series
  std::size_t parallel_count = 0;
  std::size_t main_size = 0;         // size of the main community at k
  std::size_t largest_parallel_size = 0;
};

std::vector<TreeLevelStats> tree_level_stats(const CommunityTree& tree);

}  // namespace kcc
