#include "cpm/community.h"

#include "common/error.h"

namespace kcc {

const CommunitySet& CpmResult::at(std::size_t k) const {
  require(has_k(k), "CpmResult::at: no communities computed for this k");
  return by_k[k - min_k];
}

CommunitySet& CpmResult::at(std::size_t k) {
  require(has_k(k), "CpmResult::at: no communities computed for this k");
  return by_k[k - min_k];
}

std::size_t CpmResult::total_communities() const {
  std::size_t total = 0;
  for (const auto& set : by_k) total += set.count();
  return total;
}

std::vector<std::size_t> CpmResult::unique_community_ks() const {
  std::vector<std::size_t> out;
  for (const auto& set : by_k) {
    if (set.count() == 1) out.push_back(set.k);
  }
  return out;
}

}  // namespace kcc
