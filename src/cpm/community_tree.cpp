#include "cpm/community_tree.h"

#include <algorithm>

#include "common/error.h"
#include "common/set_ops.h"

namespace kcc {

const char* band_name(Band band) {
  switch (band) {
    case Band::kRoot:
      return "root";
    case Band::kTrunk:
      return "trunk";
    case Band::kCrown:
      return "crown";
  }
  return "?";
}

namespace {

// Parent of `child` when it carries no clique ids (reference-oracle
// results): the unique (k-1)-community whose node set contains it.
CommunityId parent_by_containment(const Community& child,
                                  const CommunitySet& below) {
  for (const Community& candidate : below.communities) {
    if (is_subset(child.nodes, candidate.nodes)) return candidate.id;
  }
  return CommunitySet::kNoCommunity;
}

}  // namespace

CommunityTree CommunityTree::build(const CpmResult& cpm) {
  require(cpm.max_k >= cpm.min_k && !cpm.by_k.empty(),
          "CommunityTree::build: CPM result covers no k");
  std::vector<std::vector<TreeParentLink>> levels(cpm.max_k - cpm.min_k + 1);

  for (std::size_t k = cpm.min_k; k <= cpm.max_k; ++k) {
    const CommunitySet& set = cpm.at(k);
    auto& level = levels[k - cpm.min_k];
    level.reserve(set.count());
    for (const Community& community : set.communities) {
      TreeParentLink link;
      link.size = community.size();
      if (k > cpm.min_k) {
        if (community.clique_ids.empty()) {
          link.parent_id = parent_by_containment(community, cpm.at(k - 1));
        } else {
          // Nesting theorem: all cliques of this community live in one
          // (k-1)-level component; any member clique resolves the parent.
          const CliqueId witness = community.clique_ids.front();
          link.parent_id = cpm.at(k - 1).community_of_clique[witness];
        }
        require(link.parent_id != CommunitySet::kNoCommunity,
                "CommunityTree::build: nesting parent missing");
      }
      level.push_back(link);
    }
  }
  return from_levels(cpm.min_k, levels);
}

CommunityTree CommunityTree::from_levels(
    std::size_t min_k, const std::vector<std::vector<TreeParentLink>>& levels) {
  require(!levels.empty(), "CommunityTree::from_levels: no levels");
  CommunityTree tree;
  tree.min_k_ = min_k;
  tree.max_k_ = min_k + levels.size() - 1;
  tree.levels_.resize(levels.size());

  for (std::size_t i = 0; i < levels.size(); ++i) {
    const std::size_t k = min_k + i;
    auto& level = tree.levels_[i];
    level.reserve(levels[i].size());
    for (CommunityId id = 0; id < levels[i].size(); ++id) {
      const TreeParentLink& link = levels[i][id];
      TreeNode node;
      node.k = k;
      node.community_id = id;
      node.size = link.size;
      if (i > 0) {
        require(link.parent_id != CommunitySet::kNoCommunity,
                "CommunityTree::from_levels: parent missing above min_k");
        node.parent = tree.index_of(k - 1, link.parent_id);
        require(node.parent >= 0,
                "CommunityTree::from_levels: parent not indexed");
      }
      const int index = static_cast<int>(tree.nodes_.size());
      level.push_back(index);
      if (node.parent >= 0) tree.nodes_[node.parent].children.push_back(index);
      tree.nodes_.push_back(std::move(node));
    }
  }

  // Apex: canonical first community (largest) of the top level; main chain =
  // apex plus all ancestors.
  const auto& top = tree.levels_.back();
  if (!top.empty()) {
    tree.apex_ = top.front();
    for (int n = tree.apex_; n >= 0; n = tree.nodes_[n].parent) {
      tree.nodes_[n].is_main = true;
    }
  }
  return tree;
}

const std::vector<int>& CommunityTree::level(std::size_t k) const {
  require(k >= min_k_ && k <= max_k_, "CommunityTree::level: k out of range");
  return levels_[k - min_k_];
}

int CommunityTree::index_of(std::size_t k, CommunityId id) const {
  if (k < min_k_ || k > max_k_) return -1;
  const auto& level = levels_[k - min_k_];
  // Levels are pushed in community-id order, so the id indexes the level.
  if (id >= level.size()) return -1;
  return level[id];
}

std::vector<int> CommunityTree::main_chain() const {
  std::vector<int> chain;
  for (int n = apex_; n >= 0; n = nodes_[n].parent) chain.push_back(n);
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::size_t CommunityTree::main_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) count += node.is_main ? 1 : 0;
  return count;
}

std::size_t CommunityTree::parallel_count() const {
  return nodes_.size() - main_count();
}

std::size_t CommunityTree::branch_length_above(int node) const {
  require(node >= 0 && node < static_cast<int>(nodes_.size()),
          "CommunityTree::branch_length_above: bad node");
  if (nodes_[node].is_main) return 0;
  std::size_t length = 1;
  int current = node;
  // Follow the unique chain upward while it stays a single parallel child.
  while (nodes_[current].children.size() == 1 &&
         !nodes_[nodes_[current].children.front()].is_main) {
    current = nodes_[current].children.front();
    ++length;
  }
  return length;
}

std::vector<TreeLevelStats> tree_level_stats(const CommunityTree& tree) {
  std::vector<TreeLevelStats> out;
  for (std::size_t k = tree.min_k(); k <= tree.max_k(); ++k) {
    TreeLevelStats stats;
    stats.k = k;
    for (int idx : tree.level(k)) {
      const TreeNode& node = tree.nodes()[idx];
      ++stats.community_count;
      if (node.is_main) {
        stats.main_size = node.size;
      } else {
        ++stats.parallel_count;
        stats.largest_parallel_size =
            std::max(stats.largest_parallel_size, node.size);
      }
    }
    out.push_back(stats);
  }
  return out;
}

}  // namespace kcc
