// Weighted Clique Percolation (CPMw, Farkas/Palla et al. 2007) — a library
// extension beyond the paper.
//
// In CPMw a k-clique participates in percolation only when its *intensity*
// — the geometric mean of its edge weights — reaches a threshold I. Raising
// I prunes weak cliques and splits communities along weak seams; I = 0
// recovers the unweighted communities. For the AS topology we pair this
// with weights_from_ixps (peering strength), which lets the analysis
// isolate IXP-backed community cores.
//
// Unlike the unweighted engine (cpm.h), intensity filtering is not
// expressible over maximal cliques alone, so this implementation enumerates
// the individual k-cliques for one k at a time. It is exponential in dense
// zones; intended for moderate k on library-scale graphs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "graph/weighted_graph.h"

namespace kcc {

/// Geometric mean of the pairwise edge weights of clique `nodes` (sorted,
/// size >= 2; every pair must be an edge of g).
double clique_intensity(const Graph& g, const EdgeWeights& weights,
                        const NodeSet& nodes);

struct WeightedCpmOptions {
  std::size_t k = 4;
  double intensity_threshold = 0.0;  // keep cliques with intensity >= this
  /// Safety valve: abort (throw kcc::Error) when more than this many
  /// k-cliques would be enumerated. 0 disables the check.
  std::size_t max_cliques = 5'000'000;
};

/// Communities of order k among k-cliques with intensity >= threshold.
/// Returned as sorted node sets in lexicographic order.
std::vector<NodeSet> weighted_k_clique_communities(
    const Graph& g, const EdgeWeights& weights,
    const WeightedCpmOptions& options);

/// Sweep helper: community count and largest community size per threshold.
struct IntensitySweepPoint {
  double threshold = 0.0;
  std::size_t surviving_cliques = 0;
  std::size_t community_count = 0;
  std::size_t largest_community = 0;
};

std::vector<IntensitySweepPoint> intensity_sweep(
    const Graph& g, const EdgeWeights& weights, std::size_t k,
    const std::vector<double>& thresholds);

}  // namespace kcc
