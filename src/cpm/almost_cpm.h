// Almost-exact CPM engine (Baudin, Danisch, Kirgizov, Magnien 2021,
// arXiv 2110.01213).
//
// The exact engines all materialize the clique-overlap relation — O(C^2)
// pairs in the worst case, and the measured wall/RSS bottleneck at scale.
// This engine percolates WITHOUT the overlap join, in two stages per
// clique:
//
//   1. Filter (Baudin et al.): each node carries the list of communities
//      (union-find roots over cliques) it appeared in so far this level; a
//      community carrying >= k-1 distinct nodes of clique c is a merge
//      *candidate*. Counting against the community's node union
//      over-approximates the pairwise clique overlap, so the filter can
//      admit false candidates — but never misses a true merge (every
//      clique of a community contributes all its nodes to the union).
//   2. Witness verification: candidates are checked exactly against the
//      per-node clique index (is there a single processed live clique B
//      with |c ∩ B| >= k-1?), under a per-clique work budget. When the
//      budget is exhausted — dense hubs at scale — the remaining
//      candidates are accepted unverified, which is where the "almost"
//      enters.
//
// Memory is bounded by the membership lists plus the clique index
// (O(sum of clique sizes)) instead of the pair list. Within budget the
// output is exact; beyond it communities can merge that exact CPM keeps
// apart. Either way the output is a coarsening of the exact partition at
// every k — never a split — which keeps the nesting theorem intact: one
// persistent union-find is swept from k = k_max down to 3 (the same
// descending-k structure as sweep_cpm), so each level coarsens the one
// above and the Fig. 4.2 community tree is valid by construction. The
// k = 2 level (connected components) is computed exactly.
//
// The gap is measured, not trusted: cpm/compare.h scores almost-exact
// results against an exact engine per k (best-match Jaccard / community
// F1), check::differential gates it at F1 >= 0.99 on the seeded families,
// and bench/perf_cpm.cpp records gap-vs-k curves in BENCH_cpm.json.
#pragma once

#include <cstdint>
#include <vector>

#include "cpm/community_tree.h"
#include "cpm/cpm.h"
#include "graph/graph.h"

namespace kcc {

/// Work/memory accounting of one almost-exact run (also exported as
/// cpm_almost_* metrics).
struct AlmostCpmStats {
  /// Membership-list entries scanned while collecting candidate
  /// communities — the analogue of the exact engines' overlap-pair work.
  std::uint64_t candidate_checks = 0;
  /// Union operations that actually merged two communities.
  std::uint64_t unions = 0;
  /// Cliques whose filter candidates went through exact witness
  /// verification (the budget held).
  std::uint64_t verifications = 0;
  /// Filter candidates refuted by verification: no single processed clique
  /// shared >= k-1 nodes. Each one is a merge the pure filter would have
  /// made and exact CPM would not.
  std::uint64_t filter_rejections = 0;
  /// Cliques whose verification budget ran out; their filter candidates
  /// were accepted unverified. Zero means the run was exact above k = 2.
  std::uint64_t verify_budget_exhausted = 0;
  /// Peak resident per-node membership entries across levels — the memory
  /// the engine holds where the exact engines hold the overlap pair list.
  std::uint64_t membership_entries_peak = 0;
};

/// Output of the almost-exact engine: standard CPM result shape plus the
/// nesting tree (built in the same descending-k pass) and run stats.
struct AlmostCpmResult {
  CpmResult cpm;
  CommunityTree tree;
  AlmostCpmStats stats;
};

/// Extracts almost-exact k-clique communities and the community tree of `g`
/// in one descending-k pass. Options are shared with the exact engines;
/// `options.threads` only parallelizes clique enumeration — percolation is
/// sequential and its output is independent of the thread count.
AlmostCpmResult run_almost_cpm(const Graph& g, const CpmOptions& options = {});

/// Same, over a pre-enumerated maximal-clique set (each clique sorted, size
/// >= 2). `g` is still needed for the exact k = 2 special case.
AlmostCpmResult run_almost_cpm_on_cliques(const Graph& g,
                                          std::vector<NodeSet> cliques,
                                          const CpmOptions& options = {});

}  // namespace kcc
