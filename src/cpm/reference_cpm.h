// Literal-definition CPM used as a test oracle.
//
// Builds the C(k) graph exactly as Sec. 3 of the paper defines it: nodes are
// the individual k-cliques, edges join k-cliques sharing k-1 nodes, and each
// connected component's node union is a community. Exponential in general;
// restricted to small graphs by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kcc {

/// Communities of order `k` as sorted node sets, list ordered
/// lexicographically.
std::vector<NodeSet> reference_k_clique_communities(const Graph& g,
                                                    std::size_t k);

}  // namespace kcc
