#include "cpm/almost_cpm.h"

#include <algorithm>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/union_find.h"
#include "cpm/percolate_detail.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kcc {
namespace {

struct AlmostMetrics {
  obs::Counter& candidate_checks;
  obs::Counter& unions;
  obs::Counter& verifications;
  obs::Counter& filter_rejections;
  obs::Counter& verify_budget_exhausted;
  obs::Gauge& membership_peak;
};

AlmostMetrics& almost_metrics() {
  static AlmostMetrics m{
      obs::metrics().counter("cpm_almost_candidate_checks_total"),
      obs::metrics().counter("cpm_almost_unions_total"),
      obs::metrics().counter("cpm_almost_verifications_total"),
      obs::metrics().counter("cpm_almost_filter_rejections_total"),
      obs::metrics().counter("cpm_almost_verify_budget_exhausted_total"),
      obs::metrics().gauge("cpm_almost_membership_entries_peak")};
  return m;
}

// Witness-verification work cap: entries of the per-node clique index a
// single clique may scan, per node it contains. Within the cap the level's
// merges are exactly CPM's; past it the filter's candidates are accepted
// unverified (the "almost" fallback), keeping worst-case work linear in
// the index size instead of the O(C^2) overlap join.
constexpr std::size_t kVerifyBudgetPerNode = 512;

}  // namespace

AlmostCpmResult run_almost_cpm_on_cliques(const Graph& g,
                                          std::vector<NodeSet> cliques,
                                          const CpmOptions& options) {
  cpm_detail::validate_cpm_input(options.min_k, cliques,
                                 "run_almost_cpm_on_cliques");
  AlmostCpmResult out;
  CpmResult& result = out.cpm;
  result.cliques = std::move(cliques);
  result.min_k = options.min_k;
  result.max_k =
      cpm_detail::resolve_max_k(options.min_k, options.max_k, result.cliques);
  if (result.max_k < result.min_k) return out;

  const std::size_t num_cliques = result.cliques.size();
  std::size_t max_size = 0;
  for (const auto& c : result.cliques) max_size = std::max(max_size, c.size());

  result.by_k.resize(result.max_k - result.min_k + 1);
  cpm_detail::DescendingLevelEmitter emitter(g, result);

  // ---- the k >= 3 descending pass ----
  //
  // One persistent union-find over all cliques, exactly like sweep_cpm: as
  // k decreases the partition only coarsens, so the per-level snapshots
  // nest and the emitter can wire the tree. What differs is the join: no
  // overlap pairs exist anywhere. Per level, each node carries the list of
  // cliques (resolving to communities via the union-find) it appeared in
  // so far this level; a community sharing >= k-1 distinct nodes with a
  // clique is a merge candidate, and candidates are verified against the
  // per-node clique index under a work budget before they merge.
  if (result.max_k >= 3) {
    std::vector<std::vector<CliqueId>> cliques_of_size(max_size + 1);
    for (CliqueId c = 0; c < num_cliques; ++c) {
      cliques_of_size[result.cliques[c].size()].push_back(c);
    }

    // Per-node clique index for witness verification; ascending ids, so a
    // scan can stop at the first id >= the clique being processed (later
    // ids are not yet published at this level).
    std::vector<std::vector<CliqueId>> cliques_of_node(g.num_nodes());
    for (CliqueId c = 0; c < num_cliques; ++c) {
      for (NodeId v : result.cliques[c]) cliques_of_node[v].push_back(c);
    }

    KCC_SPAN("almost_cpm/sweep");
    UnionFind uf(num_cliques);
    cpm_detail::SweepSnapshotter snapshotter(num_cliques);
    std::vector<CliqueId> live;  // cliques of size >= current level, ascending

    // Per-node membership lists, rebuilt each level; entries are clique
    // ids whose current union-find root identifies the community.
    std::vector<std::vector<CliqueId>> memberships(g.num_nodes());
    // Epoch-stamped scratch (indexed by union-find root): distinct-node
    // count per candidate community, plus dedup stamps so each (node,
    // community) pair counts once. No per-clique clearing.
    std::vector<std::uint64_t> cand_stamp(num_cliques, 0);
    std::vector<std::uint64_t> node_stamp(num_cliques, 0);
    std::vector<std::uint32_t> cand_count(num_cliques, 0);
    std::vector<CliqueId> cand_order;
    std::uint64_t clique_serial = 0;
    std::uint64_t node_serial = 0;
    // Epoch-stamped per-witness-clique overlap counts for verification.
    std::vector<std::uint64_t> verify_stamp(num_cliques, 0);
    std::vector<std::uint32_t> verify_count(num_cliques, 0);
    std::uint64_t verify_serial = 0;

    const std::size_t lowest = std::max<std::size_t>(3, result.min_k);
    for (std::size_t k = max_size; k >= lowest; --k) {
      // Activate the cliques of size k; both ranges are ascending, so one
      // in-place merge keeps `live` in the deterministic processing order.
      const std::size_t old_live = live.size();
      live.insert(live.end(), cliques_of_size[k].begin(),
                  cliques_of_size[k].end());
      std::inplace_merge(live.begin(), live.begin() + old_live, live.end());

      for (auto& list : memberships) list.clear();
      std::uint64_t entries_this_level = 0;

      for (CliqueId c : live) {
        const NodeSet& members = result.cliques[c];
        ++clique_serial;
        cand_order.clear();
        for (NodeId v : members) {
          ++node_serial;
          for (CliqueId entry : memberships[v]) {
            const std::uint32_t root = uf.find(entry);
            if (node_stamp[root] == node_serial) continue;  // node counted
            node_stamp[root] = node_serial;
            if (cand_stamp[root] != clique_serial) {
              cand_stamp[root] = clique_serial;
              cand_count[root] = 0;
              cand_order.push_back(root);
            }
            ++cand_count[root];
            ++out.stats.candidate_checks;
          }
        }
        // Every community sharing >= k-1 distinct nodes with c is a merge
        // candidate. The count is against the community's node union, not
        // any single clique of it, so it never misses a true merge but can
        // admit false ones — those are weeded out by exact witness
        // verification below, as long as the work budget holds.
        bool any_candidate = false;
        for (CliqueId root : cand_order) {
          if (cand_count[root] + 1 >= k) {
            any_candidate = true;
            break;
          }
        }
        if (any_candidate) {
          // Scan the processed prefix of c's nodes' clique lists, counting
          // shared nodes per individual live clique b; |c ∩ b| >= k-1 is an
          // exact CPM merge. Each live overlapping pair is examined once
          // per level (when its later clique processes), so within budget
          // the level's partition is exactly sweep_cpm's.
          const std::size_t budget = kVerifyBudgetPerNode * members.size();
          std::size_t scanned = 0;
          bool exhausted = false;
          ++verify_serial;
          for (NodeId v : members) {
            for (CliqueId b : cliques_of_node[v]) {
              if (b >= c) break;  // ascending: not yet published this level
              if (++scanned > budget) {
                exhausted = true;
                break;
              }
              if (result.cliques[b].size() < k) continue;  // not live
              if (verify_stamp[b] != verify_serial) {
                verify_stamp[b] = verify_serial;
                verify_count[b] = 0;
              }
              if (++verify_count[b] + 1 >= k && uf.unite(c, b)) {
                ++out.stats.unions;
              }
            }
            if (exhausted) break;
          }
          if (exhausted) {
            // Budget gone: fall back to the filter's answer (a coarsening,
            // never a split — this is the only place exactness is lost).
            ++out.stats.verify_budget_exhausted;
            for (CliqueId root : cand_order) {
              if (cand_count[root] + 1 >= k && uf.unite(c, root)) {
                ++out.stats.unions;
              }
            }
          } else {
            ++out.stats.verifications;
            const std::uint32_t verified_root = uf.find(c);
            for (CliqueId root : cand_order) {
              if (cand_count[root] + 1 >= k &&
                  uf.find(root) != verified_root) {
                ++out.stats.filter_rejections;
              }
            }
          }
        }
        // Publish c to its nodes; skip nodes whose latest entry already
        // resolves to c's community (bounds list growth).
        const std::uint32_t root_c = uf.find(c);
        for (NodeId v : members) {
          if (!memberships[v].empty() &&
              uf.find(memberships[v].back()) == root_c) {
            continue;
          }
          memberships[v].push_back(c);
          ++entries_this_level;
        }
      }
      out.stats.membership_entries_peak =
          std::max(out.stats.membership_entries_peak, entries_this_level);

      if (k > result.max_k) continue;  // above the requested range

      const obs::ScopedSpan span("almost_cpm/emit_k=" + std::to_string(k));
      emitter.emit(snapshotter.snapshot(k, uf, live, result.cliques));
    }
    KCC_LOG(kDebug) << "run_almost_cpm: " << num_cliques << " cliques, "
                    << out.stats.candidate_checks << " candidate checks, "
                    << out.stats.unions << " unions, "
                    << out.stats.verifications << " verified, "
                    << out.stats.filter_rejections << " rejected, "
                    << out.stats.verify_budget_exhausted
                    << " budget-exhausted, membership peak "
                    << out.stats.membership_entries_peak << ", k in ["
                    << result.min_k << ", " << result.max_k << "]";
  }

  // ---- the k = 2 level: connected components (exact) ----
  if (result.min_k == 2) {
    KCC_SPAN("almost_cpm/percolate_k2");
    emitter.emit_k2();
  }

  {
    KCC_SPAN("almost_cpm/tree");
    out.tree = emitter.finish();
  }

  AlmostMetrics& m = almost_metrics();
  m.candidate_checks.inc(out.stats.candidate_checks);
  m.unions.inc(out.stats.unions);
  m.verifications.inc(out.stats.verifications);
  m.filter_rejections.inc(out.stats.filter_rejections);
  m.verify_budget_exhausted.inc(out.stats.verify_budget_exhausted);
  m.membership_peak.set(
      static_cast<std::int64_t>(out.stats.membership_entries_peak));
  return out;
}

AlmostCpmResult run_almost_cpm(const Graph& g, const CpmOptions& options) {
  require(options.min_k >= 2, "run_almost_cpm: min_k must be >= 2");
  ThreadPool pool(options.threads);
  clique::Options copt;
  copt.min_size = 2;
  std::vector<NodeSet> cliques = clique::Enumerator(g, copt).collect(pool);
  return run_almost_cpm_on_cliques(g, std::move(cliques), options);
}

}  // namespace kcc
