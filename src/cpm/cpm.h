// Clique Percolation Method over maximal cliques — the library core.
//
// Soundness of the maximal-clique reduction (standard CFinder result, used
// implicitly by the paper's Lightweight Parallel CPM):
//  * every k-clique lies inside some maximal clique of size >= k, and all
//    k-cliques inside one maximal clique are mutually reachable through
//    adjacent k-cliques (walk by swapping one node at a time);
//  * if two maximal cliques A, B (sizes >= k) share >= k-1 nodes, a k-clique
//    of A and a k-clique of B built on k-1 shared nodes are adjacent;
//  * conversely two adjacent k-cliques give maximal cliques sharing >= k-1
//    nodes.
// Hence the k-clique communities are exactly the unions of connected
// components of the "share >= k-1 nodes" relation over maximal cliques of
// size >= k — which run_cpm computes with a union-find over the shared
// clique-overlap index (see clique_index.h).
//
// Parallel structure (after [11], "Lightweight Parallel CPM"): maximal
// cliques are enumerated in parallel, the overlap index is computed in
// parallel over cliques, and the per-k percolations — which are mutually
// independent — run in parallel across k.
//
// Compatibility note: the free functions below are the per-k engine, kept
// verbatim as the reference oracle. New code should go through the
// cpm::Engine facade (cpm/engine.h), whose default sweep engine produces
// the same communities for all k plus the nesting tree in a single pass.
#pragma once

#include <cstddef>
#include <vector>

#include "cpm/community.h"
#include "graph/graph.h"

namespace kcc {

struct CpmOptions {
  /// Smallest community order to extract. Must be >= 2. k = 2 communities
  /// are the connected components (with >= 2 nodes) of the graph.
  std::size_t min_k = 2;

  /// Largest community order; 0 means "up to the maximum clique size".
  /// Values beyond the maximum clique size are clamped.
  std::size_t max_k = 0;

  /// Worker threads; 0 means hardware concurrency, 1 forces a fully
  /// sequential run.
  std::size_t threads = 0;
};

/// Extracts all k-clique communities of `g` for k in [min_k, max_k].
CpmResult run_cpm(const Graph& g, const CpmOptions& options = {});

/// Same, over a pre-enumerated maximal-clique set (each clique sorted, size
/// >= 2, defined over a graph with `num_nodes` nodes). `g` is still needed
/// for the k = 2 special case (connected components).
CpmResult run_cpm_on_cliques(const Graph& g, std::vector<NodeSet> cliques,
                             const CpmOptions& options = {});

}  // namespace kcc
