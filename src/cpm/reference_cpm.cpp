#include "cpm/reference_cpm.h"

#include <algorithm>

#include "clique/reference_enumerator.h"
#include "common/error.h"
#include "common/set_ops.h"
#include "common/union_find.h"

namespace kcc {

std::vector<NodeSet> reference_k_clique_communities(const Graph& g,
                                                    std::size_t k) {
  require(k >= 2, "reference_k_clique_communities: k must be >= 2");
  const std::vector<NodeSet> kcliques = all_k_cliques(g, k);
  if (kcliques.empty()) return {};

  UnionFind uf(kcliques.size());
  for (std::size_t i = 0; i < kcliques.size(); ++i) {
    for (std::size_t j = i + 1; j < kcliques.size(); ++j) {
      if (intersection_size(kcliques[i], kcliques[j]) == k - 1) {
        uf.unite(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
      }
    }
  }

  std::vector<NodeSet> out;
  for (const auto& group : uf.groups()) {
    NodeSet nodes;
    for (std::uint32_t idx : group) {
      nodes.insert(nodes.end(), kcliques[idx].begin(), kcliques[idx].end());
    }
    sort_unique(nodes);
    out.push_back(std::move(nodes));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace kcc
