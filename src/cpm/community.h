// Community data model for the Clique Percolation Method.
//
// A k-clique community (Palla et al. 2005, paper Sec. 3) is the union of all
// k-cliques reachable from one another through adjacent k-cliques (sharing
// k-1 nodes). We represent a community by (a) its member node set and (b)
// the ids of the maximal cliques whose k-cliques compose it; the clique ids
// are what lets the community tree resolve nesting parents exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace kcc {

struct Community {
  std::size_t k = 0;        // order of the community
  CommunityId id = 0;       // dense id within its CommunitySet
  NodeSet nodes;            // sorted member nodes
  std::vector<CliqueId> clique_ids;  // maximal cliques composing it (sorted)

  std::size_t size() const { return nodes.size(); }
};

/// All k-clique communities for a single k, ordered by descending size with
/// ties broken by smallest member node (so id 0 is the largest community).
struct CommunitySet {
  std::size_t k = 0;
  std::vector<Community> communities;

  std::size_t count() const { return communities.size(); }

  /// community id for each maximal clique id, or kNoCommunity for cliques of
  /// size < k. Sized to the global clique count.
  std::vector<CommunityId> community_of_clique;

  static constexpr CommunityId kNoCommunity = static_cast<CommunityId>(-1);
};

/// Full CPM output: communities for every k in [min_k, max_k], plus the
/// shared maximal-clique table they are defined over.
struct CpmResult {
  std::vector<NodeSet> cliques;     // maximal cliques of size >= 2
  std::size_t min_k = 0;
  std::size_t max_k = 0;            // inclusive; max_k < min_k means "none"
  std::vector<CommunitySet> by_k;   // by_k[i] holds k = min_k + i

  bool has_k(std::size_t k) const { return k >= min_k && k <= max_k; }

  const CommunitySet& at(std::size_t k) const;
  CommunitySet& at(std::size_t k);

  /// Total number of communities over all k (the paper reports 627).
  std::size_t total_communities() const;

  /// k values that have exactly one community (paper: 2, 21, 22, 25, 36).
  std::vector<std::size_t> unique_community_ks() const;
};

}  // namespace kcc
