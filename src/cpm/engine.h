// cpm::Engine — the one front door to clique percolation.
//
// Historically the library exposed three divergent entry points: run_cpm
// (maximal-clique reduction, per-k percolation), reference_k_clique_communities
// (the literal Sec. 3 definition, used as a test oracle) and
// weighted_k_clique_communities (CPMw intensity filtering). Each had its own
// options and result shape, and none produced the community tree. The Engine
// facade unifies them: one Options struct selects the k range, the clique
// floor, the intensity threshold and the engine; one Result carries
// communities-by-k, the nesting tree, per-stage timings and exactness
// provenance. The old free functions remain as thin compatibility wrappers —
// new code should construct an Engine.
//
//   cpm::Options options;
//   options.max_k = 12;
//   cpm::Result result = cpm::Engine(options).run(graph);
//   use(result.cpm.at(5), result.tree);
//
// Engines are looked up by name in a string-keyed registry
// (engine_registry()) instead of a closed enum, so backends can be added —
// including approximate ones — without touching every dispatch site. Each
// EngineInfo carries capability flags; CLI help text, the kcc_bench matrix
// and the check::differential axis are all generated from the registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clique/enumerator.h"
#include "common/cli.h"
#include "cpm/community_tree.h"
#include "cpm/cpm.h"
#include "graph/graph.h"
#include "graph/weighted_graph.h"

namespace kcc::cpm {

struct Options;
struct Result;

/// Whether an engine's output is byte-identical to the exact CPM definition
/// or a bounded approximation of it. Carried on every Result so downstream
/// artifacts (run reports, canonical text, bench JSON) are self-describing.
enum class Exactness { kExact, kAlmostExact };

const char* exactness_name(Exactness exactness);

/// Capability flags of a registered engine. The differential matrix, the
/// bench matrix and option validation key off these instead of hardcoding
/// engine names.
struct EngineCaps {
  /// Output is byte-identical to every other exact engine (the digest gate
  /// applies). Approximate engines are compared by community similarity
  /// (cpm/compare.h) instead.
  bool exact = true;
  /// Honors Options::memory_budget / Options::spill_dir.
  bool supports_memory_budget = false;
  /// Produces the Fig. 4.2 nesting tree when Options::build_tree is set.
  bool supports_tree = true;
  /// Engine::run_on_cliques works (the engine consumes a pre-enumerated
  /// maximal-clique table). False for engines that enumerate k-cliques
  /// themselves.
  bool supports_run_on_cliques = true;
  /// Exponential-time validation oracle: only safe on tiny graphs. Matrix
  /// generators cap the input size for these.
  bool exponential = false;
  /// The engine emits its clique table in lexicographic order rather than
  /// enumeration order (the incremental engine cannot preserve enumeration
  /// order across edge churn). Digest comparisons against enumeration-
  /// ordered engines must first pass those Results through
  /// canonicalise_clique_order() — clique order is a serialization detail
  /// of canonical_text, not part of the CPM output.
  bool canonical_clique_order = false;
};

/// One registered percolation backend: name, one-line summary (used to
/// generate --engine help text), capabilities and the dispatch hooks.
struct EngineInfo {
  std::string name;
  std::string summary;
  EngineCaps caps;
  /// Full run over a graph. Null = use the generic path (shared clique
  /// enumeration followed by run_on_cliques).
  Result (*run)(const Options&, const Graph&) = nullptr;
  /// Run over a pre-enumerated clique table. Null iff
  /// !caps.supports_run_on_cliques.
  Result (*run_on_cliques)(const Options&, const Graph&,
                           std::vector<NodeSet>) = nullptr;
};

/// All registered engines, built-ins first, in registration order. The
/// built-ins: sweep (default; single descending-k union-find sweep over the
/// sorted overlap list, tree in the same pass), stream (same sweep but
/// cliques stream through a bounded windowed channel with optional
/// spill-to-disk under --memory-budget), per_k (one independent percolation
/// per k; the original LP-CPM structure, kept as the reference oracle),
/// incremental (live clique/overlap state patched under edge batches —
/// cpm/incr_cpm.h — materialized through the sweep tail; exact,
/// lexicographic clique order), almost_exact (Baudin et al. 2021
/// bounded-memory percolation over per-node community candidates — no
/// overlap join; approximate) and reference (the literal k-clique-graph
/// definition; exponential). docs/ALGORITHMS.md compares them with
/// measured numbers.
const std::vector<EngineInfo>& engine_registry();

/// Registry lookup; nullptr when `name` is unknown.
const EngineInfo* find_engine(const std::string& name);

/// Registry lookup; throws kcc::Error listing the registered names when
/// `name` is unknown.
const EngineInfo& engine_info(const std::string& name);

/// Adds an engine to the registry (throws on a duplicate name). Intended
/// for out-of-tree experiments; the built-ins are always present.
void register_engine(EngineInfo info);

/// "sweep|stream|per_k|almost_exact|reference" — the registered names
/// joined with `sep`, for help/error text.
std::string engine_names_joined(char sep = '|');

/// DEPRECATED closed enum kept as a compatibility shim over the registry;
/// new code should use the string names / EngineInfo directly. Engines
/// registered at runtime have no EngineKind.
enum class EngineKind { kSweep, kStream, kPerK, kAlmostExact, kReference };

/// DEPRECATED: registry-backed name of a built-in engine kind.
const char* engine_name(EngineKind kind);

/// DEPRECATED: parses a built-in engine name to the legacy enum; throws
/// kcc::Error otherwise. Prefer engine_info(name).
EngineKind parse_engine(const std::string& name);

struct Options {
  /// Smallest community order to extract (>= 2).
  std::size_t min_k = 2;

  /// Largest community order; 0 means "up to the maximum clique size" (for
  /// the reference and weighted paths: until a k yields no community).
  std::size_t max_k = 0;

  /// Maximal cliques smaller than this are dropped before percolation
  /// (>= 2). Raising it prunes the overlap index when only high k matters.
  std::size_t min_clique_size = 2;

  /// Worker threads; 0 means hardware concurrency, 1 forces sequential.
  std::size_t threads = 0;

  /// Registry name of the percolation backend (see engine_registry()).
  std::string engine = "sweep";

  /// Which maximal-clique kernel feeds the percolation (all engines except
  /// reference, which enumerates k-cliques itself). `auto` picks bitset for
  /// any graph dense enough to profit; `sparse` is the historical merge
  /// kernel. Output is byte-identical across backends (canonical_digest
  /// does not depend on this knob — check::differential proves it).
  clique::Backend clique_backend = clique::Backend::kAuto;

  /// Bitset backend only: subproblems with more candidates than this fall
  /// back to the sparse kernel (0 = library default; see
  /// clique::Options::bitset_max_universe).
  std::size_t bitset_max_universe = 0;

  /// Streaming engine only: cap on resident overlap-pair bytes; 0 means
  /// unlimited. Non-zero budgets below stream_min_memory_budget() are
  /// rejected. Other engines ignore it.
  std::uint64_t memory_budget = 0;

  /// Streaming engine only: directory for spill files (empty = system
  /// temp directory). Must exist and be writable — validated at
  /// Engine::run entry so a bad path fails before any work, not at the
  /// first spill.
  std::string spill_dir;

  /// Weighted runs (Engine::run_weighted) keep only k-cliques whose
  /// intensity (geometric mean edge weight) reaches this threshold.
  double intensity_threshold = 0.0;

  /// Safety valve for weighted runs: abort when a single k would enumerate
  /// more than this many k-cliques (0 disables).
  std::size_t max_weighted_cliques = 5'000'000;

  /// Skip tree assembly (Result::has_tree stays false).
  bool build_tree = true;

  /// Projection onto the legacy per-engine option struct.
  CpmOptions cpm_options() const;
};

/// Wall-clock seconds per stage of the last run.
struct Timings {
  double cliques_seconds = 0.0;    // maximal-clique enumeration
  double percolate_seconds = 0.0;  // community extraction (all k)
  double tree_seconds = 0.0;       // nesting-tree assembly
  double total_seconds = 0.0;
};

struct Result {
  CpmResult cpm;       // communities for every k, plus the clique table
  CommunityTree tree;  // valid iff has_tree
  bool has_tree = false;
  /// Provenance: which registered engine produced this, and whether its
  /// output is exact. Serialized into canonical_text headers and run
  /// reports.
  std::string engine_name = "sweep";
  Exactness exactness = Exactness::kExact;
  Timings timings;
};

class Engine {
 public:
  explicit Engine(Options options = {});

  const Options& options() const { return options_; }
  const EngineInfo& info() const { return *info_; }

  /// Enumerates maximal cliques of `g` and extracts communities + tree.
  Result run(const Graph& g) const;

  /// Same over a pre-enumerated maximal-clique set (sorted, size >= 2).
  /// Throws for engines with !caps.supports_run_on_cliques (reference,
  /// which enumerates k-cliques itself).
  Result run_on_cliques(const Graph& g, std::vector<NodeSet> cliques) const;

  /// CPMw: communities among k-cliques whose intensity reaches
  /// options().intensity_threshold. Intensity filtering can break the
  /// nesting theorem, so no tree is produced.
  Result run_weighted(const Graph& g, const EdgeWeights& weights) const;

 private:
  Options options_;
  const EngineInfo* info_;  // resolved at construction; never null
};

/// What the canonical serialization covers. The reference engine produces
/// node sets only (no clique table, no clique ids, no in-pass tree), so
/// comparisons against it drop those sections.
struct CanonicalOptions {
  bool include_cliques = true;
  bool include_clique_ids = true;
  bool include_tree = true;
};

/// Deterministic line-oriented serialization of a Result, opening with an
/// `exactness exact|almost_exact` header. Two Results are byte-identical
/// under the exact engines' output contract iff their canonical texts are
/// equal; the check:: differential runner diffs these to pinpoint the first
/// divergence between engines. Approximate results are compared by
/// similarity instead (cpm/compare.h).
std::string canonical_text(const Result& result,
                           const CanonicalOptions& options = {});

/// FNV-1a 64-bit digest of canonical_text — a cheap equality fingerprint.
std::uint64_t canonical_digest(const Result& result,
                               const CanonicalOptions& options = {});

/// Re-orders Result::cpm.cliques lexicographically and remaps every clique
/// id (community clique_ids, re-sorted ascending, and community_of_clique)
/// accordingly. Community node sets, community order and the tree are
/// untouched. After this, an exact enumeration-ordered Result is
/// byte-identical (canonical_text) to the same run from an engine with
/// caps.canonical_clique_order — the equivalence check::differential and
/// check::churn_differential rely on.
void canonicalise_clique_order(Result& result);

/// Flag names of the shared engine CLI surface (--k-min, --k-max, --engine,
/// --threads, --memory-budget, --clique-backend); append these to a
/// binary's known-flag list so unknown flags still fail loudly.
const std::vector<std::string>& engine_cli_flags();

/// Applies the shared engine flags on top of `defaults`:
///   --k-min=N --k-max=N --engine=NAME --threads=N
///   --memory-budget=BYTES[K|M|G] --clique-backend=auto|sparse|bitset
/// --engine accepts any registered name (see engine_registry()).
Options options_from_cli(const CliArgs& args, Options defaults = {});

}  // namespace kcc::cpm
