// cpm::Engine — the one front door to clique percolation.
//
// Historically the library exposed three divergent entry points: run_cpm
// (maximal-clique reduction, per-k percolation), reference_k_clique_communities
// (the literal Sec. 3 definition, used as a test oracle) and
// weighted_k_clique_communities (CPMw intensity filtering). Each had its own
// options and result shape, and none produced the community tree. The Engine
// facade unifies them: one Options struct selects the k range, the clique
// floor, the intensity threshold and the engine
// (sweep | stream | per_k | reference);
// one Result carries communities-by-k, the nesting tree and per-stage
// timings. The old free functions remain as thin compatibility wrappers —
// new code should construct an Engine.
//
//   cpm::Options options;
//   options.max_k = 12;
//   cpm::Result result = cpm::Engine(options).run(graph);
//   use(result.cpm.at(5), result.tree);
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clique/enumerator.h"
#include "common/cli.h"
#include "cpm/community_tree.h"
#include "cpm/cpm.h"
#include "graph/graph.h"
#include "graph/weighted_graph.h"

namespace kcc::cpm {

/// Which percolation implementation runs.
///  * kSweep — single descending-k union-find sweep over the sorted overlap
///    list; produces the community tree in the same pass (the default).
///  * kStream — the same sweep, but cliques stream through a bounded
///    windowed channel and overlap pairs are bucketed (and optionally
///    spilled to disk under --memory-budget) instead of materialized as one
///    global array; lowest peak memory, byte-identical output.
///  * kPerK — one independent percolation per k over the shared overlap
///    list (the original LP-CPM structure; kept as the reference oracle).
///  * kReference — the literal k-clique-graph definition; exponential, for
///    validation on small graphs only.
/// docs/ALGORITHMS.md compares the engines with measured numbers.
enum class EngineKind { kSweep, kStream, kPerK, kReference };

const char* engine_name(EngineKind kind);

/// Parses "sweep" | "stream" | "per_k" | "reference"; throws kcc::Error
/// otherwise.
EngineKind parse_engine(const std::string& name);

struct Options {
  /// Smallest community order to extract (>= 2).
  std::size_t min_k = 2;

  /// Largest community order; 0 means "up to the maximum clique size" (for
  /// the reference and weighted paths: until a k yields no community).
  std::size_t max_k = 0;

  /// Maximal cliques smaller than this are dropped before percolation
  /// (>= 2). Raising it prunes the overlap index when only high k matters.
  std::size_t min_clique_size = 2;

  /// Worker threads; 0 means hardware concurrency, 1 forces sequential.
  std::size_t threads = 0;

  EngineKind engine = EngineKind::kSweep;

  /// Which maximal-clique kernel feeds the percolation (all engines except
  /// reference, which enumerates k-cliques itself). `auto` picks bitset for
  /// any graph dense enough to profit; `sparse` is the historical merge
  /// kernel. Output is byte-identical across backends (canonical_digest
  /// does not depend on this knob — check::differential proves it).
  clique::Backend clique_backend = clique::Backend::kAuto;

  /// Bitset backend only: subproblems with more candidates than this fall
  /// back to the sparse kernel (0 = library default; see
  /// clique::Options::bitset_max_universe).
  std::size_t bitset_max_universe = 0;

  /// Streaming engine only: cap on resident overlap-pair bytes; 0 means
  /// unlimited. Non-zero budgets below stream_min_memory_budget() are
  /// rejected. Other engines ignore it.
  std::uint64_t memory_budget = 0;

  /// Streaming engine only: directory for spill files (empty = system
  /// temp directory).
  std::string spill_dir;

  /// Weighted runs (Engine::run_weighted) keep only k-cliques whose
  /// intensity (geometric mean edge weight) reaches this threshold.
  double intensity_threshold = 0.0;

  /// Safety valve for weighted runs: abort when a single k would enumerate
  /// more than this many k-cliques (0 disables).
  std::size_t max_weighted_cliques = 5'000'000;

  /// Skip tree assembly (Result::has_tree stays false).
  bool build_tree = true;

  /// Projection onto the legacy per-engine option struct.
  CpmOptions cpm_options() const;
};

/// Wall-clock seconds per stage of the last run.
struct Timings {
  double cliques_seconds = 0.0;    // maximal-clique enumeration
  double percolate_seconds = 0.0;  // community extraction (all k)
  double tree_seconds = 0.0;       // nesting-tree assembly
  double total_seconds = 0.0;
};

struct Result {
  CpmResult cpm;       // communities for every k, plus the clique table
  CommunityTree tree;  // valid iff has_tree
  bool has_tree = false;
  EngineKind engine = EngineKind::kSweep;
  Timings timings;
};

class Engine {
 public:
  explicit Engine(Options options = {});

  const Options& options() const { return options_; }

  /// Enumerates maximal cliques of `g` and extracts communities + tree.
  Result run(const Graph& g) const;

  /// Same over a pre-enumerated maximal-clique set (sorted, size >= 2).
  /// Not available for the reference engine, which enumerates k-cliques
  /// itself.
  Result run_on_cliques(const Graph& g, std::vector<NodeSet> cliques) const;

  /// CPMw: communities among k-cliques whose intensity reaches
  /// options().intensity_threshold. Intensity filtering can break the
  /// nesting theorem, so no tree is produced.
  Result run_weighted(const Graph& g, const EdgeWeights& weights) const;

 private:
  Options options_;
};

/// What the canonical serialization covers. The reference engine produces
/// node sets only (no clique table, no clique ids, no in-pass tree), so
/// comparisons against it drop those sections.
struct CanonicalOptions {
  bool include_cliques = true;
  bool include_clique_ids = true;
  bool include_tree = true;
};

/// Deterministic line-oriented serialization of a Result. Two Results are
/// byte-identical under the engines' output contract iff their canonical
/// texts are equal; the check:: differential runner diffs these to pinpoint
/// the first divergence between engines.
std::string canonical_text(const Result& result,
                           const CanonicalOptions& options = {});

/// FNV-1a 64-bit digest of canonical_text — a cheap equality fingerprint.
std::uint64_t canonical_digest(const Result& result,
                               const CanonicalOptions& options = {});

/// Flag names of the shared engine CLI surface (--k-min, --k-max, --engine,
/// --threads, --memory-budget, --clique-backend); append these to a
/// binary's known-flag list so unknown flags still fail loudly.
const std::vector<std::string>& engine_cli_flags();

/// Applies the shared engine flags on top of `defaults`:
///   --k-min=N --k-max=N --engine=sweep|stream|per_k|reference --threads=N
///   --memory-budget=BYTES[K|M|G] --clique-backend=auto|sparse|bitset
Options options_from_cli(const CliArgs& args, Options defaults = {});

}  // namespace kcc::cpm
