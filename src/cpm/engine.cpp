#include "cpm/engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cpm/reference_cpm.h"
#include "cpm/stream_cpm.h"
#include "cpm/sweep_cpm.h"
#include "cpm/weighted_cpm.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace kcc::cpm {
namespace {

// Wraps plain per-k node-set lists (reference / weighted results) in the
// common CpmResult shape. Communities carry no clique ids; tree assembly
// falls back to node-containment parent search.
CpmResult result_from_node_sets(std::size_t min_k,
                                std::vector<std::vector<NodeSet>> by_k) {
  CpmResult result;
  result.min_k = min_k;
  result.max_k = min_k + by_k.size() - 1;  // wraps to min_k - 1 when empty
  for (std::size_t i = 0; i < by_k.size(); ++i) {
    CommunitySet set;
    set.k = min_k + i;
    // Re-establish the canonical order (size desc, nodes lex) shared by all
    // engines; the oracle lists communities lexicographically.
    std::sort(by_k[i].begin(), by_k[i].end(),
              [](const NodeSet& a, const NodeSet& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a < b;
              });
    for (CommunityId id = 0; id < by_k[i].size(); ++id) {
      Community c;
      c.k = set.k;
      c.id = id;
      c.nodes = std::move(by_k[i][id]);
      set.communities.push_back(std::move(c));
    }
    result.by_k.push_back(std::move(set));
  }
  return result;
}

// Runs `communities_at(k)` for ascending k until the range is exhausted:
// either the configured max_k, or the first empty k when max_k is 0 (the
// nesting theorem guarantees no later k can be non-empty).
template <typename Fn>
CpmResult collect_per_k(const Options& options, Fn&& communities_at) {
  std::vector<std::vector<NodeSet>> by_k;
  for (std::size_t k = options.min_k;
       options.max_k == 0 || k <= options.max_k; ++k) {
    std::vector<NodeSet> communities = communities_at(k);
    if (communities.empty() && options.max_k == 0) break;
    by_k.push_back(std::move(communities));
  }
  // Trim trailing empty levels so max_k reflects the last populated k.
  while (!by_k.empty() && by_k.back().empty()) by_k.pop_back();
  return result_from_node_sets(options.min_k, std::move(by_k));
}

StreamCpmOptions stream_options(const Options& options) {
  StreamCpmOptions stream;
  stream.min_k = options.min_k;
  stream.max_k = options.max_k;
  stream.min_clique_size = options.min_clique_size;
  stream.threads = options.threads;
  stream.memory_budget = options.memory_budget;
  stream.spill_dir = options.spill_dir;
  stream.clique_backend = options.clique_backend;
  stream.bitset_max_universe = options.bitset_max_universe;
  return stream;
}

}  // namespace

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSweep:
      return "sweep";
    case EngineKind::kStream:
      return "stream";
    case EngineKind::kPerK:
      return "per_k";
    case EngineKind::kReference:
      return "reference";
  }
  return "?";
}

EngineKind parse_engine(const std::string& name) {
  if (name == "sweep") return EngineKind::kSweep;
  if (name == "stream") return EngineKind::kStream;
  if (name == "per_k") return EngineKind::kPerK;
  if (name == "reference") return EngineKind::kReference;
  throw Error("unknown engine '" + name + "' (sweep|stream|per_k|reference)");
}

CpmOptions Options::cpm_options() const {
  CpmOptions legacy;
  legacy.min_k = min_k;
  legacy.max_k = max_k;
  legacy.threads = threads;
  return legacy;
}

Engine::Engine(Options options) : options_(std::move(options)) {
  require(options_.min_k >= 2, "cpm::Engine: min_k must be >= 2");
  require(options_.min_clique_size >= 2,
          "cpm::Engine: min_clique_size must be >= 2");
}

Result Engine::run(const Graph& g) const {
  if (options_.engine == EngineKind::kReference) {
    KCC_SPAN("cpm_engine/reference");
    Timer total;
    Result result;
    result.engine = EngineKind::kReference;
    {
      obs::StageScope stage("percolate");
      result.cpm = collect_per_k(options_, [&](std::size_t k) {
        return reference_k_clique_communities(g, k);
      });
    }
    result.timings.percolate_seconds = total.lap();
    if (options_.build_tree && result.cpm.max_k >= result.cpm.min_k) {
      obs::StageScope stage("tree");
      result.tree = CommunityTree::build(result.cpm);
      result.has_tree = true;
      result.timings.tree_seconds = total.lap();
    }
    result.timings.total_seconds = total.seconds();
    return result;
  }

  if (options_.engine == EngineKind::kStream) {
    // The streaming engine pipelines enumeration with the overlap join, so
    // there is no separate clique stage to time: cliques_seconds stays 0
    // and percolate_seconds covers the fused pass.
    KCC_SPAN("cpm_engine/stream");
    Timer total;
    Result result;
    result.engine = EngineKind::kStream;
    StreamCpmResult stream = [&] {
      obs::StageScope stage("percolate");
      return run_stream_cpm(g, stream_options(options_));
    }();
    result.cpm = std::move(stream.cpm);
    result.timings.percolate_seconds = total.lap();
    if (options_.build_tree && result.cpm.max_k >= result.cpm.min_k) {
      result.tree = std::move(stream.tree);
      result.has_tree = true;
    }
    result.timings.total_seconds = total.seconds();
    return result;
  }

  Timer cliques_timer;
  std::vector<NodeSet> cliques;
  {
    KCC_SPAN("cpm_engine/cliques");
    obs::StageScope stage("cliques");
    ThreadPool pool(options_.threads);
    clique::Options copt;
    copt.min_size = options_.min_clique_size;
    copt.backend = options_.clique_backend;
    copt.bitset_max_universe = options_.bitset_max_universe;
    cliques = clique::Enumerator(g, copt).collect(pool);
  }
  const double cliques_seconds = cliques_timer.seconds();
  Result result = run_on_cliques(g, std::move(cliques));
  result.timings.cliques_seconds = cliques_seconds;
  result.timings.total_seconds += cliques_seconds;
  return result;
}

Result Engine::run_on_cliques(const Graph& g,
                              std::vector<NodeSet> cliques) const {
  require(options_.engine != EngineKind::kReference,
          "cpm::Engine: the reference engine enumerates k-cliques itself; "
          "use run(g)");
  Timer total;
  Result result;
  result.engine = options_.engine;
  const CpmOptions legacy = options_.cpm_options();
  if (options_.engine == EngineKind::kSweep) {
    KCC_SPAN("cpm_engine/sweep");
    SweepCpmResult sweep = [&] {
      obs::StageScope stage("percolate");
      return run_sweep_cpm_on_cliques(g, std::move(cliques), legacy);
    }();
    result.cpm = std::move(sweep.cpm);
    result.timings.percolate_seconds = total.lap();
    if (options_.build_tree && result.cpm.max_k >= result.cpm.min_k) {
      // The sweep built the tree in the same pass; adopt it.
      result.tree = std::move(sweep.tree);
      result.has_tree = true;
    }
  } else if (options_.engine == EngineKind::kStream) {
    KCC_SPAN("cpm_engine/stream");
    StreamCpmResult stream = [&] {
      obs::StageScope stage("percolate");
      return run_stream_cpm_on_cliques(g, std::move(cliques),
                                       stream_options(options_));
    }();
    result.cpm = std::move(stream.cpm);
    result.timings.percolate_seconds = total.lap();
    if (options_.build_tree && result.cpm.max_k >= result.cpm.min_k) {
      result.tree = std::move(stream.tree);
      result.has_tree = true;
    }
  } else {
    KCC_SPAN("cpm_engine/per_k");
    {
      obs::StageScope stage("percolate");
      result.cpm = run_cpm_on_cliques(g, std::move(cliques), legacy);
    }
    result.timings.percolate_seconds = total.lap();
    if (options_.build_tree && result.cpm.max_k >= result.cpm.min_k) {
      obs::StageScope stage("tree");
      result.tree = CommunityTree::build(result.cpm);
      result.has_tree = true;
      result.timings.tree_seconds = total.lap();
    }
  }
  result.timings.total_seconds = total.seconds();
  return result;
}

Result Engine::run_weighted(const Graph& g, const EdgeWeights& weights) const {
  KCC_SPAN("cpm_engine/weighted");
  Timer total;
  Result result;
  result.engine = options_.engine;
  obs::StageScope stage("percolate");
  result.cpm = collect_per_k(options_, [&](std::size_t k) {
    WeightedCpmOptions weighted;
    weighted.k = k;
    weighted.intensity_threshold = options_.intensity_threshold;
    weighted.max_cliques = options_.max_weighted_cliques;
    return weighted_k_clique_communities(g, weights, weighted);
  });
  result.timings.percolate_seconds = total.lap();
  result.timings.total_seconds = total.seconds();
  // Intensity filtering can break the nesting theorem, so has_tree stays
  // false regardless of build_tree.
  return result;
}

std::string canonical_text(const Result& result,
                           const CanonicalOptions& options) {
  std::ostringstream out;
  const CpmResult& cpm = result.cpm;
  out << "k " << cpm.min_k << ' ' << cpm.max_k << '\n';
  if (options.include_cliques) {
    out << "cliques " << cpm.cliques.size() << '\n';
    for (CliqueId c = 0; c < cpm.cliques.size(); ++c) {
      out << "q " << c;
      for (NodeId v : cpm.cliques[c]) out << ' ' << v;
      out << '\n';
    }
  }
  for (const CommunitySet& set : cpm.by_k) {
    out << "level " << set.k << ' ' << set.count() << '\n';
    for (const Community& c : set.communities) {
      out << "m " << c.id << " n";
      for (NodeId v : c.nodes) out << ' ' << v;
      if (options.include_clique_ids) {
        out << " c";
        for (CliqueId q : c.clique_ids) out << ' ' << q;
      }
      out << '\n';
    }
    if (options.include_clique_ids) {
      out << "map";
      for (CommunityId id : set.community_of_clique) {
        if (id == CommunitySet::kNoCommunity) {
          out << " -";
        } else {
          out << ' ' << id;
        }
      }
      out << '\n';
    }
  }
  if (options.include_tree) {
    out << "tree " << (result.has_tree ? result.tree.nodes().size() : 0)
        << '\n';
    if (result.has_tree) {
      for (std::size_t i = 0; i < result.tree.nodes().size(); ++i) {
        const TreeNode& node = result.tree.nodes()[i];
        out << "t " << i << " k=" << node.k << " id=" << node.community_id
            << " size=" << node.size << " parent=" << node.parent
            << " main=" << (node.is_main ? 1 : 0);
        out << " ch";
        for (int child : node.children) out << ' ' << child;
        out << '\n';
      }
    }
  }
  return out.str();
}

std::uint64_t canonical_digest(const Result& result,
                               const CanonicalOptions& options) {
  const std::string text = canonical_text(result, options);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char ch : text) {
    hash ^= ch;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

const std::vector<std::string>& engine_cli_flags() {
  static const std::vector<std::string> flags{
      "k-min", "k-max", "engine", "threads", "memory-budget",
      "clique-backend"};
  return flags;
}

Options options_from_cli(const CliArgs& args, Options defaults) {
  Options options = std::move(defaults);
  options.min_k = static_cast<std::size_t>(
      args.get_int("k-min", static_cast<std::int64_t>(options.min_k)));
  options.max_k = static_cast<std::size_t>(
      args.get_int("k-max", static_cast<std::int64_t>(options.max_k)));
  options.threads = static_cast<std::size_t>(
      args.get_int("threads", static_cast<std::int64_t>(options.threads)));
  if (args.has("engine")) {
    options.engine = parse_engine(args.get_string("engine", "sweep"));
  }
  if (args.has("memory-budget")) {
    options.memory_budget =
        parse_memory_budget(args.get_string("memory-budget", "0"));
  }
  if (args.has("clique-backend")) {
    options.clique_backend =
        clique::parse_backend(args.get_string("clique-backend", "auto"));
  }
  return options;
}

}  // namespace kcc::cpm
