#include "cpm/engine.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <utility>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cpm/almost_cpm.h"
#include "cpm/incr_cpm.h"
#include "cpm/reference_cpm.h"
#include "cpm/stream_cpm.h"
#include "cpm/sweep_cpm.h"
#include "cpm/weighted_cpm.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace kcc::cpm {
namespace {

// Wraps plain per-k node-set lists (reference / weighted results) in the
// common CpmResult shape. Communities carry no clique ids; tree assembly
// falls back to node-containment parent search.
CpmResult result_from_node_sets(std::size_t min_k,
                                std::vector<std::vector<NodeSet>> by_k) {
  CpmResult result;
  result.min_k = min_k;
  result.max_k = min_k + by_k.size() - 1;  // wraps to min_k - 1 when empty
  for (std::size_t i = 0; i < by_k.size(); ++i) {
    CommunitySet set;
    set.k = min_k + i;
    // Re-establish the canonical order (size desc, nodes lex) shared by all
    // engines; the oracle lists communities lexicographically.
    std::sort(by_k[i].begin(), by_k[i].end(),
              [](const NodeSet& a, const NodeSet& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a < b;
              });
    for (CommunityId id = 0; id < by_k[i].size(); ++id) {
      Community c;
      c.k = set.k;
      c.id = id;
      c.nodes = std::move(by_k[i][id]);
      set.communities.push_back(std::move(c));
    }
    result.by_k.push_back(std::move(set));
  }
  return result;
}

// Runs `communities_at(k)` for ascending k until the range is exhausted:
// either the configured max_k, or the first empty k when max_k is 0 (the
// nesting theorem guarantees no later k can be non-empty).
template <typename Fn>
CpmResult collect_per_k(const Options& options, Fn&& communities_at) {
  std::vector<std::vector<NodeSet>> by_k;
  for (std::size_t k = options.min_k;
       options.max_k == 0 || k <= options.max_k; ++k) {
    std::vector<NodeSet> communities = communities_at(k);
    if (communities.empty() && options.max_k == 0) break;
    by_k.push_back(std::move(communities));
  }
  // Trim trailing empty levels so max_k reflects the last populated k.
  while (!by_k.empty() && by_k.back().empty()) by_k.pop_back();
  return result_from_node_sets(options.min_k, std::move(by_k));
}

StreamCpmOptions stream_options(const Options& options) {
  StreamCpmOptions stream;
  stream.min_k = options.min_k;
  stream.max_k = options.max_k;
  stream.min_clique_size = options.min_clique_size;
  stream.threads = options.threads;
  stream.memory_budget = options.memory_budget;
  stream.spill_dir = options.spill_dir;
  stream.clique_backend = options.clique_backend;
  stream.bitset_max_universe = options.bitset_max_universe;
  return stream;
}

// Adopts a sweep-shaped {cpm, tree} pair into a Result, honoring build_tree.
template <typename SweepShaped>
Result adopt_sweep_result(const Options& options, SweepShaped shaped,
                          Timer& total) {
  Result result;
  result.cpm = std::move(shaped.cpm);
  result.timings.percolate_seconds = total.lap();
  if (options.build_tree && result.cpm.max_k >= result.cpm.min_k) {
    // The engine built the tree in the same pass; adopt it.
    result.tree = std::move(shaped.tree);
    result.has_tree = true;
  }
  result.timings.total_seconds = total.seconds();
  return result;
}

// ------------------------------------------------- registry run hooks

Result run_reference_full(const Options& options, const Graph& g) {
  KCC_SPAN("cpm_engine/reference");
  Timer total;
  Result result;
  {
    obs::StageScope stage("percolate");
    result.cpm = collect_per_k(options, [&](std::size_t k) {
      return reference_k_clique_communities(g, k);
    });
  }
  result.timings.percolate_seconds = total.lap();
  if (options.build_tree && result.cpm.max_k >= result.cpm.min_k) {
    obs::StageScope stage("tree");
    result.tree = CommunityTree::build(result.cpm);
    result.has_tree = true;
    result.timings.tree_seconds = total.lap();
  }
  result.timings.total_seconds = total.seconds();
  return result;
}

Result run_stream_full(const Options& options, const Graph& g) {
  // The streaming engine pipelines enumeration with the overlap join, so
  // there is no separate clique stage to time: cliques_seconds stays 0
  // and percolate_seconds covers the fused pass.
  KCC_SPAN("cpm_engine/stream");
  Timer total;
  StreamCpmResult stream = [&] {
    obs::StageScope stage("percolate");
    return run_stream_cpm(g, stream_options(options));
  }();
  return adopt_sweep_result(options, std::move(stream), total);
}

Result run_sweep_cliques(const Options& options, const Graph& g,
                         std::vector<NodeSet> cliques) {
  KCC_SPAN("cpm_engine/sweep");
  Timer total;
  SweepCpmResult sweep = [&] {
    obs::StageScope stage("percolate");
    return run_sweep_cpm_on_cliques(g, std::move(cliques),
                                    options.cpm_options());
  }();
  return adopt_sweep_result(options, std::move(sweep), total);
}

Result run_stream_cliques(const Options& options, const Graph& g,
                          std::vector<NodeSet> cliques) {
  KCC_SPAN("cpm_engine/stream");
  Timer total;
  StreamCpmResult stream = [&] {
    obs::StageScope stage("percolate");
    return run_stream_cpm_on_cliques(g, std::move(cliques),
                                     stream_options(options));
  }();
  return adopt_sweep_result(options, std::move(stream), total);
}

Result run_per_k_cliques(const Options& options, const Graph& g,
                         std::vector<NodeSet> cliques) {
  KCC_SPAN("cpm_engine/per_k");
  Timer total;
  Result result;
  {
    obs::StageScope stage("percolate");
    result.cpm =
        run_cpm_on_cliques(g, std::move(cliques), options.cpm_options());
  }
  result.timings.percolate_seconds = total.lap();
  if (options.build_tree && result.cpm.max_k >= result.cpm.min_k) {
    obs::StageScope stage("tree");
    result.tree = CommunityTree::build(result.cpm);
    result.has_tree = true;
    result.timings.tree_seconds = total.lap();
  }
  result.timings.total_seconds = total.seconds();
  return result;
}

Result run_almost_cliques(const Options& options, const Graph& g,
                          std::vector<NodeSet> cliques) {
  KCC_SPAN("cpm_engine/almost_exact");
  Timer total;
  AlmostCpmResult almost = [&] {
    obs::StageScope stage("percolate");
    return run_almost_cpm_on_cliques(g, std::move(cliques),
                                     options.cpm_options());
  }();
  return adopt_sweep_result(options, std::move(almost), total);
}

std::vector<EngineInfo>& mutable_registry() {
  static std::vector<EngineInfo> registry = [] {
    std::vector<EngineInfo> built_in;
    {
      EngineInfo sweep;
      sweep.name = "sweep";
      sweep.summary =
          "single descending-k union-find sweep over the sorted overlap "
          "list; tree in the same pass (default)";
      sweep.run_on_cliques = &run_sweep_cliques;
      built_in.push_back(std::move(sweep));
    }
    {
      EngineInfo stream;
      stream.name = "stream";
      stream.summary =
          "fused enumeration + incremental overlap join with bounded "
          "windows; honors --memory-budget spill-to-disk";
      stream.caps.supports_memory_budget = true;
      stream.run = &run_stream_full;
      stream.run_on_cliques = &run_stream_cliques;
      built_in.push_back(std::move(stream));
    }
    {
      EngineInfo per_k;
      per_k.name = "per_k";
      per_k.summary =
          "one independent percolation per k over the shared overlap list "
          "(the original LP-CPM structure; reference oracle)";
      per_k.run_on_cliques = &run_per_k_cliques;
      built_in.push_back(std::move(per_k));
    }
    {
      EngineInfo incremental;
      incremental.name = "incremental";
      incremental.summary =
          "live clique/overlap state patched under edge batches, "
          "materialized through the sweep tail; exact, lexicographic "
          "clique order";
      incremental.caps.canonical_clique_order = true;
      incremental.run = &run_incremental_full;
      incremental.run_on_cliques = &run_incremental_on_cliques;
      built_in.push_back(std::move(incremental));
    }
    {
      EngineInfo almost;
      almost.name = "almost_exact";
      almost.summary =
          "Baudin et al. bounded-memory percolation over per-node community "
          "candidates; no overlap join, output approximate (F1-gated)";
      almost.caps.exact = false;
      almost.run_on_cliques = &run_almost_cliques;
      built_in.push_back(std::move(almost));
    }
    {
      EngineInfo reference;
      reference.name = "reference";
      reference.summary =
          "literal k-clique-graph definition; exponential, validation on "
          "small graphs only";
      reference.caps.supports_run_on_cliques = false;
      reference.caps.exponential = true;
      reference.run = &run_reference_full;
      built_in.push_back(std::move(reference));
    }
    return built_in;
  }();
  return registry;
}

// Fails fast on a spill directory that would only explode at the first
// spill deep inside the stream engine.
void validate_spill_dir(const std::string& spill_dir) {
  if (spill_dir.empty()) return;
  std::error_code ec;
  const std::filesystem::path dir(spill_dir);
  if (!std::filesystem::is_directory(dir, ec)) {
    throw Error("cpm::Engine: spill_dir '" + spill_dir +
                "' does not exist or is not a directory");
  }
  if (::access(spill_dir.c_str(), W_OK | X_OK) != 0) {
    throw Error("cpm::Engine: spill_dir '" + spill_dir +
                "' is not writable");
  }
}

}  // namespace

const char* exactness_name(Exactness exactness) {
  switch (exactness) {
    case Exactness::kExact:
      return "exact";
    case Exactness::kAlmostExact:
      return "almost_exact";
  }
  return "?";
}

const std::vector<EngineInfo>& engine_registry() { return mutable_registry(); }

const EngineInfo* find_engine(const std::string& name) {
  for (const EngineInfo& info : engine_registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const EngineInfo& engine_info(const std::string& name) {
  if (const EngineInfo* info = find_engine(name)) return *info;
  throw Error("unknown engine '" + name + "' (" + engine_names_joined() +
              ")");
}

void register_engine(EngineInfo info) {
  require(!info.name.empty(), "register_engine: name must be non-empty");
  require(find_engine(info.name) == nullptr,
          "register_engine: duplicate engine name '" + info.name + "'");
  require(info.run != nullptr || info.run_on_cliques != nullptr,
          "register_engine: engine '" + info.name +
              "' needs at least one run hook");
  mutable_registry().push_back(std::move(info));
}

std::string engine_names_joined(char sep) {
  std::string joined;
  for (const EngineInfo& info : engine_registry()) {
    if (!joined.empty()) joined.push_back(sep);
    joined += info.name;
  }
  return joined;
}

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSweep:
      return "sweep";
    case EngineKind::kStream:
      return "stream";
    case EngineKind::kPerK:
      return "per_k";
    case EngineKind::kAlmostExact:
      return "almost_exact";
    case EngineKind::kReference:
      return "reference";
  }
  return "?";
}

EngineKind parse_engine(const std::string& name) {
  engine_info(name);  // throws with the full registered-name list
  if (name == "sweep") return EngineKind::kSweep;
  if (name == "stream") return EngineKind::kStream;
  if (name == "per_k") return EngineKind::kPerK;
  if (name == "almost_exact") return EngineKind::kAlmostExact;
  if (name == "reference") return EngineKind::kReference;
  throw Error("engine '" + name +
              "' has no legacy EngineKind; use engine_info(name)");
}

CpmOptions Options::cpm_options() const {
  CpmOptions legacy;
  legacy.min_k = min_k;
  legacy.max_k = max_k;
  legacy.threads = threads;
  return legacy;
}

Engine::Engine(Options options)
    : options_(std::move(options)), info_(&engine_info(options_.engine)) {
  require(options_.min_k >= 2, "cpm::Engine: min_k must be >= 2");
  require(options_.min_clique_size >= 2,
          "cpm::Engine: min_clique_size must be >= 2");
}

Result Engine::run(const Graph& g) const {
  if (info_->caps.supports_memory_budget) {
    validate_spill_dir(options_.spill_dir);
  }
  Result result;
  if (info_->run != nullptr) {
    result = info_->run(options_, g);
  } else {
    // Generic path: shared clique enumeration feeding run_on_cliques.
    Timer cliques_timer;
    std::vector<NodeSet> cliques;
    {
      KCC_SPAN("cpm_engine/cliques");
      obs::StageScope stage("cliques");
      ThreadPool pool(options_.threads);
      clique::Options copt;
      copt.min_size = options_.min_clique_size;
      copt.backend = options_.clique_backend;
      copt.bitset_max_universe = options_.bitset_max_universe;
      cliques = clique::Enumerator(g, copt).collect(pool);
    }
    const double cliques_seconds = cliques_timer.seconds();
    result = run_on_cliques(g, std::move(cliques));
    result.timings.cliques_seconds = cliques_seconds;
    result.timings.total_seconds += cliques_seconds;
  }
  result.engine_name = info_->name;
  result.exactness =
      info_->caps.exact ? Exactness::kExact : Exactness::kAlmostExact;
  obs::annotate_run("cpm_engine", result.engine_name);
  obs::annotate_run("cpm_exactness", exactness_name(result.exactness));
  return result;
}

Result Engine::run_on_cliques(const Graph& g,
                              std::vector<NodeSet> cliques) const {
  require(info_->caps.supports_run_on_cliques && info_->run_on_cliques,
          "cpm::Engine: the " + std::string(info_->name) +
              " engine enumerates k-cliques itself; use run(g)");
  if (info_->caps.supports_memory_budget) {
    validate_spill_dir(options_.spill_dir);
  }
  Result result = info_->run_on_cliques(options_, g, std::move(cliques));
  result.engine_name = info_->name;
  result.exactness =
      info_->caps.exact ? Exactness::kExact : Exactness::kAlmostExact;
  obs::annotate_run("cpm_engine", result.engine_name);
  obs::annotate_run("cpm_exactness", exactness_name(result.exactness));
  return result;
}

Result Engine::run_weighted(const Graph& g, const EdgeWeights& weights) const {
  KCC_SPAN("cpm_engine/weighted");
  Timer total;
  Result result;
  result.engine_name = info_->name;
  result.exactness =
      info_->caps.exact ? Exactness::kExact : Exactness::kAlmostExact;
  obs::StageScope stage("percolate");
  result.cpm = collect_per_k(options_, [&](std::size_t k) {
    WeightedCpmOptions weighted;
    weighted.k = k;
    weighted.intensity_threshold = options_.intensity_threshold;
    weighted.max_cliques = options_.max_weighted_cliques;
    return weighted_k_clique_communities(g, weights, weighted);
  });
  result.timings.percolate_seconds = total.lap();
  result.timings.total_seconds = total.seconds();
  // Intensity filtering can break the nesting theorem, so has_tree stays
  // false regardless of build_tree.
  return result;
}

std::string canonical_text(const Result& result,
                           const CanonicalOptions& options) {
  std::ostringstream out;
  const CpmResult& cpm = result.cpm;
  out << "exactness " << exactness_name(result.exactness) << '\n';
  out << "k " << cpm.min_k << ' ' << cpm.max_k << '\n';
  if (options.include_cliques) {
    out << "cliques " << cpm.cliques.size() << '\n';
    for (CliqueId c = 0; c < cpm.cliques.size(); ++c) {
      out << "q " << c;
      for (NodeId v : cpm.cliques[c]) out << ' ' << v;
      out << '\n';
    }
  }
  for (const CommunitySet& set : cpm.by_k) {
    out << "level " << set.k << ' ' << set.count() << '\n';
    for (const Community& c : set.communities) {
      out << "m " << c.id << " n";
      for (NodeId v : c.nodes) out << ' ' << v;
      if (options.include_clique_ids) {
        out << " c";
        for (CliqueId q : c.clique_ids) out << ' ' << q;
      }
      out << '\n';
    }
    if (options.include_clique_ids) {
      out << "map";
      for (CommunityId id : set.community_of_clique) {
        if (id == CommunitySet::kNoCommunity) {
          out << " -";
        } else {
          out << ' ' << id;
        }
      }
      out << '\n';
    }
  }
  if (options.include_tree) {
    out << "tree " << (result.has_tree ? result.tree.nodes().size() : 0)
        << '\n';
    if (result.has_tree) {
      for (std::size_t i = 0; i < result.tree.nodes().size(); ++i) {
        const TreeNode& node = result.tree.nodes()[i];
        out << "t " << i << " k=" << node.k << " id=" << node.community_id
            << " size=" << node.size << " parent=" << node.parent
            << " main=" << (node.is_main ? 1 : 0);
        out << " ch";
        for (int child : node.children) out << ' ' << child;
        out << '\n';
      }
    }
  }
  return out.str();
}

std::uint64_t canonical_digest(const Result& result,
                               const CanonicalOptions& options) {
  const std::string text = canonical_text(result, options);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char ch : text) {
    hash ^= ch;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void canonicalise_clique_order(Result& result) {
  CpmResult& cpm = result.cpm;
  const std::size_t n = cpm.cliques.size();
  std::vector<CliqueId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<CliqueId>(i);
  std::sort(order.begin(), order.end(), [&](CliqueId a, CliqueId b) {
    return cpm.cliques[a] < cpm.cliques[b];
  });
  std::vector<CliqueId> new_id(n);
  for (std::size_t i = 0; i < n; ++i) {
    new_id[order[i]] = static_cast<CliqueId>(i);
  }
  std::vector<NodeSet> table(n);
  for (std::size_t i = 0; i < n; ++i) {
    table[i] = std::move(cpm.cliques[order[i]]);
  }
  cpm.cliques = std::move(table);
  for (CommunitySet& set : cpm.by_k) {
    for (Community& community : set.communities) {
      for (CliqueId& c : community.clique_ids) c = new_id[c];
      // Every engine emits clique ids ascending; restore that after remap.
      std::sort(community.clique_ids.begin(), community.clique_ids.end());
    }
    // Community order is (size desc, nodes lex) — clique-id independent —
    // so only the clique->community map needs permuting.
    if (!set.community_of_clique.empty()) {
      std::vector<CommunityId> map(n, CommunitySet::kNoCommunity);
      for (std::size_t c = 0; c < set.community_of_clique.size() && c < n;
           ++c) {
        map[new_id[c]] = set.community_of_clique[c];
      }
      set.community_of_clique = std::move(map);
    }
  }
}

const std::vector<std::string>& engine_cli_flags() {
  static const std::vector<std::string> flags{
      "k-min", "k-max", "engine", "threads", "memory-budget",
      "clique-backend"};
  return flags;
}

Options options_from_cli(const CliArgs& args, Options defaults) {
  Options options = std::move(defaults);
  options.min_k = static_cast<std::size_t>(
      args.get_int("k-min", static_cast<std::int64_t>(options.min_k)));
  options.max_k = static_cast<std::size_t>(
      args.get_int("k-max", static_cast<std::int64_t>(options.max_k)));
  options.threads = static_cast<std::size_t>(
      args.get_int("threads", static_cast<std::int64_t>(options.threads)));
  if (args.has("engine")) {
    options.engine = args.get_string("engine", "sweep");
    engine_info(options.engine);  // unknown names fail at flag-parse time
  }
  if (args.has("memory-budget")) {
    options.memory_budget =
        parse_memory_budget(args.get_string("memory-budget", "0"));
  }
  if (args.has("clique-backend")) {
    options.clique_backend =
        clique::parse_backend(args.get_string("clique-backend", "auto"));
  }
  return options;
}

}  // namespace kcc::cpm
