#include "cpm/stream_cpm.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/union_find.h"
#include "cpm/percolate_detail.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kcc {
namespace {

namespace fs = std::filesystem;

// 8 bytes per overlap pair — vs 12 in CliqueOverlap, whose overlap field is
// encoded here by which bucket the pair lives in.
struct PackedPair {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

constexpr std::uint64_t kSpillChunkBytes = 64 * 1024;
constexpr std::size_t kSpillChunkPairs = kSpillChunkBytes / sizeof(PackedPair);

// Cached instrument handles (see obs/metrics.h: lookup locks, updates don't).
struct StreamMetrics {
  obs::Counter& windows = obs::metrics().counter("cpm_stream_windows_total");
  obs::Counter& pairs = obs::metrics().counter("cpm_stream_pairs_total");
  obs::Counter& spilled_pairs =
      obs::metrics().counter("cpm_stream_spilled_pairs_total");
  obs::Counter& spill_bytes =
      obs::metrics().counter("cpm_stream_spill_bytes_total");
  obs::Gauge& resident_bytes =
      obs::metrics().gauge("cpm_stream_resident_pair_bytes");
  obs::Gauge& rss_bytes = obs::metrics().gauge("cpm_stream_rss_bytes");
};

StreamMetrics& stream_metrics() {
  static StreamMetrics m;
  return m;
}

// One overlap value's pairs: a resident tail plus an optional spilled
// prefix. The per-overlap buckets double as the descending counting sort.
struct Bucket {
  std::vector<PackedPair> resident;
  std::uint64_t spilled_pairs = 0;
  std::ofstream spill_out;  // open iff spilled_pairs > 0
};

// Incremental percolator: cliques stream in (add_clique), overlap pairs are
// bucketed by overlap value with budget-driven spill, and finish() runs the
// shared descending-k sweep.
class StreamPercolator {
 public:
  StreamPercolator(const Graph& g, const StreamCpmOptions& options)
      : g_(g), options_(options), index_(g.num_nodes()) {
    require(options_.min_k >= 2, "run_stream_cpm: min_k must be >= 2");
    require(options_.memory_budget == 0 ||
                options_.memory_budget >= stream_min_memory_budget(),
            "run_stream_cpm: --memory-budget " +
                std::to_string(options_.memory_budget) +
                " is smaller than the spill chunk (" +
                std::to_string(stream_min_memory_budget()) +
                " bytes); raise the budget or use 0 for unlimited");
    // Pairs below this overlap would feed no sweep level: level k consumes
    // overlap k-1 and the lowest emitted union level is max(3, min_k).
    prune_min_ = std::max<std::size_t>(3, options_.min_k) - 1;
  }

  ~StreamPercolator() {
    if (!spill_dir_.empty()) {
      std::error_code ec;  // best-effort cleanup, errors already reported
      for (auto& bucket : buckets_) {
        if (bucket.spill_out.is_open()) bucket.spill_out.close();
      }
      fs::remove_all(spill_dir_, ec);
    }
  }

  void add_clique(NodeSet&& clique) {
    const CliqueId c = static_cast<CliqueId>(cliques_.size());
    // max_k == 2 never consumes overlap pairs: communities are connected
    // components, so skip the join entirely.
    if (options_.max_k != 2) join_against_index(c, clique);
    for (NodeId v : clique) index_[v].push_back(c);
    stamp_.push_back(0);
    count_.push_back(0);
    cliques_.push_back(std::move(clique));
  }

  // Window boundary: publish the memory gauges and the window counter.
  void on_window() {
    ++stats_.windows;
    StreamMetrics& m = stream_metrics();
    m.windows.inc();
    m.resident_bytes.set(static_cast<std::int64_t>(resident_pair_bytes_));
    m.rss_bytes.set(static_cast<std::int64_t>(obs::current_rss_bytes()));
  }

  StreamCpmResult finish() {
    on_window_state_final();
    StreamCpmResult out;
    CpmResult& result = out.cpm;
    result.cliques = std::move(cliques_);
    result.min_k = options_.min_k;
    result.max_k = cpm_detail::resolve_max_k(options_.min_k, options_.max_k,
                                             result.cliques);
    out.stats = stats_;
    if (result.max_k < result.min_k) return out;

    // The join is done; drop its scratch before the sweep allocates.
    release(index_);
    release(stamp_);
    release(count_);
    release(touched_);

    const std::size_t num_cliques = result.cliques.size();
    std::size_t max_size = 0;
    for (const auto& c : result.cliques) {
      max_size = std::max(max_size, c.size());
    }
    result.by_k.resize(result.max_k - result.min_k + 1);
    cpm_detail::DescendingLevelEmitter emitter(g_, result);

    if (result.max_k >= 3) {
      KCC_SPAN("stream_cpm/sweep");
      std::vector<std::vector<CliqueId>> cliques_of_size(max_size + 1);
      for (CliqueId c = 0; c < num_cliques; ++c) {
        cliques_of_size[result.cliques[c].size()].push_back(c);
      }
      UnionFind uf(num_cliques);
      std::vector<CliqueId> live;
      std::uint64_t join_ops = 0;
      cpm_detail::SweepSnapshotter snapshotter(num_cliques);

      const std::size_t lowest = std::max<std::size_t>(3, result.min_k);
      for (std::size_t k = max_size; k >= lowest; --k) {
        for (CliqueId c : cliques_of_size[k]) live.push_back(c);
        drain_bucket(k - 1, uf, join_ops);
        if (k > result.max_k) continue;
        const obs::ScopedSpan span("stream_cpm/emit_k=" + std::to_string(k));
        emitter.emit(snapshotter.snapshot(k, uf, live, result.cliques));
      }
      cpm_detail::note_join_ops(join_ops);
    }

    if (result.min_k == 2) {
      KCC_SPAN("stream_cpm/percolate_k2");
      emitter.emit_k2();
    }
    {
      KCC_SPAN("stream_cpm/tree");
      out.tree = emitter.finish();
    }
    out.stats = stats_;
    return out;
  }

 private:
  template <typename T>
  static void release(std::vector<T>& v) {
    v.clear();
    v.shrink_to_fit();
  }

  // Counting join of clique `c` (not yet in the index) against every
  // earlier clique sharing a node — the incremental half of
  // clique_index.cpp's overlaps_for_clique.
  void join_against_index(CliqueId c, const NodeSet& clique) {
    const std::uint32_t epoch = c + 1;  // unique per call, stamp_ starts at 0
    for (NodeId v : clique) {
      for (CliqueId other : index_[v]) {
        if (stamp_[other] != epoch) {
          stamp_[other] = epoch;
          count_[other] = 0;
          touched_.push_back(other);
        }
        ++count_[other];
      }
    }
    for (CliqueId other : touched_) {
      const std::size_t overlap = count_[other];
      if (overlap >= prune_min_) store_pair(overlap, other, c);
    }
    touched_.clear();
  }

  void store_pair(std::size_t overlap, CliqueId a, CliqueId b) {
    if (overlap >= buckets_.size()) buckets_.resize(overlap + 1);
    buckets_[overlap].resident.push_back(PackedPair{a, b});
    resident_pair_bytes_ += sizeof(PackedPair);
    ++stats_.pairs_total;
    stream_metrics().pairs.inc();
    if (resident_pair_bytes_ > stats_.resident_pair_bytes_peak) {
      stats_.resident_pair_bytes_peak = resident_pair_bytes_;
    }
    if (options_.memory_budget != 0 &&
        resident_pair_bytes_ > options_.memory_budget) {
      spill_until_within_budget();
    }
  }

  void spill_until_within_budget() {
    KCC_SPAN("stream_cpm/spill");
    while (resident_pair_bytes_ > options_.memory_budget) {
      // Largest resident bucket first: biggest drop per file write. Ties go
      // to the lowest overlap, which the sweep consumes last.
      std::size_t victim = buckets_.size();
      std::size_t victim_size = 0;
      for (std::size_t o = 0; o < buckets_.size(); ++o) {
        if (buckets_[o].resident.size() > victim_size) {
          victim = o;
          victim_size = buckets_[o].resident.size();
        }
      }
      if (victim == buckets_.size()) break;  // nothing left to spill
      spill_bucket(victim);
    }
  }

  void spill_bucket(std::size_t overlap) {
    Bucket& bucket = buckets_[overlap];
    if (!bucket.spill_out.is_open()) {
      ensure_spill_dir();
      const fs::path path =
          spill_dir_ / ("overlap-" + std::to_string(overlap) + ".pairs");
      bucket.spill_out.open(path, std::ios::binary | std::ios::app);
      require(bucket.spill_out.good(),
              "run_stream_cpm: cannot open spill file " + path.string());
    }
    const std::uint64_t bytes = bucket.resident.size() * sizeof(PackedPair);
    bucket.spill_out.write(
        reinterpret_cast<const char*>(bucket.resident.data()),
        static_cast<std::streamsize>(bytes));
    require(bucket.spill_out.good(), "run_stream_cpm: spill write failed");
    bucket.spilled_pairs += bucket.resident.size();
    stats_.spilled_pairs += bucket.resident.size();
    stats_.spill_bytes += bytes;
    StreamMetrics& m = stream_metrics();
    m.spilled_pairs.inc(bucket.resident.size());
    m.spill_bytes.inc(bytes);
    resident_pair_bytes_ -= bytes;
    release(bucket.resident);
  }

  void ensure_spill_dir() {
    if (!spill_dir_.empty()) return;
    static std::atomic<std::uint64_t> run_counter{0};
    const fs::path base = options_.spill_dir.empty()
                              ? fs::temp_directory_path()
                              : fs::path(options_.spill_dir);
    spill_dir_ = base / ("kcc-stream-" + std::to_string(::getpid()) + "-" +
                         std::to_string(run_counter.fetch_add(1)));
    fs::create_directories(spill_dir_);
    KCC_LOG(kDebug) << "run_stream_cpm: spilling to " << spill_dir_.string();
  }

  // Unites every pair of one overlap value: spilled prefix streamed back in
  // fixed chunks, then the resident tail. Order within the bucket does not
  // affect the components, hence not the output.
  void drain_bucket(std::size_t overlap, UnionFind& uf,
                    std::uint64_t& join_ops) {
    if (overlap >= buckets_.size()) return;
    Bucket& bucket = buckets_[overlap];
    if (bucket.spilled_pairs > 0) {
      bucket.spill_out.close();
      const fs::path path =
          spill_dir_ / ("overlap-" + std::to_string(overlap) + ".pairs");
      std::ifstream in(path, std::ios::binary);
      require(in.good(),
              "run_stream_cpm: cannot reopen spill file " + path.string());
      std::vector<PackedPair> chunk(kSpillChunkPairs);
      std::uint64_t remaining = bucket.spilled_pairs;
      while (remaining > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, chunk.size()));
        in.read(reinterpret_cast<char*>(chunk.data()),
                static_cast<std::streamsize>(n * sizeof(PackedPair)));
        require(static_cast<std::size_t>(in.gcount()) ==
                    n * sizeof(PackedPair),
                "run_stream_cpm: spill file truncated: " + path.string());
        for (std::size_t i = 0; i < n; ++i) uf.unite(chunk[i].a, chunk[i].b);
        join_ops += n;
        remaining -= n;
      }
      in.close();
      std::error_code ec;
      fs::remove(path, ec);
      bucket.spilled_pairs = 0;
    }
    for (const PackedPair& p : bucket.resident) uf.unite(p.a, p.b);
    join_ops += bucket.resident.size();
    resident_pair_bytes_ -= bucket.resident.size() * sizeof(PackedPair);
    release(bucket.resident);
  }

  // Final gauge sample for runs that never saw a window boundary (the
  // pre-enumerated-clique path).
  void on_window_state_final() {
    StreamMetrics& m = stream_metrics();
    m.resident_bytes.set(static_cast<std::int64_t>(resident_pair_bytes_));
    m.rss_bytes.set(static_cast<std::int64_t>(obs::current_rss_bytes()));
  }

  const Graph& g_;
  const StreamCpmOptions& options_;
  std::size_t prune_min_ = 2;

  std::vector<NodeSet> cliques_;               // the growing output table
  std::vector<std::vector<CliqueId>> index_;   // node -> cliques (ascending)
  std::vector<std::uint32_t> stamp_;           // join scratch, per clique
  std::vector<std::uint32_t> count_;
  std::vector<CliqueId> touched_;

  std::vector<Bucket> buckets_;  // buckets_[o] = pairs with overlap o
  std::uint64_t resident_pair_bytes_ = 0;
  fs::path spill_dir_;  // empty until the first spill

  StreamCpmStats stats_;
};

}  // namespace

std::uint64_t stream_min_memory_budget() { return kSpillChunkBytes; }

std::uint64_t parse_memory_budget(const std::string& text) {
  require(!text.empty(), "parse_memory_budget: empty value");
  std::size_t digits = 0;
  while (digits < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[digits]))) {
    ++digits;
  }
  require(digits > 0, "parse_memory_budget: '" + text +
                          "' must start with a number (e.g. 512M)");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    const std::uint64_t next = value * 10 + (text[i] - '0');
    require(next >= value, "parse_memory_budget: '" + text + "' overflows");
    value = next;
  }
  std::uint64_t multiplier = 1;
  if (digits < text.size()) {
    require(digits + 1 == text.size(),
            "parse_memory_budget: '" + text +
                "' has trailing characters after the unit");
    switch (std::toupper(static_cast<unsigned char>(text[digits]))) {
      case 'K':
        multiplier = 1024ULL;
        break;
      case 'M':
        multiplier = 1024ULL * 1024;
        break;
      case 'G':
        multiplier = 1024ULL * 1024 * 1024;
        break;
      default:
        throw Error("parse_memory_budget: unknown unit '" +
                    std::string(1, text[digits]) + "' in '" + text +
                    "' (use K, M or G)");
    }
  }
  require(value <= ~0ULL / multiplier,
          "parse_memory_budget: '" + text + "' overflows");
  return value * multiplier;
}

StreamCpmResult run_stream_cpm(const Graph& g,
                               const StreamCpmOptions& options) {
  require(options.min_clique_size >= 2,
          "run_stream_cpm: min_clique_size must be >= 2");
  KCC_SPAN("stream_cpm/run");
  StreamPercolator percolator(g, options);
  {
    KCC_SPAN("stream_cpm/enumerate_join");
    ThreadPool pool(options.threads);
    clique::Options copt;
    copt.min_size = options.min_clique_size;
    copt.backend = options.clique_backend;
    copt.bitset_max_universe = options.bitset_max_universe;
    copt.window_positions = options.window_positions;
    const clique::Enumerator enumerator(g, copt);
    enumerator.stream(
        pool,
        [&](std::span<const NodeId> clique) {
          percolator.add_clique(NodeSet(clique.begin(), clique.end()));
        },
        [&](std::size_t) { percolator.on_window(); });
  }
  return percolator.finish();
}

StreamCpmResult run_stream_cpm_on_cliques(const Graph& g,
                                          std::vector<NodeSet> cliques,
                                          const StreamCpmOptions& options) {
  cpm_detail::validate_cpm_input(options.min_k, cliques,
                                 "run_stream_cpm_on_cliques");
  KCC_SPAN("stream_cpm/run_on_cliques");
  StreamPercolator percolator(g, options);
  // The clique table is taken verbatim (no min_clique_size filter), exactly
  // like the sweep and per-k run_on_cliques paths — ids must line up.
  for (auto& clique : cliques) percolator.add_clique(std::move(clique));
  cliques.clear();
  return percolator.finish();
}

}  // namespace kcc
