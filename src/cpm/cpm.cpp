#include "cpm/cpm.h"

#include <algorithm>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/set_ops.h"
#include "common/thread_pool.h"
#include "common/union_find.h"
#include "cpm/clique_index.h"
#include "cpm/community_tree.h"
#include "cpm/percolate_detail.h"
#include "graph/graph_algorithms.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kcc {

namespace cpm_detail {
namespace {

// Percolation instruments. Join ops are counted per-k in a local and flushed
// with one atomic add, so the union-find loop stays uninstrumented.
struct CpmMetrics {
  obs::Counter& join_ops = obs::metrics().counter("cpm_join_ops_total");
  obs::Counter& communities =
      obs::metrics().counter("cpm_communities_total");
  obs::Histogram& community_size = obs::metrics().histogram(
      "cpm_community_size_nodes",
      obs::Histogram::exponential_bounds(1.0, 2.0, 16));
};

CpmMetrics& cpm_metrics() {
  static CpmMetrics m;
  return m;
}

}  // namespace

void note_community_set(const CommunitySet& set) {
  CpmMetrics& m = cpm_metrics();
  m.communities.inc(set.communities.size());
  for (const Community& c : set.communities) {
    m.community_size.observe(static_cast<double>(c.size()));
  }
  obs::metrics()
      .gauge("cpm_communities_k" + std::to_string(set.k))
      .set(static_cast<std::int64_t>(set.communities.size()));
}

void note_join_ops(std::uint64_t join_ops) {
  cpm_metrics().join_ops.inc(join_ops);
}

void canonicalise(CommunitySet& set, std::size_t num_cliques) {
  std::sort(set.communities.begin(), set.communities.end(),
            [](const Community& a, const Community& b) {
              if (a.nodes.size() != b.nodes.size())
                return a.nodes.size() > b.nodes.size();
              return a.nodes < b.nodes;
            });
  set.community_of_clique.assign(num_cliques, CommunitySet::kNoCommunity);
  for (CommunityId id = 0; id < set.communities.size(); ++id) {
    set.communities[id].id = id;
    for (CliqueId c : set.communities[id].clique_ids) {
      set.community_of_clique[c] = id;
    }
  }
}

CommunitySet percolate_k2(const Graph& g, const std::vector<NodeSet>& cliques) {
  CommunitySet set;
  set.k = 2;
  const ComponentLabeling labels = connected_components(g);
  const auto sizes = labels.sizes();

  // Component id -> community index (only components with >= 2 nodes).
  std::vector<std::uint32_t> community_of_component(labels.count,
                                                    CommunitySet::kNoCommunity);
  for (std::uint32_t comp = 0; comp < labels.count; ++comp) {
    if (sizes[comp] >= 2) {
      community_of_component[comp] =
          static_cast<std::uint32_t>(set.communities.size());
      Community c;
      c.k = 2;
      set.communities.push_back(std::move(c));
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto idx = community_of_component[labels.component_of[v]];
    if (idx != CommunitySet::kNoCommunity) {
      set.communities[idx].nodes.push_back(v);  // ascending v => sorted
    }
  }
  for (CliqueId c = 0; c < cliques.size(); ++c) {
    const auto idx = community_of_component[labels.component_of[cliques[c][0]]];
    require(idx != CommunitySet::kNoCommunity,
            "percolate_k2: clique in a size-1 component");
    set.communities[idx].clique_ids.push_back(c);  // ascending c => sorted
  }
  canonicalise(set, cliques.size());
  return set;
}

void validate_cpm_input(std::size_t min_k, const std::vector<NodeSet>& cliques,
                        const char* where) {
  require(min_k >= 2, std::string(where) + ": min_k must be >= 2");
  for (const auto& c : cliques) {
    require(c.size() >= 2 && is_sorted_unique(c),
            std::string(where) + ": cliques must be sorted and of size >= 2");
  }
}

std::size_t resolve_max_k(std::size_t min_k, std::size_t max_k,
                          const std::vector<NodeSet>& cliques) {
  std::size_t max_clique = 0;
  for (const auto& c : cliques) max_clique = std::max(max_clique, c.size());
  const std::size_t resolved =
      max_k == 0 ? max_clique : std::min(max_k, max_clique);
  // max_k < min_k encodes the empty range; has_k() is false for every k.
  return resolved < min_k ? min_k - 1 : resolved;
}

SweepSnapshotter::SweepSnapshotter(std::size_t num_cliques)
    : stamp_(num_cliques, 0), slot_(num_cliques, 0) {}

CommunitySet SweepSnapshotter::snapshot(std::size_t k, UnionFind& uf,
                                        const std::vector<CliqueId>& live,
                                        const std::vector<NodeSet>& cliques) {
  CommunitySet set;
  set.k = k;
  ++epoch_;
  for (CliqueId c : live) {
    const std::uint32_t root = uf.find(c);
    if (stamp_[root] != epoch_) {
      stamp_[root] = epoch_;
      slot_[root] = static_cast<std::uint32_t>(set.communities.size());
      Community community;
      community.k = k;
      set.communities.push_back(std::move(community));
    }
    set.communities[slot_[root]].clique_ids.push_back(c);
  }
  for (Community& community : set.communities) {
    // Activation appends size-k batches, so live is not globally sorted.
    std::sort(community.clique_ids.begin(), community.clique_ids.end());
    for (CliqueId c : community.clique_ids) {
      community.nodes.insert(community.nodes.end(), cliques[c].begin(),
                             cliques[c].end());
    }
    sort_unique(community.nodes);
  }
  return set;
}

DescendingLevelEmitter::DescendingLevelEmitter(const Graph& g,
                                               CpmResult& result)
    : g_(g), result_(result), tree_levels_(result.by_k.size()) {}

void DescendingLevelEmitter::emit(CommunitySet set) {
  const std::size_t k = set.k;
  canonicalise(set, result_.cliques.size());
  note_community_set(set);
  if (k < result_.max_k) {
    auto& above = tree_levels_[k + 1 - result_.min_k];
    for (std::size_t i = 0; i < reps_above_.size(); ++i) {
      above[i].parent_id = set.community_of_clique[reps_above_[i]];
      require(above[i].parent_id != CommunitySet::kNoCommunity,
              "DescendingLevelEmitter: nesting parent missing");
    }
  }
  auto& links = tree_levels_[k - result_.min_k];
  links.resize(set.count());
  reps_above_.assign(set.count(), 0);
  for (CommunityId id = 0; id < set.count(); ++id) {
    links[id].size = set.communities[id].size();
    reps_above_[id] = set.communities[id].clique_ids.front();
  }
  result_.by_k[k - result_.min_k] = std::move(set);
}

void DescendingLevelEmitter::emit_k2() {
  CommunitySet set = percolate_k2(g_, result_.cliques);
  note_community_set(set);
  if (result_.max_k >= 3) {
    auto& above = tree_levels_[1];
    for (std::size_t i = 0; i < reps_above_.size(); ++i) {
      above[i].parent_id = set.community_of_clique[reps_above_[i]];
    }
  }
  auto& links = tree_levels_[0];
  links.resize(set.count());
  for (CommunityId id = 0; id < set.count(); ++id) {
    links[id].size = set.communities[id].size();
  }
  result_.by_k[0] = std::move(set);
}

CommunityTree DescendingLevelEmitter::finish() const {
  return CommunityTree::from_levels(result_.min_k, tree_levels_);
}

}  // namespace cpm_detail

namespace {

using cpm_detail::canonicalise;
using cpm_detail::percolate_k2;

// General k >= 3 percolation over the precomputed overlap pair list.
CommunitySet percolate_k(std::size_t k, const std::vector<NodeSet>& cliques,
                         const std::vector<CliqueOverlap>& overlaps) {
  CommunitySet set;
  set.k = k;

  // Local re-labelling of eligible cliques (size >= k).
  constexpr std::uint32_t kAbsent = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> local_of(cliques.size(), kAbsent);
  std::vector<CliqueId> global_of;
  for (CliqueId c = 0; c < cliques.size(); ++c) {
    if (cliques[c].size() >= k) {
      local_of[c] = static_cast<std::uint32_t>(global_of.size());
      global_of.push_back(c);
    }
  }
  if (global_of.empty()) return set;

  UnionFind uf(global_of.size());
  std::uint64_t join_ops = 0;
  for (const CliqueOverlap& o : overlaps) {
    if (o.overlap + 1 >= k && local_of[o.a] != kAbsent &&
        local_of[o.b] != kAbsent) {
      uf.unite(local_of[o.a], local_of[o.b]);
      ++join_ops;
    }
  }
  cpm_detail::note_join_ops(join_ops);

  for (auto& group : uf.groups()) {
    Community community;
    community.k = k;
    community.clique_ids.reserve(group.size());
    for (std::uint32_t local : group) {
      community.clique_ids.push_back(global_of[local]);
    }
    // group is ascending in local ids and local ids are ascending in global
    // ids, so clique_ids is sorted.
    for (CliqueId c : community.clique_ids) {
      community.nodes.insert(community.nodes.end(), cliques[c].begin(),
                             cliques[c].end());
    }
    sort_unique(community.nodes);
    set.communities.push_back(std::move(community));
  }
  canonicalise(set, cliques.size());
  return set;
}

}  // namespace

CpmResult run_cpm_on_cliques(const Graph& g, std::vector<NodeSet> cliques,
                             const CpmOptions& options) {
  cpm_detail::validate_cpm_input(options.min_k, cliques, "run_cpm_on_cliques");

  CpmResult result;
  result.cliques = std::move(cliques);
  result.min_k = options.min_k;
  result.max_k =
      cpm_detail::resolve_max_k(options.min_k, options.max_k, result.cliques);
  if (result.max_k < result.min_k) return result;

  ThreadPool pool(options.threads);

  // Overlap pairs are only needed for k >= 3 (threshold k-1 >= 2).
  std::vector<CliqueOverlap> overlaps;
  if (result.max_k >= 3) {
    KCC_SPAN("cpm/clique_overlaps");
    overlaps =
        compute_clique_overlaps(result.cliques, g.num_nodes(), 2, pool);
  }
  KCC_LOG(kDebug) << "run_cpm: " << result.cliques.size() << " cliques, "
                  << overlaps.size() << " overlap pairs, k in ["
                  << result.min_k << ", " << result.max_k << "]";

  result.by_k.resize(result.max_k - result.min_k + 1);
  // Per-k percolations are independent: the LP-CPM parallel axis.
  {
    KCC_SPAN("cpm/percolate_all_k");
    parallel_for(pool, result.by_k.size(), [&](std::size_t i) {
      const std::size_t k = result.min_k + i;
      const obs::ScopedSpan span("cpm/percolate_k=" + std::to_string(k));
      result.by_k[i] = k == 2 ? percolate_k2(g, result.cliques)
                              : percolate_k(k, result.cliques, overlaps);
      cpm_detail::note_community_set(result.by_k[i]);
    });
  }
  return result;
}

CpmResult run_cpm(const Graph& g, const CpmOptions& options) {
  require(options.min_k >= 2, "run_cpm: min_k must be >= 2");
  ThreadPool pool(options.threads);
  clique::Options copt;
  copt.min_size = 2;
  std::vector<NodeSet> cliques = clique::Enumerator(g, copt).collect(pool);
  return run_cpm_on_cliques(g, std::move(cliques), options);
}

}  // namespace kcc
