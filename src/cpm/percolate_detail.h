// Internals shared by the CPM engines (per-k percolation in cpm.cpp and the
// single-sweep engine in sweep_cpm.cpp): canonical community ordering, the
// k = 2 connected-components special case, option validation, and the common
// metrics hooks. Not part of the public API — include cpm/cpm.h or
// cpm/engine.h instead.
#pragma once

#include <cstddef>
#include <vector>

#include "cpm/community.h"
#include "graph/graph.h"

namespace kcc::cpm_detail {

/// Orders communities by descending size, ties by smallest member node, and
/// reassigns dense ids + the clique -> community map. The order is
/// independent of union-find internals and thread scheduling, so CPM output
/// is bit-stable across thread counts and across engines.
void canonicalise(CommunitySet& set, std::size_t num_cliques);

/// k = 2: communities are connected components with at least one edge.
CommunitySet percolate_k2(const Graph& g, const std::vector<NodeSet>& cliques);

/// Flushes the per-k community count/size instruments for one finished set.
void note_community_set(const CommunitySet& set);

/// Counts one batch of union-find join operations.
void note_join_ops(std::uint64_t join_ops);

/// Shared entry validation: min_k >= 2 and every clique sorted, size >= 2.
void validate_cpm_input(std::size_t min_k, const std::vector<NodeSet>& cliques,
                        const char* where);

/// Resolves the effective max_k: 0 means "largest clique size"; larger
/// requests are clamped. Returns min_k - 1 (empty range) when no clique
/// reaches min_k.
std::size_t resolve_max_k(std::size_t min_k, std::size_t max_k,
                          const std::vector<NodeSet>& cliques);

}  // namespace kcc::cpm_detail
