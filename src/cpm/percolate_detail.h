// Internals shared by the CPM engines (per-k percolation in cpm.cpp, the
// single-sweep engine in sweep_cpm.cpp and the streaming engine in
// stream_cpm.cpp): canonical community ordering, the k = 2
// connected-components special case, option validation, the descending-k
// level emitter / snapshotter shared by the sweep-style engines, and the
// common metrics hooks. Not part of the public API — include cpm/cpm.h or
// cpm/engine.h instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cpm/community.h"
#include "cpm/community_tree.h"
#include "graph/graph.h"

namespace kcc {
class UnionFind;
}

namespace kcc::cpm_detail {

/// Orders communities by descending size, ties by smallest member node, and
/// reassigns dense ids + the clique -> community map. The order is
/// independent of union-find internals and thread scheduling, so CPM output
/// is bit-stable across thread counts and across engines.
void canonicalise(CommunitySet& set, std::size_t num_cliques);

/// k = 2: communities are connected components with at least one edge.
CommunitySet percolate_k2(const Graph& g, const std::vector<NodeSet>& cliques);

/// Flushes the per-k community count/size instruments for one finished set.
void note_community_set(const CommunitySet& set);

/// Counts one batch of union-find join operations.
void note_join_ops(std::uint64_t join_ops);

/// Shared entry validation: min_k >= 2 and every clique sorted, size >= 2.
void validate_cpm_input(std::size_t min_k, const std::vector<NodeSet>& cliques,
                        const char* where);

/// Resolves the effective max_k: 0 means "largest clique size"; larger
/// requests are clamped. Returns min_k - 1 (empty range) when no clique
/// reaches min_k.
std::size_t resolve_max_k(std::size_t min_k, std::size_t max_k,
                          const std::vector<NodeSet>& cliques);

/// Groups live cliques by union-find root into one level-k CommunitySet.
/// The root → community-slot scratch map is epoch-stamped, so each snapshot
/// is O(|live|) with no per-level clearing; the union-find itself is never
/// copied or rolled back. Shared by the sweep and stream engines.
class SweepSnapshotter {
 public:
  explicit SweepSnapshotter(std::size_t num_cliques);

  /// Components over `live` at level `k`, with node sets materialized from
  /// `cliques` and clique ids sorted (NOT yet canonicalised — pass the
  /// result to DescendingLevelEmitter::emit).
  CommunitySet snapshot(std::size_t k, UnionFind& uf,
                        const std::vector<CliqueId>& live,
                        const std::vector<NodeSet>& cliques);

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> slot_;
  std::uint32_t epoch_ = 0;
};

/// Receives the per-k community sets of a descending-k sweep — from
/// result.max_k down to max(3, result.min_k), then optionally the k = 2
/// level — canonicalises each, wires the nesting parents of the level
/// above through its representative cliques, and assembles the community
/// tree. Both the single-sweep and the streaming engine emit through this
/// class, which is what keeps their output byte-identical to each other
/// (and, by the sweep-vs-oracle tests, to the per-k engine).
/// `result.min_k`, `result.max_k` and `result.by_k` must be sized before
/// construction; `result.cliques` must hold the full clique table.
class DescendingLevelEmitter {
 public:
  DescendingLevelEmitter(const Graph& g, CpmResult& result);

  /// Emits the level for `set.k`. Levels must arrive in strictly
  /// descending k order.
  void emit(CommunitySet set);

  /// Emits the k = 2 level (connected components) and resolves the k = 3
  /// parents. Call after every k >= 3 level, only when result.min_k == 2.
  void emit_k2();

  /// Assembles the tree from the emitted levels.
  CommunityTree finish() const;

 private:
  const Graph& g_;
  CpmResult& result_;
  std::vector<std::vector<TreeParentLink>> tree_levels_;
  // Representative clique of each community at the previously emitted
  // (next-higher) level, in canonical id order; resolving it against the
  // current level's clique -> community map yields the nesting parent.
  std::vector<CliqueId> reps_above_;
};

}  // namespace kcc::cpm_detail
