// Similarity comparison between two cpm::Results.
//
// The exact engines are held to byte-identical output, so canonical_digest
// equality is the gate between them. The almost_exact engine (and any
// future approximate backend) cannot meet that bar by design; its contract
// is a *bounded* gap instead. compare_results scores that gap per k with
// the community-matching machinery from metrics/similarity.h:
//
//   recall    = mean best-match Jaccard, baseline -> candidate
//   precision = mean best-match Jaccard, candidate -> baseline
//   F1        = harmonic mean of the two
//
// and reports the worst level. check::differential fails approximate
// engines whose worst F1 drops below the threshold, kcc_fuzz inherits that
// gate, and bench/perf_cpm.cpp records the per-k curves in BENCH_cpm.json.
// The comparison also feeds the cpm_gap_* metrics (docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cpm/engine.h"

namespace kcc::cpm {

struct CompareOptions {
  /// Comparison passes (Comparison::ok) iff every level's F1 reaches this.
  double min_f1 = 0.99;
  /// Export cpm_gap_* metrics for the comparison.
  bool publish_metrics = true;
};

/// Gap between two results at one k.
struct LevelGap {
  std::size_t k = 0;
  std::size_t communities_baseline = 0;
  std::size_t communities_candidate = 0;
  double recall = 1.0;     // mean best-match Jaccard, baseline -> candidate
  double precision = 1.0;  // mean best-match Jaccard, candidate -> baseline
  double f1 = 1.0;         // harmonic mean of recall and precision
};

struct Comparison {
  /// Node-set projections are byte-identical (F1 is exactly 1 everywhere).
  bool identical = false;
  /// k ranges match and every level's F1 >= CompareOptions::min_f1.
  bool ok = false;
  double worst_f1 = 1.0;
  std::size_t worst_k = 0;  // level attaining worst_f1 (0 when no levels)
  std::vector<LevelGap> levels;
  /// One-line human-readable verdict, e.g. for differential failure text.
  std::string summary;
};

/// Scores `candidate` against `baseline` per k. Use whenever either side is
/// approximate (Result::exactness != kExact); exact-vs-exact callers should
/// keep using canonical_digest equality, which this does not replace.
Comparison compare_results(const Result& baseline, const Result& candidate,
                           const CompareOptions& options = {});

}  // namespace kcc::cpm
