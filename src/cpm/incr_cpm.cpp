#include "cpm/incr_cpm.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cpm/clique_index.h"
#include "cpm/sweep_cpm.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace kcc::cpm {
namespace {

std::pair<NodeId, NodeId> canon(std::pair<NodeId, NodeId> e) {
  if (e.first > e.second) std::swap(e.first, e.second);
  return e;
}

std::string describe(std::pair<NodeId, NodeId> e) {
  return "(" + std::to_string(e.first) + ", " + std::to_string(e.second) +
         ")";
}

}  // namespace

IncrementalCpm::IncrementalCpm(const Graph& g, Options options)
    : options_(std::move(options)) {
  require(options_.min_k >= 2, "IncrementalCpm: min_k must be >= 2");
  require(options_.min_clique_size >= 2,
          "IncrementalCpm: min_clique_size must be >= 2");
  KCC_SPAN("incr_cpm/bootstrap");
  {
    ThreadPool pool(options_.threads);
    clique::Options copt;
    // The maintained table must hold EVERY maximal clique of size >= 2
    // regardless of options_.min_clique_size (fragments below the floor
    // still shape future updates); the floor filters at materialization.
    copt.min_size = 2;
    copt.backend = options_.clique_backend;
    copt.bitset_max_universe = options_.bitset_max_universe;
    cliques_ = clique::Enumerator(g, copt).collect(pool);
  }
  bootstrap(g);
}

IncrementalCpm::IncrementalCpm(FromCliquesTag, const Graph& g,
                               std::vector<NodeSet> cliques, Options options)
    : options_(std::move(options)) {
  require(options_.min_k >= 2, "IncrementalCpm: min_k must be >= 2");
  require(options_.min_clique_size >= 2,
          "IncrementalCpm: min_clique_size must be >= 2");
  cliques_ = std::move(cliques);
  materialize_only_ = options_.min_clique_size > 2;
  bootstrap(g);
}

void IncrementalCpm::bootstrap(const Graph& g) {
  adjacency_.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.num_edges();

  alive_.assign(cliques_.size(), 1);
  alive_count_ = cliques_.size();
  gen_.assign(cliques_.size(), 0);
  cliques_of_node_.assign(adjacency_.size(), {});
  for (CliqueId c = 0; c < cliques_.size(); ++c) {
    for (NodeId x : cliques_[c]) cliques_of_node_[x].push_back({c, 0});
  }
  overlaps_.assign(cliques_.size(), {});
  {
    ThreadPool pool(options_.threads);
    for (const CliqueOverlap& p : compute_clique_overlaps_unsorted(
             cliques_, adjacency_.size(), 2, pool)) {
      overlaps_[p.a].push_back({p.b, 0, p.overlap});
      overlaps_[p.b].push_back({p.a, 0, p.overlap});
    }
  }
  stale_entries_ = 0;
  stamp_.assign(cliques_.size(), 0);
  count_.assign(cliques_.size(), 0);
  node_stamp_.assign(adjacency_.size(), 0);
  node_count_.assign(adjacency_.size(), 0);
}

bool IncrementalCpm::adjacent(NodeId u, NodeId v) const {
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  const bool u_smaller = adjacency_[u].size() <= adjacency_[v].size();
  const auto& list = u_smaller ? adjacency_[u] : adjacency_[v];
  const NodeId target = u_smaller ? v : u;
  return std::binary_search(list.begin(), list.end(), target);
}

void IncrementalCpm::validate(const EdgeBatch& batch) const {
  // Removes apply before adds and the two sides must be disjoint, so every
  // condition below can be checked against the pre-batch graph: an edge
  // stays present until its own removal, and an added edge was absent at
  // batch start and stays absent through the removes.
  std::vector<std::pair<NodeId, NodeId>> removes;
  removes.reserve(batch.remove.size());
  for (std::pair<NodeId, NodeId> e : batch.remove) {
    require(e.first != e.second,
            "IncrementalCpm::apply: self-loop in remove " + describe(e));
    e = canon(e);
    require(adjacent(e.first, e.second),
            "IncrementalCpm::apply: remove of absent edge " + describe(e));
    removes.push_back(e);
  }
  std::sort(removes.begin(), removes.end());
  for (std::size_t i = 1; i < removes.size(); ++i) {
    require(removes[i] != removes[i - 1],
            "IncrementalCpm::apply: edge " + describe(removes[i]) +
                " listed twice in remove");
  }
  std::vector<std::pair<NodeId, NodeId>> adds;
  adds.reserve(batch.add.size());
  for (std::pair<NodeId, NodeId> e : batch.add) {
    require(e.first != e.second,
            "IncrementalCpm::apply: self-loop in add " + describe(e));
    e = canon(e);
    require(!adjacent(e.first, e.second),
            "IncrementalCpm::apply: add of already-present edge " +
                describe(e));
    adds.push_back(e);
  }
  std::sort(adds.begin(), adds.end());
  for (std::size_t i = 1; i < adds.size(); ++i) {
    require(adds[i] != adds[i - 1],
            "IncrementalCpm::apply: edge " + describe(adds[i]) +
                " listed twice in add");
  }
  std::vector<std::pair<NodeId, NodeId>> both;
  std::set_intersection(adds.begin(), adds.end(), removes.begin(),
                        removes.end(), std::back_inserter(both));
  if (!both.empty()) {
    throw Error("IncrementalCpm::apply: edge " + describe(both[0]) +
                " appears in both add and remove");
  }
}

void IncrementalCpm::apply(const EdgeBatch& batch) {
  require(!materialize_only_,
          "IncrementalCpm::apply: state was bootstrapped from a filtered "
          "clique table (min_clique_size > 2); construct from the graph to "
          "apply updates");
  validate(batch);
  KCC_SPAN("incr_cpm/apply");
  const std::uint64_t created_before = cliques_created_;
  const std::uint64_t retired_before = cliques_retired_;
  for (const std::pair<NodeId, NodeId>& e : batch.remove) {
    const auto [u, v] = canon(e);
    remove_edge(u, v);
  }
  for (const std::pair<NodeId, NodeId>& e : batch.add) {
    const auto [u, v] = canon(e);
    add_edge(u, v);
  }
  compact_if_needed();
  ++batches_applied_;
  obs::metrics().counter("cpm_incr_batches_total").inc(1);
  obs::metrics()
      .counter("cpm_incr_edges_removed_total")
      .inc(batch.remove.size());
  obs::metrics().counter("cpm_incr_edges_added_total").inc(batch.add.size());
  obs::metrics()
      .counter("cpm_incr_cliques_created_total")
      .inc(cliques_created_ - created_before);
  obs::metrics()
      .counter("cpm_incr_cliques_retired_total")
      .inc(cliques_retired_ - retired_before);
}

void IncrementalCpm::add_edge(NodeId u, NodeId v) {
  const NodeId hi = std::max(u, v);
  if (hi >= adjacency_.size()) {
    adjacency_.resize(hi + 1);
    cliques_of_node_.resize(hi + 1);
    node_stamp_.resize(hi + 1, 0);
    node_count_.resize(hi + 1, 0);
  }
  auto insert_sorted = [](std::vector<NodeId>& list, NodeId x) {
    list.insert(std::lower_bound(list.begin(), list.end(), x), x);
  };
  insert_sorted(adjacency_[u], v);
  insert_sorted(adjacency_[v], u);
  ++num_edges_;

  // Old cliques absorbed by the new edge: Q ∋ side with every other member
  // already adjacent to `other` — Q ∪ {other} is now a clique, so Q lost
  // maximality. (No old clique contains both endpoints.)
  std::vector<CliqueId> dying;
  auto collect_absorbed = [&](NodeId side, NodeId other) {
    // Stamp N(other) once so the per-member adjacency test is O(1).
    ++node_epoch_;
    for (NodeId w : adjacency_[other]) node_stamp_[w] = node_epoch_;
    auto& list = cliques_of_node_[side];
    std::size_t live = 0;
    for (const CliqueRef e : list) {
      if (!valid(e)) continue;  // stale: compacted away in place
      list[live++] = e;
      const CliqueId c = e.clique;
      bool absorbed = true;
      for (NodeId w : cliques_[c]) {
        if (w != side && node_stamp_[w] != node_epoch_) {
          absorbed = false;
          break;
        }
      }
      if (absorbed) dying.push_back(c);
    }
    list.resize(live);
  };
  collect_absorbed(u, v);
  collect_absorbed(v, u);
  for (CliqueId c : dying) retire_clique(c);

  // New maximal cliques all contain both endpoints: {u, v} ∪ S for each
  // maximal clique S of the common-neighborhood subgraph (any witness of
  // {u, v} ∪ S is a common neighbor adjacent to all of S, contradicting S's
  // maximality there).
  std::vector<NodeId> common;
  std::set_intersection(adjacency_[u].begin(), adjacency_[u].end(),
                        adjacency_[v].begin(), adjacency_[v].end(),
                        std::back_inserter(common));
  if (common.empty()) {
    insert_clique(NodeSet{std::min(u, v), std::max(u, v)});
    return;
  }
  std::vector<std::pair<NodeId, NodeId>> sub_edges;
  for (std::size_t i = 0; i < common.size(); ++i) {
    for (std::size_t j = i + 1; j < common.size(); ++j) {
      if (adjacent(common[i], common[j])) {
        sub_edges.push_back({static_cast<NodeId>(i), static_cast<NodeId>(j)});
      }
    }
  }
  const Graph sub = Graph::from_edges(common.size(), sub_edges);
  clique::Options copt;
  copt.min_size = 1;  // an isolated common neighbor extends {u, v} alone
  copt.backend = options_.clique_backend;
  copt.bitset_max_universe = options_.bitset_max_universe;
  for (const NodeSet& local : clique::Enumerator(sub, copt).collect()) {
    NodeSet k;
    k.reserve(local.size() + 2);
    for (NodeId i : local) k.push_back(common[i]);
    k.push_back(u);
    k.push_back(v);
    std::sort(k.begin(), k.end());
    insert_clique(std::move(k));
  }
}

void IncrementalCpm::remove_edge(NodeId u, NodeId v) {
  auto erase_sorted = [](std::vector<NodeId>& list, NodeId x) {
    list.erase(std::lower_bound(list.begin(), list.end(), x));
  };
  erase_sorted(adjacency_[u], v);
  erase_sorted(adjacency_[v], u);
  --num_edges_;

  // Exactly the cliques containing both endpoints die; their fragments
  // Q \ {u}, Q \ {v} are the only candidate new maximal cliques, pairwise
  // incomparable and distinct from every surviving clique.
  std::vector<CliqueId> dying;
  {
    auto& list = cliques_of_node_[u];
    std::size_t live = 0;
    for (const CliqueRef e : list) {
      if (!valid(e)) continue;
      list[live++] = e;
      const CliqueId c = e.clique;
      if (std::binary_search(cliques_[c].begin(), cliques_[c].end(), v)) {
        dying.push_back(c);
      }
    }
    list.resize(live);
  }
  std::vector<NodeSet> fragments;
  for (CliqueId c : dying) {
    if (cliques_[c].size() < 3) continue;  // fragments would be singletons
    for (NodeId drop : {u, v}) {
      NodeSet f;
      f.reserve(cliques_[c].size() - 1);
      for (NodeId w : cliques_[c]) {
        if (w != drop) f.push_back(w);
      }
      fragments.push_back(std::move(f));
    }
  }
  for (CliqueId c : dying) retire_clique(c);
  for (NodeSet& f : fragments) {
    if (is_maximal(f)) insert_clique(std::move(f));
  }
}

bool IncrementalCpm::is_maximal(const NodeSet& nodes) {
  // Count, for every node adjacent to some member, how many members it is
  // adjacent to: a witness reaches nodes.size(). A member never does —
  // a node is not adjacent to itself — so no membership test is needed.
  // Σ deg(member) linear scans, no binary searches.
  const auto target = static_cast<std::uint32_t>(nodes.size());
  ++node_epoch_;
  for (NodeId x : nodes) {
    for (NodeId w : adjacency_[x]) {
      if (node_stamp_[w] != node_epoch_) {
        node_stamp_[w] = node_epoch_;
        node_count_[w] = 0;
      }
      if (++node_count_[w] == target) return false;
    }
  }
  return true;
}

CliqueId IncrementalCpm::insert_clique(NodeSet nodes) {
  CliqueId c;
  if (!free_slots_.empty()) {
    c = free_slots_.back();
    free_slots_.pop_back();
  } else {
    c = static_cast<CliqueId>(cliques_.size());
    cliques_.emplace_back();
    alive_.push_back(0);
    gen_.push_back(0);
    overlaps_.emplace_back();
  }
  grow_scratch();

  // Count shared nodes against every alive clique BEFORE indexing the new
  // one, so it never pairs with itself.
  ++epoch_;
  std::vector<CliqueId> touched;
  for (NodeId x : nodes) {
    auto& list = cliques_of_node_[x];
    std::size_t live = 0;
    for (const CliqueRef e : list) {
      if (!valid(e)) continue;  // stale: compacted away in place
      list[live++] = e;
      const CliqueId d = e.clique;
      if (stamp_[d] != epoch_) {
        stamp_[d] = epoch_;
        count_[d] = 0;
        touched.push_back(d);
      }
      ++count_[d];
    }
    list.resize(live);
  }
  for (CliqueId d : touched) {
    if (count_[d] >= 2) {
      overlaps_[c].push_back({d, gen_[d], count_[d]});
      overlaps_[d].push_back({c, gen_[c], count_[d]});
    }
  }
  for (NodeId x : nodes) cliques_of_node_[x].push_back({c, gen_[c]});
  cliques_[c] = std::move(nodes);
  alive_[c] = 1;
  ++alive_count_;
  ++cliques_created_;
  return c;
}

void IncrementalCpm::retire_clique(CliqueId c) {
  // Lazy retire: the back-references this clique holds in its neighbors'
  // overlap lists and in the node index stay physically in place — the
  // generation bump invalidates them all at once. Scans skip (and
  // compact) stale entries; compact_if_needed() bounds the stale
  // fraction. Eager removal here would cost O(sum of neighbor lists) per
  // retire, which is quadratic when a dense-core edge removal retires
  // thousands of mutually-overlapping cliques.
  stale_entries_ += overlaps_[c].size() + cliques_[c].size();
  overlaps_[c].clear();
  cliques_[c].clear();
  ++gen_[c];
  alive_[c] = 0;
  free_slots_.push_back(c);
  --alive_count_;
  ++cliques_retired_;
}

void IncrementalCpm::compact_if_needed() {
  if (stale_entries_ == 0) return;
  std::size_t total = 0;
  for (const auto& list : overlaps_) total += list.size();
  for (const auto& list : cliques_of_node_) total += list.size();
  if (stale_entries_ * 2 < total) return;
  for (auto& list : overlaps_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const OverlapEntry& e) { return !valid(e); }),
               list.end());
  }
  for (auto& list : cliques_of_node_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](CliqueRef e) { return !valid(e); }),
               list.end());
  }
  stale_entries_ = 0;
}

void IncrementalCpm::grow_scratch() {
  if (stamp_.size() < cliques_.size()) {
    stamp_.resize(cliques_.size(), 0);
    count_.resize(cliques_.size(), 0);
  }
}

Graph IncrementalCpm::graph() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges_);
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return Graph::from_edges(adjacency_.size(), edges);
}

Result IncrementalCpm::result() const {
  KCC_SPAN("incr_cpm/materialize");
  Timer total;
  const Graph g = graph();

  // Alive slots above the clique floor, in lexicographic order — the one
  // table order churn can reproduce deterministically (see
  // EngineCaps::canonical_clique_order).
  std::vector<CliqueId> kept;
  kept.reserve(alive_count_);
  for (CliqueId c = 0; c < cliques_.size(); ++c) {
    if (alive_[c] != 0 && cliques_[c].size() >= options_.min_clique_size) {
      kept.push_back(c);
    }
  }
  std::sort(kept.begin(), kept.end(), [&](CliqueId a, CliqueId b) {
    return cliques_[a] < cliques_[b];
  });
  std::vector<CliqueId> new_id(cliques_.size(), 0);
  std::vector<char> is_kept(cliques_.size(), 0);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    new_id[kept[i]] = static_cast<CliqueId>(i);
    is_kept[kept[i]] = 1;
  }
  std::vector<NodeSet> table;
  table.reserve(kept.size());
  for (CliqueId c : kept) table.push_back(cliques_[c]);

  std::vector<CliqueOverlap> pairs;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (const OverlapEntry& e : overlaps_[kept[i]]) {
      if (!valid(e) || is_kept[e.clique] == 0) continue;
      const CliqueId j = new_id[e.clique];
      if (static_cast<CliqueId>(i) < j) {
        pairs.push_back({static_cast<CliqueId>(i), j, e.overlap});
      }
    }
  }

  SweepCpmResult sweep =
      run_sweep_cpm_prejoined(g, std::move(table), std::move(pairs),
                              options_.cpm_options());
  Result result;
  result.cpm = std::move(sweep.cpm);
  result.timings.percolate_seconds = total.lap();
  if (options_.build_tree && result.cpm.max_k >= result.cpm.min_k) {
    result.tree = std::move(sweep.tree);
    result.has_tree = true;
  }
  result.timings.total_seconds = total.seconds();
  result.engine_name = "incremental";
  result.exactness = Exactness::kExact;
  return result;
}

Result run_incremental_full(const Options& options, const Graph& g) {
  KCC_SPAN("cpm_engine/incremental");
  Timer total;
  Result result;
  {
    obs::StageScope stage("percolate");
    // Hold back a suffix of edges and apply() them as one batch, so every
    // full run — including each differential-matrix variant — exercises
    // the churn path, not just the bootstrap.
    const std::vector<std::pair<NodeId, NodeId>> edges = g.edges();
    const std::size_t holdback = std::min<std::size_t>(8, edges.size());
    const std::vector<std::pair<NodeId, NodeId>> base(
        edges.begin(), edges.end() - static_cast<std::ptrdiff_t>(holdback));
    IncrementalCpm state(Graph::from_edges(g.num_nodes(), base), options);
    EdgeBatch batch;
    batch.add.assign(edges.end() - static_cast<std::ptrdiff_t>(holdback),
                     edges.end());
    if (!batch.empty()) state.apply(batch);
    result = state.result();
  }
  result.timings.percolate_seconds = total.lap();
  result.timings.total_seconds = total.seconds();
  return result;
}

Result run_incremental_on_cliques(const Options& options, const Graph& g,
                                  std::vector<NodeSet> cliques) {
  KCC_SPAN("cpm_engine/incremental");
  Timer total;
  Result result;
  {
    obs::StageScope stage("percolate");
    const IncrementalCpm state(IncrementalCpm::FromCliquesTag{}, g,
                               std::move(cliques), options);
    result = state.result();
  }
  result.timings.percolate_seconds = total.lap();
  result.timings.total_seconds = total.seconds();
  return result;
}

}  // namespace kcc::cpm
