#include "cpm/weighted_cpm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/set_ops.h"
#include "common/union_find.h"

namespace kcc {

double clique_intensity(const Graph& g, const EdgeWeights& weights,
                        const NodeSet& nodes) {
  require(nodes.size() >= 2, "clique_intensity: need at least two nodes");
  double log_sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      require(g.has_edge(nodes[i], nodes[j]),
              "clique_intensity: nodes do not form a clique");
      log_sum += std::log(weights.weight(nodes[i], nodes[j]));
      ++pairs;
    }
  }
  return std::exp(log_sum / static_cast<double>(pairs));
}

namespace {

// Ordered k-clique enumeration with an intensity accumulator: extend the
// current clique only with larger-id common neighbours, carrying the log
// weight sum so intensity falls out without re-scanning pairs.
struct Enumerator {
  const Graph& g;
  const EdgeWeights& weights;
  std::size_t k;
  double log_threshold_total;  // log(I) * C(k,2); -inf disables
  std::size_t max_cliques;
  std::vector<NodeSet> out;

  void run() {
    NodeSet current;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      current.assign(1, v);
      NodeSet candidates;
      for (NodeId w : g.neighbors(v)) {
        if (w > v) candidates.push_back(w);
      }
      extend(current, candidates, 0.0);
    }
  }

  void extend(NodeSet& current, const NodeSet& candidates, double log_sum) {
    if (current.size() == k) {
      // Total pairs C(k,2); keep when log_sum >= log_threshold_total.
      if (log_sum >= log_threshold_total) {
        require(max_cliques == 0 || out.size() < max_cliques,
                "weighted_k_clique_communities: clique budget exceeded");
        out.push_back(current);
      }
      return;
    }
    if (current.size() + candidates.size() < k) return;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const NodeId v = candidates[i];
      // Weights of v against the current clique.
      double added = 0.0;
      for (NodeId m : current) added += std::log(weights.weight(m, v));
      NodeSet next;
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        if (g.has_edge(v, candidates[j])) next.push_back(candidates[j]);
      }
      current.push_back(v);
      extend(current, next, log_sum + added);
      current.pop_back();
    }
  }
};

}  // namespace

std::vector<NodeSet> weighted_k_clique_communities(
    const Graph& g, const EdgeWeights& weights,
    const WeightedCpmOptions& options) {
  require(options.k >= 2, "weighted_k_clique_communities: k must be >= 2");
  const double pairs =
      double(options.k) * double(options.k - 1) / 2.0;
  Enumerator enumerator{
      g, weights, options.k,
      options.intensity_threshold > 0.0
          ? std::log(options.intensity_threshold) * pairs
          : -std::numeric_limits<double>::infinity(),
      options.max_cliques,
      {}};
  enumerator.run();
  const std::vector<NodeSet>& cliques = enumerator.out;

  // Percolate: cliques sharing k-1 nodes. Inverted index keeps this from
  // being all-pairs.
  UnionFind uf(cliques.size());
  std::vector<std::vector<std::uint32_t>> by_node(g.num_nodes());
  for (std::uint32_t c = 0; c < cliques.size(); ++c) {
    for (NodeId v : cliques[c]) by_node[v].push_back(c);
  }
  std::vector<std::uint32_t> hits(cliques.size(), 0);
  std::vector<std::uint32_t> touched;
  for (std::uint32_t c = 0; c < cliques.size(); ++c) {
    touched.clear();
    for (NodeId v : cliques[c]) {
      for (std::uint32_t other : by_node[v]) {
        if (other >= c) break;
        if (hits[other] == 0) touched.push_back(other);
        ++hits[other];
      }
    }
    for (std::uint32_t other : touched) {
      if (hits[other] >= options.k - 1) uf.unite(c, other);
      hits[other] = 0;
    }
  }

  std::vector<NodeSet> communities;
  for (const auto& group : uf.groups()) {
    NodeSet nodes;
    for (std::uint32_t c : group) {
      nodes.insert(nodes.end(), cliques[c].begin(), cliques[c].end());
    }
    sort_unique(nodes);
    communities.push_back(std::move(nodes));
  }
  std::sort(communities.begin(), communities.end());
  return communities;
}

std::vector<IntensitySweepPoint> intensity_sweep(
    const Graph& g, const EdgeWeights& weights, std::size_t k,
    const std::vector<double>& thresholds) {
  // Enumerate once at the lowest threshold, then filter by the per-clique
  // intensity for each sweep point (the enumeration is the expensive part).
  require(!thresholds.empty(), "intensity_sweep: need at least one threshold");
  const double lowest = *std::min_element(thresholds.begin(), thresholds.end());
  WeightedCpmOptions base;
  base.k = k;
  base.intensity_threshold = lowest;
  Enumerator enumerator{
      g, weights, k,
      lowest > 0.0 ? std::log(lowest) * double(k) * double(k - 1) / 2.0
                   : -std::numeric_limits<double>::infinity(),
      base.max_cliques,
      {}};
  enumerator.run();
  std::vector<double> intensities;
  intensities.reserve(enumerator.out.size());
  for (const NodeSet& clique : enumerator.out) {
    intensities.push_back(clique_intensity(g, weights, clique));
  }

  std::vector<IntensitySweepPoint> out;
  for (double threshold : thresholds) {
    IntensitySweepPoint point;
    point.threshold = threshold;
    // Percolate over the surviving subset.
    std::vector<NodeSet> cliques;
    for (std::size_t i = 0; i < enumerator.out.size(); ++i) {
      if (intensities[i] >= threshold || threshold <= 0.0) {
        cliques.push_back(enumerator.out[i]);
      }
    }
    point.surviving_cliques = cliques.size();

    UnionFind uf(cliques.size());
    std::vector<std::vector<std::uint32_t>> by_node(g.num_nodes());
    for (std::uint32_t c = 0; c < cliques.size(); ++c) {
      for (NodeId v : cliques[c]) by_node[v].push_back(c);
    }
    std::vector<std::uint32_t> hits(cliques.size(), 0);
    std::vector<std::uint32_t> touched;
    for (std::uint32_t c = 0; c < cliques.size(); ++c) {
      touched.clear();
      for (NodeId v : cliques[c]) {
        for (std::uint32_t other : by_node[v]) {
          if (other >= c) break;
          if (hits[other] == 0) touched.push_back(other);
          ++hits[other];
        }
      }
      for (std::uint32_t other : touched) {
        if (hits[other] >= k - 1) uf.unite(c, other);
        hits[other] = 0;
      }
    }
    point.community_count = uf.set_count();
    for (auto& group : uf.groups()) {
      NodeSet nodes;
      for (std::uint32_t c : group) {
        nodes.insert(nodes.end(), cliques[c].begin(), cliques[c].end());
      }
      sort_unique(nodes);
      point.largest_community = std::max(point.largest_community, nodes.size());
    }
    out.push_back(point);
  }
  return out;
}

}  // namespace kcc
