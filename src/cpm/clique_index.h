// Clique overlap index: the pairwise |A ∩ B| relation over maximal cliques.
//
// The Lightweight Parallel CPM observation (Gregori et al. 2011, [11]) is
// that percolation at every k reads the *same* overlap relation with a
// different threshold: cliques A, B (|A|,|B| >= k) belong to one k-clique
// community chain when |A ∩ B| >= k-1. We therefore compute each
// overlapping pair once — in parallel over cliques, with an inverted
// node→clique index restricting candidates to cliques that share a node —
// and every per-k percolation becomes a linear scan of the pair list.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"

namespace kcc {

struct CliqueOverlap {
  CliqueId a = 0;             // a < b
  CliqueId b = 0;
  std::uint32_t overlap = 0;  // |A ∩ B| >= min_overlap
};

/// Inverted index: for each node, the ids of cliques containing it.
std::vector<std::vector<CliqueId>> build_node_clique_index(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes);

/// Computes all clique pairs with |A ∩ B| >= min_overlap, in parallel over
/// `pool`. Pairs are returned sorted by (a, b); the result is deterministic.
std::vector<CliqueOverlap> compute_clique_overlaps(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes,
    std::size_t min_overlap, ThreadPool& pool);

/// Same pair set without the final (a, b) sort — the pair ORDER depends on
/// the shard count (i.e. on `pool.thread_count()`), only the set is
/// deterministic. For consumers that impose their own order anyway (the
/// sweep engine counting-sorts by overlap) this skips the dominant
/// O(P log P) step of the join.
std::vector<CliqueOverlap> compute_clique_overlaps_unsorted(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes,
    std::size_t min_overlap, ThreadPool& pool);

/// Sequential variant (used by tests and the single-thread ablation bench).
std::vector<CliqueOverlap> compute_clique_overlaps_sequential(
    const std::vector<NodeSet>& cliques, std::size_t num_nodes,
    std::size_t min_overlap);

}  // namespace kcc
