#include "cpm/sweep_cpm.h"

#include <algorithm>

#include "clique/enumerator.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/union_find.h"
#include "cpm/clique_index.h"
#include "cpm/percolate_detail.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace kcc {
namespace {

// Overlap pairs sorted by overlap size descending, with the contiguous
// range of each overlap value exposed so the sweep can consume one bucket
// per level.
struct SortedOverlaps {
  std::vector<CliqueOverlap> pairs;  // overlap descending, stable within
  std::vector<std::size_t> begin;    // begin[o] = first index with overlap o
  std::vector<std::size_t> count;    // count[o] = pairs with overlap o
};

// Parallel sharded counting sort: each shard histograms its contiguous
// chunk, offsets are combined per (overlap, shard), and shards scatter
// concurrently. Shard s writes after shards < s within every bucket, so the
// result is stable and fully deterministic regardless of thread count.
SortedOverlaps sort_overlaps_desc(std::vector<CliqueOverlap> overlaps,
                                  std::size_t max_overlap, ThreadPool& pool) {
  SortedOverlaps out;
  out.begin.assign(max_overlap + 2, 0);
  out.count.assign(max_overlap + 2, 0);
  const std::size_t n = overlaps.size();
  if (n == 0) return out;

  const std::size_t num_shards = std::clamp<std::size_t>(
      pool.thread_count() * 4, 1, std::max<std::size_t>(n / 1024, 1));
  const std::size_t chunk = (n + num_shards - 1) / num_shards;
  auto shard_range = [&](std::size_t s) {
    return std::pair<std::size_t, std::size_t>(
        s * chunk, std::min(n, (s + 1) * chunk));
  };

  std::vector<std::vector<std::size_t>> histogram(
      num_shards, std::vector<std::size_t>(max_overlap + 2, 0));
  parallel_for(pool, num_shards, [&](std::size_t s) {
    auto [lo, hi] = shard_range(s);
    for (std::size_t i = lo; i < hi; ++i) {
      require(overlaps[i].overlap <= max_overlap,
              "sort_overlaps_desc: overlap exceeds the clique-size bound");
      ++histogram[s][overlaps[i].overlap];
    }
  });

  // Bucket layout (descending overlap), then per-shard write cursors.
  std::size_t offset = 0;
  for (std::size_t o = max_overlap + 1; o-- > 0;) {
    for (std::size_t s = 0; s < num_shards; ++s) out.count[o] += histogram[s][o];
    out.begin[o] = offset;
    offset += out.count[o];
  }
  std::vector<std::vector<std::size_t>> cursor(
      num_shards, std::vector<std::size_t>(max_overlap + 2, 0));
  for (std::size_t o = 0; o <= max_overlap; ++o) {
    std::size_t at = out.begin[o];
    for (std::size_t s = 0; s < num_shards; ++s) {
      cursor[s][o] = at;
      at += histogram[s][o];
    }
  }

  out.pairs.resize(n);
  parallel_for(pool, num_shards, [&](std::size_t s) {
    auto [lo, hi] = shard_range(s);
    for (std::size_t i = lo; i < hi; ++i) {
      out.pairs[cursor[s][overlaps[i].overlap]++] = overlaps[i];
    }
  });
  return out;
}

// Shared tail of the public entry points: everything after the overlap
// join. `overlaps` must hold every unordered clique pair sharing >= 2 nodes
// whenever the effective max k reaches 3 (it is ignored below that).
SweepCpmResult sweep_from_overlaps(const Graph& g,
                                   std::vector<NodeSet> cliques,
                                   std::vector<CliqueOverlap> overlaps,
                                   const CpmOptions& options, ThreadPool& pool,
                                   const char* caller) {
  cpm_detail::validate_cpm_input(options.min_k, cliques, caller);
  SweepCpmResult out;
  CpmResult& result = out.cpm;
  result.cliques = std::move(cliques);
  result.min_k = options.min_k;
  result.max_k =
      cpm_detail::resolve_max_k(options.min_k, options.max_k, result.cliques);
  if (result.max_k < result.min_k) return out;

  const std::size_t num_cliques = result.cliques.size();
  std::size_t max_size = 0;
  for (const auto& c : result.cliques) max_size = std::max(max_size, c.size());

  result.by_k.resize(result.max_k - result.min_k + 1);
  cpm_detail::DescendingLevelEmitter emitter(g, result);

  // ---- the k >= 3 descending sweep ----
  if (result.max_k >= 3) {
    SortedOverlaps sorted;
    {
      KCC_SPAN("sweep_cpm/sort_overlaps");
      // Two distinct maximal cliques share at most min(|A|, |B|) - 1 nodes.
      sorted = sort_overlaps_desc(std::move(overlaps), max_size - 1, pool);
    }
    KCC_LOG(kDebug) << "run_sweep_cpm: " << num_cliques << " cliques, "
                    << sorted.pairs.size() << " overlap pairs, k in ["
                    << result.min_k << ", " << result.max_k << "]";

    std::vector<std::vector<CliqueId>> cliques_of_size(max_size + 1);
    for (CliqueId c = 0; c < num_cliques; ++c) {
      cliques_of_size[result.cliques[c].size()].push_back(c);
    }

    KCC_SPAN("sweep_cpm/sweep");
    UnionFind uf(num_cliques);
    std::vector<CliqueId> live;  // cliques of size >= current level
    std::uint64_t join_ops = 0;
    cpm_detail::SweepSnapshotter snapshotter(num_cliques);

    const std::size_t lowest = std::max<std::size_t>(3, result.min_k);
    for (std::size_t k = max_size; k >= lowest; --k) {
      for (CliqueId c : cliques_of_size[k]) live.push_back(c);  // activate
      // Pairs with overlap k-1 become k-clique-adjacent at this level; both
      // endpoints have size >= overlap + 1 = k, so they are already live.
      const std::size_t first = sorted.begin[k - 1];
      for (std::size_t i = first; i < first + sorted.count[k - 1]; ++i) {
        uf.unite(sorted.pairs[i].a, sorted.pairs[i].b);
        ++join_ops;
      }
      if (k > result.max_k) continue;  // above the requested range

      // Snapshot: components over the live cliques are the communities at k.
      const obs::ScopedSpan span("sweep_cpm/emit_k=" + std::to_string(k));
      emitter.emit(snapshotter.snapshot(k, uf, live, result.cliques));
    }
    cpm_detail::note_join_ops(join_ops);
  }

  // ---- the k = 2 level: connected components ----
  if (result.min_k == 2) {
    KCC_SPAN("sweep_cpm/percolate_k2");
    emitter.emit_k2();
  }

  {
    KCC_SPAN("sweep_cpm/tree");
    out.tree = emitter.finish();
  }
  return out;
}

}  // namespace

SweepCpmResult run_sweep_cpm_on_cliques(const Graph& g,
                                        std::vector<NodeSet> cliques,
                                        const CpmOptions& options) {
  cpm_detail::validate_cpm_input(options.min_k, cliques,
                                 "run_sweep_cpm_on_cliques");
  const std::size_t max_k =
      cpm_detail::resolve_max_k(options.min_k, options.max_k, cliques);
  ThreadPool pool(options.threads);
  std::vector<CliqueOverlap> overlaps;
  if (max_k >= options.min_k && max_k >= 3) {
    KCC_SPAN("sweep_cpm/clique_overlaps");
    // The counting sort in the sweep imposes the only order it needs, so
    // skip the join's (a, b) sort — the dominant O(P log P) step.
    overlaps =
        compute_clique_overlaps_unsorted(cliques, g.num_nodes(), 2, pool);
  }
  return sweep_from_overlaps(g, std::move(cliques), std::move(overlaps),
                             options, pool, "run_sweep_cpm_on_cliques");
}

SweepCpmResult run_sweep_cpm_prejoined(const Graph& g,
                                       std::vector<NodeSet> cliques,
                                       std::vector<CliqueOverlap> overlaps,
                                       const CpmOptions& options) {
  ThreadPool pool(options.threads);
  return sweep_from_overlaps(g, std::move(cliques), std::move(overlaps),
                             options, pool, "run_sweep_cpm_prejoined");
}

SweepCpmResult run_sweep_cpm(const Graph& g, const CpmOptions& options) {
  require(options.min_k >= 2, "run_sweep_cpm: min_k must be >= 2");
  ThreadPool pool(options.threads);
  clique::Options copt;
  copt.min_size = 2;
  std::vector<NodeSet> cliques = clique::Enumerator(g, copt).collect(pool);
  return run_sweep_cpm_on_cliques(g, std::move(cliques), options);
}

}  // namespace kcc
