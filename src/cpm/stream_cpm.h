// Streaming single-sweep engine — bounded-memory clique percolation.
//
// Both existing engines materialize the *entire* transient state before the
// first community exists: the per-k engine (cpm.h) and the sweep engine
// (sweep_cpm.h) hold the full clique table AND the full overlap pair array
// (12 bytes/pair, plus a second sorted copy inside the counting sort) at
// their peak. On AS-scale graphs the pair array dwarfs everything else.
//
// This engine pipelines instead:
//
//  1. Maximal cliques arrive through clique/clique_stream.h — while the
//     calling thread joins window w, the pool enumerates window w+1, so at
//     most two windows of enumeration slots are ever resident.
//  2. Each arriving clique is joined against a compact inverted node ->
//     clique index of the cliques seen so far (same stamp-array counting
//     join as clique_index.cpp, one clique at a time). Every overlap pair
//     is born directly into the bucket of its overlap value as a packed
//     8-byte {a, b} record: the buckets ARE the descending counting sort,
//     so the sweep needs no separate sort pass and no second copy. Pairs
//     with overlap below max(3, min_k) - 1 — which no sweep level would
//     ever consume — are dropped at birth.
//  3. When a --memory-budget is set and the resident pair bytes exceed it,
//     whole buckets spill to temp files (largest first) and are streamed
//     back one fixed-size chunk at a time while the sweep drains their
//     level. The budget caps the pair store — the dominant transient — not
//     the output itself (the clique table and communities are the result
//     and must exist in full).
//  4. The sweep is the same descending-k union-find as sweep_cpm.cpp and
//     emits through the same cpm_detail::DescendingLevelEmitter, so the
//     output (communities, ids, clique maps, tree) is byte-identical to
//     the sweep and per-k engines by construction.
//
// docs/ALGORITHMS.md compares the three engines with measured numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clique/enumerator.h"
#include "cpm/community_tree.h"
#include "cpm/cpm.h"
#include "graph/graph.h"

namespace kcc {

struct StreamCpmOptions {
  /// Smallest community order to extract (>= 2).
  std::size_t min_k = 2;

  /// Largest community order; 0 means "up to the maximum clique size".
  std::size_t max_k = 0;

  /// Maximal cliques smaller than this are dropped at the source (>= 2).
  std::size_t min_clique_size = 2;

  /// Worker threads for enumeration; 0 means hardware concurrency.
  std::size_t threads = 0;

  /// Cap on resident overlap-pair bytes; 0 means unlimited (never spill).
  /// Budgets in (0, stream_min_memory_budget()) are rejected loudly.
  std::uint64_t memory_budget = 0;

  /// Directory for spill files; empty means the system temp directory.
  /// A per-run subdirectory is created on first spill and removed when the
  /// run finishes.
  std::string spill_dir;

  /// Degeneracy positions per enumeration window; 0 picks a default.
  std::size_t window_positions = 0;

  /// Maximal-clique kernel for the enumeration stage; output is identical
  /// across backends (see clique/enumerator.h).
  clique::Backend clique_backend = clique::Backend::kAuto;

  /// Bitset backend only: hub-fallback universe cap (0 = library default).
  std::size_t bitset_max_universe = 0;
};

/// Instrumentation snapshot of one streaming run (the same values are
/// published as cpm_stream_* metrics; see docs/OBSERVABILITY.md).
struct StreamCpmStats {
  std::uint64_t windows = 0;             ///< enumeration windows processed
  std::uint64_t pairs_total = 0;         ///< overlap pairs stored (post-prune)
  std::uint64_t spilled_pairs = 0;       ///< pairs written to spill files
  std::uint64_t spill_bytes = 0;         ///< bytes written to spill files
  std::uint64_t resident_pair_bytes_peak = 0;  ///< peak resident pair bytes
};

struct StreamCpmResult {
  CpmResult cpm;
  CommunityTree tree;
  StreamCpmStats stats;
};

/// Smallest accepted non-zero memory budget: the spill read-back chunk
/// size. A budget below one chunk could not even stage a reload, so
/// run_stream_cpm rejects it with kcc::Error instead of thrashing.
std::uint64_t stream_min_memory_budget();

/// Parses a byte count with an optional K/M/G (KiB/MiB/GiB) suffix:
/// "65536", "64K", "200M", "1G". Case-insensitive. Throws kcc::Error on
/// anything else. "0" means unlimited.
std::uint64_t parse_memory_budget(const std::string& text);

/// Extracts all k-clique communities and the community tree of `g`,
/// streaming cliques through the bounded join. Output is byte-identical to
/// run_sweep_cpm / run_cpm over the same graph.
StreamCpmResult run_stream_cpm(const Graph& g,
                               const StreamCpmOptions& options = {});

/// Same over a pre-enumerated maximal-clique set (each clique sorted, size
/// >= 2): cliques are fed through the identical incremental join — no
/// enumeration windows, but the budget/spill machinery still applies.
StreamCpmResult run_stream_cpm_on_cliques(const Graph& g,
                                          std::vector<NodeSet> cliques,
                                          const StreamCpmOptions& options = {});

}  // namespace kcc
