// kcc_bench — the perf observatory driver.
//
// Runs an engine × clique-backend matrix over a synthetic ecosystem with N
// repetitions each (every repetition in a forked child so peak-RSS deltas
// and hw-counter windows are clean), reports median + MAD noise bands per
// metric, writes a versioned run-report JSON, optionally appends one line
// to a bench/trajectory/ history file, and — with --compare — gates the
// run against a baseline report, exiting nonzero on statistically
// significant regressions.
//
//   kcc_bench [--scale=test|bench|paper] [--seed=N] [--reps=5] [--threads=0]
//             [--engines=sweep,stream,per_k,almost_exact,reference]
//             [--backends=sparse,bitset] [--no-budgeted]
//             [--out=REPORT.json] [--trajectory=FILE.jsonl]
//             [--compare=BASELINE.json] [--in=REPORT.json]
//             [--rel-tol=0.10] [--mad-k=5.0]
//
// The regression gate: for each config label present in both reports and
// each gated metric (wall_ms, peak_rss_bytes), the new median regresses iff
//   new_median - base_median > max(rel_tol * base_median,
//                                  mad_k * max(base_mad, new_mad)).
// The MAD term absorbs machine noise (a metric that genuinely jitters gets
// a proportionally wider band); the relative term is the floor for very
// stable metrics. --in=REPORT.json skips the fresh run and compares two
// files directly (the ctest self-tests use this; see docs/TESTING.md for
// how to read a failure).
//
// The default engine list and each config's capabilities (exponential ->
// tiny fixed graph, approximate -> exempt from the cross-config digest
// gate) come from the cpm engine registry, so a newly registered backend
// joins the matrix without touching this driver.
//
// The reference engine is exponential, so its configs run on a fixed tiny
// random graph (not the --scale ecosystem): its rows track the trend of
// the literal-definition engine, not a same-workload comparison.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/timer.h"
#include "cpm/engine.h"
#include "cpm/stream_cpm.h"
#include "graph/graph.h"
#include "obs/obs.h"
#include "synth/as_topology.h"

namespace {

using namespace kcc;

// ------------------------------------------------------------- matrix setup

struct BenchConfig {
  std::string label;           // "sweep/sparse", "stream-budget/sparse", ...
  std::string engine;          // registry name
  clique::Backend backend;
  std::uint64_t memory_budget = 0;
  bool tiny_graph = false;     // reference: capped graph, not the ecosystem
  bool exact = true;           // approximate engines skip the digest gate
};

struct DriverOptions {
  std::string scale = "bench";
  std::uint64_t seed = 42;
  int reps = 5;
  std::size_t threads = 0;
  std::vector<std::string> engines;  // default: every registered engine
  std::vector<std::string> backends{"sparse", "bitset"};
  bool budgeted = true;
  std::string out = "kcc_bench_report.json";
  std::string trajectory;      // "" = no history append
  std::string compare;         // baseline path; "" = no gate
  std::string in;              // pre-existing report; "" = run fresh
  double rel_tol = 0.10;
  double mad_k = 5.0;
  obs::ObsOptions obs;
};

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

SynthParams scale_params(const std::string& scale) {
  if (scale == "test") return SynthParams::test_scale();
  if (scale == "bench") return SynthParams::bench_scale();
  if (scale == "paper") return SynthParams::paper_scale();
  throw Error("kcc_bench: unknown --scale '" + scale + "' (test|bench|paper)");
}

int usage(std::ostream& out, int rc) {
  out <<
      "usage: kcc_bench [--scale=test|bench|paper] [--seed=N] [--reps=5]\n"
      "                 [--threads=0] [--engines=a,b,...] [--backends=a,b]\n"
      "                 [--no-budgeted] [--out=REPORT.json]\n"
      "                 [--trajectory=FILE.jsonl] [--compare=BASELINE.json]\n"
      "                 [--in=REPORT.json] [--rel-tol=0.10] [--mad-k=5.0]\n"
      "                 [--log-level=L] [--trace-out=F] [--metrics-out=F]\n"
      "                 [--report-out=F] [--help]\n"
      "\n"
      "Runs the engine x clique-backend perf matrix (forked repetitions,\n"
      "median + MAD per metric), writes a versioned run-report JSON, and\n"
      "with --compare gates the run against a baseline report (see\n"
      "docs/TESTING.md#reading-a-compare-failure). --in=REPORT.json skips\n"
      "the fresh run and compares two report files directly.\n";
  return rc;
}

DriverOptions parse_args(int argc, char** argv) {
  const std::vector<std::string> known{
      "scale",   "seed",    "reps",      "threads", "engines",
      "backends", "no-budgeted", "out",  "trajectory", "compare",
      "in",      "rel-tol", "mad-k",     "log-level", "trace-out",
      "metrics-out", "report-out", "help"};
  const CliArgs args(argc, argv, known);
  if (args.get_bool("help", false)) {
    usage(std::cout, 0);
    std::exit(0);
  }
  DriverOptions o;
  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    o.engines.push_back(info.name);
  }
  o.scale = args.get_string("scale", o.scale);
  o.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  o.reps = static_cast<int>(args.get_int("reps", o.reps));
  require(o.reps >= 1, "kcc_bench: --reps must be >= 1");
  o.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  if (args.has("engines")) {
    o.engines = split_csv(args.get_string("engines", ""));
    require(!o.engines.empty(), "kcc_bench: --engines must name at least one");
  }
  if (args.has("backends")) {
    o.backends = split_csv(args.get_string("backends", ""));
    require(!o.backends.empty(),
            "kcc_bench: --backends must name at least one");
  }
  if (args.get_bool("no-budgeted", false)) o.budgeted = false;
  o.out = args.get_string("out", o.out);
  o.trajectory = args.get_string("trajectory", "");
  o.compare = args.get_string("compare", "");
  o.in = args.get_string("in", "");
  o.rel_tol = args.get_double("rel-tol", o.rel_tol);
  o.mad_k = args.get_double("mad-k", o.mad_k);
  o.obs.log_level = args.get_string("log-level", "");
  o.obs.trace_out = args.get_string("trace-out", "");
  o.obs.metrics_out = args.get_string("metrics-out", "");
  o.obs.report_out = args.get_string("report-out", "");
  o.obs.tool = "kcc_bench";
  require(o.in.empty() || !o.compare.empty(),
          "kcc_bench: --in only makes sense together with --compare");
  return o;
}

std::vector<BenchConfig> build_matrix(const DriverOptions& o) {
  std::vector<BenchConfig> matrix;
  for (const std::string& engine_name : o.engines) {
    const cpm::EngineInfo& info = cpm::engine_info(engine_name);
    for (const std::string& backend_name : o.backends) {
      BenchConfig config;
      config.engine = engine_name;
      config.backend = clique::parse_backend(backend_name);
      config.label = engine_name + "/" + backend_name;
      config.tiny_graph = info.caps.exponential;
      config.exact = info.caps.exact;
      matrix.push_back(config);
    }
  }
  if (o.budgeted &&
      std::find(o.engines.begin(), o.engines.end(), "stream") !=
          o.engines.end()) {
    BenchConfig config;
    config.engine = "stream";
    config.backend = clique::Backend::kSparse;
    // Small enough to force spilling at test scale and above.
    config.memory_budget = o.scale == "test" ? stream_min_memory_budget()
                                             : 1024 * 1024;
    config.label = "stream-budget/sparse";
    matrix.push_back(config);
  }
  return matrix;
}

// The reference engine's workload: the differential runner caps it at ~24
// nodes / 80 edges, and the same order of magnitude keeps a full
// until-empty k sweep in milliseconds here.
Graph tiny_reference_graph(std::uint64_t seed) {
  constexpr std::size_t kNodes = 24;
  Rng rng(seed);
  GraphBuilder b(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) {
    for (NodeId j = i + 1; j < kNodes; ++j) {
      if (rng.next_bool(0.35)) b.add_edge(i, j);
    }
  }
  b.ensure_nodes(kNodes);
  return b.build();
}

// ------------------------------------------------------- per-rep execution

// Everything one forked repetition reports back through its pipe.
struct RepSample {
  bool ok = false;
  double wall_ms = 0.0;
  double cliques_ms = 0.0;
  double percolate_ms = 0.0;
  double tree_ms = 0.0;
  std::uint64_t peak_rss_bytes = 0;  // VmHWM growth during the run
  std::uint64_t digest = 0;
  std::uint64_t communities = 0;
  int hw_available = 0;
  obs::HwCounterValues hw;
};

// One engine run in a fresh child: VmHWM is monotonic per process, and the
// hw-counter window must not include sibling repetitions.
RepSample run_rep_in_child(const Graph& g, const BenchConfig& config,
                           std::size_t threads) {
  int fds[2];
  RepSample sample;
  if (pipe(fds) != 0) return sample;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return sample;
  }
  if (pid == 0) {
    close(fds[0]);
    int exit_code = 1;
    std::string text;
    try {
      cpm::Options options;
      options.engine = config.engine;
      options.clique_backend = config.backend;
      options.memory_budget = config.memory_budget;
      options.threads = threads;
      // A fresh set owned by this child: counts inherited from the parent's
      // set do not aggregate into a forked child's live reads, so events
      // must attach to the child task itself (inherit=1 then covers the
      // thread-pool workers the engine spawns below).
      const obs::HwCounterSet counters;
      const std::uint64_t rss_baseline = obs::peak_rss_bytes();
      const obs::HwCounterValues hw_start = counters.read();
      Timer timer;
      cpm::Result result = cpm::Engine(options).run(g);
      const double wall_ms = timer.seconds() * 1e3;
      const obs::HwCounterValues hw = counters.read() - hw_start;
      const std::uint64_t peak_delta = obs::peak_rss_bytes() - rss_baseline;
      // Digest in canonical clique order (outside the timed window) so the
      // cross-config identity gate compares engines that preserve
      // enumeration order and engines that cannot (caps.
      // canonical_clique_order, e.g. incremental) on equal footing.
      cpm::canonicalise_clique_order(result);
      std::ostringstream line;
      line << wall_ms << ' ' << result.timings.cliques_seconds * 1e3 << ' '
           << result.timings.percolate_seconds * 1e3 << ' '
           << result.timings.tree_seconds * 1e3 << ' ' << peak_delta << ' '
           << cpm::canonical_digest(result) << ' '
           << result.cpm.total_communities() << ' '
           << (hw.available ? 1 : 0) << ' ' << hw.cycles << ' '
           << hw.instructions << ' ' << hw.branch_misses << ' '
           << hw.cache_misses << ' ' << hw.task_clock_ns << '\n';
      text = line.str();
      exit_code = 0;
    } catch (const std::exception& e) {
      text = std::string("error ") + e.what() + "\n";
    }
    const ssize_t written = write(fds[1], text.data(), text.size());
    close(fds[1]);
    _exit(exit_code == 0 && written == static_cast<ssize_t>(text.size())
              ? 0
              : 1);
  }
  close(fds[1]);
  std::string text;
  char buf[512];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) text.append(buf, n);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "kcc_bench: " << config.label << " child failed";
    if (!text.empty()) std::cerr << ": " << text;
    std::cerr << "\n";
    return sample;
  }
  std::istringstream fields(text);
  std::uint64_t task_clock_ns = 0;
  fields >> sample.wall_ms >> sample.cliques_ms >> sample.percolate_ms >>
      sample.tree_ms >> sample.peak_rss_bytes >> sample.digest >>
      sample.communities >> sample.hw_available >> sample.hw.cycles >>
      sample.hw.instructions >> sample.hw.branch_misses >>
      sample.hw.cache_misses >> task_clock_ns;
  sample.hw.task_clock_ns = task_clock_ns;
  sample.hw.available = sample.hw_available != 0;
  sample.ok = !fields.fail();
  return sample;
}

// ------------------------------------------------------------- statistics

struct Stat {
  double median = 0.0;
  double mad = 0.0;  // median absolute deviation from the median
  std::vector<double> reps;
};

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

Stat stat_of(std::vector<double> values) {
  Stat s;
  s.median = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - s.median));
  s.mad = median_of(std::move(deviations));
  s.reps = std::move(values);
  return s;
}

struct ConfigResult {
  BenchConfig config;
  std::uint64_t digest = 0;
  std::uint64_t communities = 0;
  bool hw_available = false;
  // Insertion-ordered (metric name, stats): wall_ms, cliques_ms, ...
  std::vector<std::pair<std::string, Stat>> metrics;

  const Stat* find(const std::string& name) const {
    for (const auto& [metric, stat] : metrics) {
      if (metric == name) return &stat;
    }
    return nullptr;
  }
};

// -------------------------------------------------------------- reporting

std::string digest_hex(std::uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void write_stat_json(std::ostream& out, const Stat& stat) {
  out << "{\"median\":" << format_number(stat.median)
      << ",\"mad\":" << format_number(stat.mad) << ",\"reps\":[";
  for (std::size_t i = 0; i < stat.reps.size(); ++i) {
    if (i > 0) out << ",";
    out << format_number(stat.reps[i]);
  }
  out << "]}";
}

struct GraphDims {
  std::size_t nodes = 0;
  std::size_t edges = 0;
};

void write_report(std::ostream& out, const DriverOptions& o,
                  const GraphDims& dims,
                  const std::vector<ConfigResult>& results) {
  out << "{\"kcc_run_report_version\":" << obs::kRunReportVersion;
  out << ",\"manifest\":";
  obs::write_manifest_json(out, obs::collect_manifest("kcc_bench"));
  out << ",\"scale\":\"" << o.scale << "\",\"seed\":" << o.seed
      << ",\"reps\":" << o.reps << ",\"threads\":" << o.threads;
  out << ",\"graph\":{\"nodes\":" << dims.nodes << ",\"edges\":" << dims.edges
      << "}";
  out << ",\"configs\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    if (i > 0) out << ",";
    out << "{\"label\":\"" << r.config.label << "\",\"engine\":\""
        << r.config.engine << "\",\"clique_backend\":\""
        << clique::backend_name(r.config.backend) << "\"";
    out << ",\"exact\":" << (r.config.exact ? "true" : "false");
    out << ",\"memory_budget_bytes\":" << r.config.memory_budget;
    out << ",\"graph\":\"" << (r.config.tiny_graph ? "tiny" : "scale")
        << "\"";
    out << ",\"digest\":\"" << digest_hex(r.digest) << "\"";
    out << ",\"communities\":" << r.communities;
    out << ",\"hw_available\":" << (r.hw_available ? "true" : "false");
    out << ",\"metrics\":{";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      if (m > 0) out << ",";
      out << "\"" << r.metrics[m].first << "\":";
      write_stat_json(out, r.metrics[m].second);
    }
    out << "}}";
  }
  out << "]}";
}

void append_trajectory(const std::string& path, const DriverOptions& o,
                       const std::vector<ConfigResult>& results) {
  std::ofstream out(path, std::ios::app);
  require(out.good(), "kcc_bench: cannot append to trajectory " + path);
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto seconds =
      std::chrono::duration_cast<std::chrono::seconds>(now).count();
  const obs::RunManifest manifest = obs::collect_manifest("kcc_bench");
  out << "{\"time_unix\":" << seconds << ",\"git_sha\":\"" << manifest.git_sha
      << (manifest.git_dirty ? "+dirty" : "") << "\",\"scale\":\"" << o.scale
      << "\",\"seed\":" << o.seed << ",\"reps\":" << o.reps
      << ",\"configs\":{";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    if (i > 0) out << ",";
    out << "\"" << r.config.label << "\":{";
    bool first = true;
    for (const auto& [metric, stat] : r.metrics) {
      if (!first) out << ",";
      first = false;
      out << "\"" << metric << "\":" << format_number(stat.median);
    }
    out << "}";
  }
  out << "}}\n";
  require(out.good(), "kcc_bench: failed appending to trajectory " + path);
}

// -------------------------------------------------------------- execution

int run_matrix(const DriverOptions& o, std::vector<ConfigResult>& results,
               GraphDims& dims) {
  SynthParams params = scale_params(o.scale);
  params.seed = o.seed;
  std::cout << "kcc_bench: generating " << o.scale << " ecosystem (seed "
            << o.seed << ")...\n";
  const Graph graph = generate_ecosystem(params).topology.graph;
  dims.nodes = graph.num_nodes();
  dims.edges = graph.num_edges();
  const Graph tiny = tiny_reference_graph(o.seed);
  std::cout << "kcc_bench: scale graph " << graph.num_nodes() << " nodes / "
            << graph.num_edges() << " edges; reference-capped graph "
            << tiny.num_nodes() << " nodes / " << tiny.num_edges()
            << " edges\n";
  std::cout << "kcc_bench: hw counters: "
            << obs::HwCounterSet::global().status() << "\n";

  const std::vector<BenchConfig> matrix = build_matrix(o);
  for (const BenchConfig& config : matrix) {
    const Graph& g = config.tiny_graph ? tiny : graph;
    ConfigResult result;
    result.config = config;
    std::vector<RepSample> samples;
    for (int rep = 0; rep < o.reps; ++rep) {
      RepSample sample = run_rep_in_child(g, config, o.threads);
      if (!sample.ok) {
        std::cerr << "kcc_bench: FAIL — " << config.label << " rep " << rep
                  << " did not report\n";
        return 2;
      }
      if (rep == 0) {
        result.digest = sample.digest;
        result.communities = sample.communities;
      } else if (sample.digest != result.digest) {
        std::cerr << "kcc_bench: FAIL — " << config.label
                  << " digest varies across repetitions ("
                  << digest_hex(result.digest) << " vs "
                  << digest_hex(sample.digest) << "); engine output is "
                  << "nondeterministic\n";
        return 2;
      }
      result.hw_available = result.hw_available || sample.hw.available;
      samples.push_back(std::move(sample));
    }

    auto collect = [&](auto&& get) {
      std::vector<double> values;
      values.reserve(samples.size());
      for (const RepSample& s : samples) values.push_back(get(s));
      return stat_of(std::move(values));
    };
    result.metrics.emplace_back(
        "wall_ms", collect([](const RepSample& s) { return s.wall_ms; }));
    result.metrics.emplace_back(
        "cliques_ms",
        collect([](const RepSample& s) { return s.cliques_ms; }));
    result.metrics.emplace_back(
        "percolate_ms",
        collect([](const RepSample& s) { return s.percolate_ms; }));
    result.metrics.emplace_back(
        "tree_ms", collect([](const RepSample& s) { return s.tree_ms; }));
    result.metrics.emplace_back(
        "peak_rss_bytes", collect([](const RepSample& s) {
          return static_cast<double>(s.peak_rss_bytes);
        }));
    if (result.hw_available) {
      result.metrics.emplace_back(
          "hw_cycles", collect([](const RepSample& s) {
            return static_cast<double>(s.hw.cycles);
          }));
      result.metrics.emplace_back(
          "hw_instructions", collect([](const RepSample& s) {
            return static_cast<double>(s.hw.instructions);
          }));
      result.metrics.emplace_back(
          "hw_branch_misses", collect([](const RepSample& s) {
            return static_cast<double>(s.hw.branch_misses);
          }));
      result.metrics.emplace_back(
          "hw_cache_misses", collect([](const RepSample& s) {
            return static_cast<double>(s.hw.cache_misses);
          }));
      result.metrics.emplace_back(
          "hw_task_clock_ms", collect([](const RepSample& s) {
            return static_cast<double>(s.hw.task_clock_ns) / 1e6;
          }));
    }

    const Stat* wall = result.find("wall_ms");
    const Stat* rss = result.find("peak_rss_bytes");
    std::cout << "kcc_bench: " << config.label << ": wall "
              << format_number(wall->median) << " ms (MAD "
              << format_number(wall->mad) << "), peak +"
              << static_cast<std::uint64_t>(rss->median) / (1024 * 1024)
              << " MiB, " << result.communities << " communities, digest "
              << digest_hex(result.digest) << "\n";
    results.push_back(std::move(result));
  }

  // Digest gate: every exact non-reference config ran the same workload, so
  // their canonical digests — taken in canonical clique order, see the
  // child — must agree (the differential fuzzer proves this
  // at depth; here it guards the measurement itself). Approximate engines
  // are exempt — their output contract is the F1 gap gate in
  // check::differential, not byte identity — but the per-rep determinism
  // check above still applies to them.
  const ConfigResult* baseline = nullptr;
  for (const ConfigResult& r : results) {
    if (r.config.tiny_graph || !r.config.exact) continue;
    if (baseline == nullptr) {
      baseline = &r;
    } else if (r.digest != baseline->digest) {
      std::cerr << "kcc_bench: FAIL — " << r.config.label
                << " digest differs from " << baseline->config.label
                << " on the same graph\n";
      return 2;
    }
  }
  return 0;
}

// ---------------------------------------------------------- compare gate

// Metrics the gate fails on; lower is better for all of them. Everything
// else in the report is context, not a gate.
const std::vector<std::string>& gated_metrics() {
  static const std::vector<std::string> metrics{"wall_ms", "peak_rss_bytes"};
  return metrics;
}

int compare_reports(const obs::FlatJson& base, const obs::FlatJson& fresh,
                    const DriverOptions& o) {
  const double base_version = base.number("kcc_run_report_version", -1);
  const double fresh_version = fresh.number("kcc_run_report_version", -1);
  require(base_version >= 1 && base_version <= obs::kRunReportVersion,
          "kcc_bench: baseline report version unsupported");
  require(fresh_version >= 1 && fresh_version <= obs::kRunReportVersion,
          "kcc_bench: new report version unsupported");

  // Index the fresh report's configs by label.
  std::map<std::string, std::string> fresh_prefix_of;  // label -> "configs.N"
  for (std::size_t i = 0;; ++i) {
    const std::string prefix = "configs." + std::to_string(i);
    const std::string label = fresh.string(prefix + ".label");
    if (label.empty()) break;
    fresh_prefix_of[label] = prefix;
  }

  int regressions = 0;
  int compared = 0;
  for (std::size_t i = 0;; ++i) {
    const std::string base_prefix = "configs." + std::to_string(i);
    const std::string label = base.string(base_prefix + ".label");
    if (label.empty()) break;
    const auto it = fresh_prefix_of.find(label);
    if (it == fresh_prefix_of.end()) {
      std::cout << "compare: " << label
                << ": not in the new report — skipped\n";
      continue;
    }
    const std::string& fresh_prefix = it->second;

    const std::string base_digest = base.string(base_prefix + ".digest");
    const std::string fresh_digest = fresh.string(fresh_prefix + ".digest");
    if (!base_digest.empty() && !fresh_digest.empty() &&
        base_digest != fresh_digest) {
      // Different commits may legitimately change canonical output; the
      // perf gate stays perf-only, but the drift deserves a loud note.
      std::cout << "compare: " << label << ": NOTE digest drift ("
                << base_digest << " -> " << fresh_digest << ")\n";
    }

    for (const std::string& metric : gated_metrics()) {
      const std::string base_m = base_prefix + ".metrics." + metric;
      const std::string fresh_m = fresh_prefix + ".metrics." + metric;
      if (!base.has_number(base_m + ".median") ||
          !fresh.has_number(fresh_m + ".median")) {
        continue;
      }
      ++compared;
      const double base_median = base.number(base_m + ".median");
      const double fresh_median = fresh.number(fresh_m + ".median");
      const double noise_band =
          o.mad_k * std::max(base.number(base_m + ".mad"),
                             fresh.number(fresh_m + ".mad"));
      const double threshold =
          std::max(o.rel_tol * base_median, noise_band);
      const double delta = fresh_median - base_median;
      const bool regressed = delta > threshold;
      if (regressed) ++regressions;
      std::cout << "compare: " << label << " " << metric << ": "
                << format_number(base_median) << " -> "
                << format_number(fresh_median) << " (delta "
                << format_number(delta) << ", threshold "
                << format_number(threshold) << ") "
                << (regressed ? "REGRESSION" : "ok") << "\n";
    }
  }
  require(compared > 0,
          "kcc_bench: no overlapping config/metric between baseline and new "
          "report — nothing was gated (wrong baseline file?)");
  if (regressions > 0) {
    std::cerr << "kcc_bench: FAIL — " << regressions
              << " statistically significant regression(s) vs baseline "
              << "(threshold = max(rel_tol=" << o.rel_tol
              << " * base, mad_k=" << o.mad_k << " * MAD)); see "
              << "docs/TESTING.md#reading-a-compare-failure\n";
    return 1;
  }
  std::cout << "kcc_bench: compare OK — no significant regressions ("
            << compared << " metric comparisons)\n";
  return 0;
}

int run_driver(const DriverOptions& o) {
  std::string fresh_text;
  if (o.in.empty()) {
    std::vector<ConfigResult> results;
    GraphDims dims;
    const int rc = run_matrix(o, results, dims);
    if (rc != 0) return rc;
    std::ostringstream report;
    write_report(report, o, dims, results);
    fresh_text = report.str();
    if (!o.out.empty()) {
      std::ofstream out(o.out);
      require(out.good(), "kcc_bench: cannot write " + o.out);
      out << fresh_text << "\n";
      require(out.good(), "kcc_bench: failed writing " + o.out);
      std::cout << "kcc_bench: wrote " << o.out << "\n";
    }
    if (!o.trajectory.empty()) {
      append_trajectory(o.trajectory, o, results);
      std::cout << "kcc_bench: appended to " << o.trajectory << "\n";
    }
  } else {
    std::ifstream in(o.in);
    require(in.good(), "kcc_bench: cannot read --in report " + o.in);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    fresh_text = buffer.str();
  }

  if (o.compare.empty()) return 0;
  const obs::FlatJson base = obs::read_json_flat_file(o.compare);
  const obs::FlatJson fresh = obs::parse_json_flat(fresh_text);
  return compare_reports(base, fresh, o);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const DriverOptions options = parse_args(argc, argv);
    obs::configure(options.obs);
    const int rc = run_driver(options);
    obs::finish(options.obs);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "kcc_bench: error: " << e.what() << "\n";
    return 2;
  }
}
