// kcc — command-line front end for the library.
//
// Subcommands:
//   kcc generate --out-dir=DIR [--scale=test|bench|paper] [--seed=N]
//       Generate a synthetic AS ecosystem and write topology.txt, ixps.txt,
//       countries.txt, geo.txt into DIR.
//   kcc cpm --edges=FILE [--k-min=2] [--k-max=0] [--engine=sweep]
//       [--threads=0] [--memory-budget=BYTES[K|M|G]] [--out=FILE]
//       Extract k-clique communities from an edge list; print a summary and
//       optionally save the result (io/result_io format).
//   kcc tree --edges=FILE [--dot=FILE] [--min-k-shown=6]
//       Build and print the community tree (emitted by the sweep engine in
//       the same pass as the communities); optionally export DOT.
//   kcc analyze --edges=FILE --ixps=FILE --countries=FILE --geo=FILE
//       Full paper analysis over on-disk datasets.
//   kcc info --edges=FILE
//       Topology statistics (degrees, clustering, components, cliques).
//   kcc serve --snapshot=FILE --socket=PATH
//       mmap a community snapshot (written by cpm --snapshot-out) and answer
//       concurrent membership/community/ancestry/LCA/overlap queries over a
//       unix-domain socket until SIGINT/SIGTERM or a remote shutdown.
//       SIGHUP (or the remote reload op) remaps the snapshot path in place:
//       in-flight queries finish on the old mapping, new ones see the new.
//   kcc query --socket=PATH --op=OP [query args]
//       One-shot client for a running serve daemon.
//   kcc update --deltas=FILE --snapshot-out=FILE [--edges=FILE]
//       Replay an edge-delta stream (docs/FORMATS.md#delta-streams) through
//       the incremental CPM engine and write the refreshed snapshot
//       atomically (tmp + rename) — the file a running `kcc serve` daemon
//       can then reload without restarting.

#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>

#include <sstream>

#include "analysis/pipeline.h"
#include "analysis/report.h"
#include "check/churn.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"
#include "common/timer.h"
#include "cpm/community_tree.h"
#include "cpm/engine.h"
#include "graph/clustering.h"
#include "graph/degree_distribution.h"
#include "graph/graph_algorithms.h"
#include "io/dataset_io.h"
#include "io/dot_export.h"
#include "io/edge_list.h"
#include "io/result_io.h"
#include "io/snapshot.h"
#include "obs/obs.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace kcc;

int usage(std::ostream& out, int rc) {
  out <<
      "usage: kcc <command> [flags]\n"
      "  generate --out-dir=DIR [--scale=test|bench|paper] [--seed=N]\n"
      "  cpm      --edges=FILE [--k-min=N] [--k-max=N] [--engine=ENGINE]\n"
      "           [--threads=N] [--memory-budget=BYTES[K|M|G]] [--out=FILE]\n"
      "           [--snapshot-out=FILE]\n"
      "  tree     --edges=FILE [--dot=FILE] [--min-k-shown=N] [--engine=ENGINE]\n"
      "  analyze  --edges=FILE --ixps=FILE --countries=FILE --geo=FILE\n"
      "           [--threads=N] [--engine=ENGINE]\n"
      "  info     --edges=FILE\n"
      "  serve    --snapshot=FILE --socket=PATH [--no-remote-shutdown]\n"
      "           [--no-remote-reload]\n"
      "  query    --socket=PATH --op=info|membership|community|ancestry|\n"
      "           lca|overlap|reload|shutdown [--node=N] [--k=N] [--id=N]\n"
      "           [--k2=N] [--id2=N] [--u=N] [--v=N] [--timeout=SECONDS]\n"
      "  update   --deltas=FILE --snapshot-out=FILE [--edges=FILE]\n"
      "           [--k-min=N] [--k-max=N] [--threads=N]\n"
      "  help | --help\n"
      "\n"
      "engine selection (cpm/tree/analyze):\n"
      "  --engine=" << cpm::engine_names_joined() << "\n";
  // The per-engine help lines come from the registry, so a newly
  // registered backend documents itself.
  for (const cpm::EngineInfo& info : cpm::engine_registry()) {
    out << "           " << info.name << ": " << info.summary;
    if (!info.caps.exact) out << " [approximate]";
    out << "\n";
  }
  out <<
      "  --k-min=N/--k-max=N bound the community order (aliases\n"
      "           --min-k/--max-k are accepted for compatibility)\n"
      "  --memory-budget=BYTES[K|M|G]\n"
      "           stream engine only: cap resident overlap-pair bytes,\n"
      "           spilling buckets to temp files past the cap (0 = off)\n"
      "  --clique-backend=auto|sparse|bitset\n"
      "           maximal-clique kernel: bitset packs each degeneracy\n"
      "           subproblem into 64-bit rows (word-parallel, the fast\n"
      "           path); sparse is the sorted-merge kernel; auto (default)\n"
      "           picks per graph — output is identical either way\n"
      "\n"
      "serving (docs/SERVING.md):\n"
      "  --snapshot-out=FILE\n"
      "           cpm only: also write the binary community snapshot that\n"
      "           `kcc serve` mmaps (format spec in docs/FORMATS.md)\n"
      "  --snapshot=FILE --socket=PATH\n"
      "           serve: the snapshot to serve and the unix socket to bind\n"
      "  --no-remote-shutdown\n"
      "           serve: refuse the client-initiated shutdown op\n"
      "  --no-remote-reload\n"
      "           serve: refuse the client-initiated reload op (SIGHUP\n"
      "           reloads keep working)\n"
      "  --op=... --node/--k/--id/--k2/--id2/--u/--v, --timeout=SECONDS\n"
      "           query: operation and its arguments (see docs/SERVING.md)\n"
      "  --deltas=FILE\n"
      "           update: the edge-delta stream to replay; its 'edge' lines\n"
      "           seed the base graph unless --edges provides one instead\n"
      "           (grammar in docs/FORMATS.md#delta-streams)\n"
      "\n"
      "observability flags (accepted by every command):\n"
      "  --log-level=off|error|warn|info|debug|trace\n"
      "           stderr logging threshold (default off; env KCC_LOG_LEVEL)\n"
      "  --trace-out=FILE\n"
      "           record spans and write Chrome trace_event JSON, viewable\n"
      "           in chrome://tracing or https://ui.perfetto.dev\n"
      "  --metrics-out=FILE\n"
      "           dump the metrics registry on exit (JSON, or Prometheus\n"
      "           text when FILE ends in .prom)\n"
      "  --report-out=FILE\n"
      "           write a versioned run report on exit: build/host manifest,\n"
      "           per-stage wall + hardware counters + RSS, metrics snapshot\n"
      "           (schema in docs/OBSERVABILITY.md)\n"
      "  (every FILE above accepts - for stdout)\n"
      "\n"
      "Unknown flags are an error; see docs/OBSERVABILITY.md for the metric\n"
      "catalog.\n";
  return rc;
}

SynthParams scale_params(const std::string& scale) {
  if (scale == "test") return SynthParams::test_scale();
  if (scale == "bench") return SynthParams::bench_scale();
  if (scale == "paper") return SynthParams::paper_scale();
  throw Error("unknown --scale '" + scale + "' (test|bench|paper)");
}

// Shared engine options for cpm/tree/analyze. The legacy spellings
// --min-k/--max-k remain accepted; --k-min/--k-max win when both appear.
cpm::Options cpm_options_from_args(const CliArgs& args) {
  cpm::Options defaults;
  defaults.min_k = static_cast<std::size_t>(args.get_int("min-k", 2));
  defaults.max_k = static_cast<std::size_t>(args.get_int("max-k", 0));
  return cpm::options_from_cli(args, defaults);
}

int cmd_generate(const CliArgs& args) {
  const std::string dir = args.get_string("out-dir", "");
  require(!dir.empty(), "generate: --out-dir is required");
  std::filesystem::create_directories(dir);

  SynthParams params = scale_params(args.get_string("scale", "bench"));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const AsEcosystem eco = generate_ecosystem(params);

  write_edge_list_file(dir + "/topology.txt", eco.topology);
  {
    std::ofstream out(dir + "/ixps.txt");
    require(out.good(), "generate: cannot write ixps.txt");
    write_ixp_dataset(out, eco.ixps, eco.topology);
  }
  {
    std::ofstream countries(dir + "/countries.txt");
    std::ofstream geo(dir + "/geo.txt");
    require(countries.good() && geo.good(),
            "generate: cannot write geo files");
    write_geo_dataset(countries, geo, eco.geo, eco.topology);
  }
  std::cout << "Wrote " << eco.num_ases() << " ASes / "
            << eco.topology.graph.num_edges() << " links, "
            << eco.ixps.count() << " IXPs, "
            << eco.geo.known_node_count() << " geolocated ASes to " << dir
            << "\n";
  return 0;
}

int cmd_cpm(const CliArgs& args) {
  const std::string edges = args.get_string("edges", "");
  require(!edges.empty(), "cpm: --edges is required");
  const LabeledGraph g = read_edge_list_file(edges);
  const cpm::Result run = cpm::Engine(cpm_options_from_args(args)).run(g.graph);
  const CpmResult& result = run.cpm;
  std::cout << "Graph: " << g.graph.num_nodes() << " nodes, "
            << g.graph.num_edges() << " edges\n";
  std::cout << "Maximal cliques: " << result.cliques.size() << "\n";
  std::cout << "Communities: " << result.total_communities() << " over k in ["
            << result.min_k << ", " << result.max_k << "] ("
            << run.engine_name << " engine, "
            << cpm::exactness_name(run.exactness) << ", "
            << fixed(run.timings.total_seconds, 2) << " s)\n";
  TextTable table({"k", "communities", "largest"});
  for (std::size_t k = result.min_k; k <= result.max_k; ++k) {
    std::size_t largest = 0;
    for (const Community& c : result.at(k).communities) {
      largest = std::max(largest, c.size());
    }
    table.add(k, result.at(k).count(), largest);
  }
  std::cout << table;
  if (args.has("out")) {
    const std::string out = args.get_string("out", "");
    write_cpm_result_file(out, result);
    std::cout << "Result saved to " << out << "\n";
  }
  if (args.has("snapshot-out")) {
    const std::string out = args.get_string("snapshot-out", "");
    obs::write_artifact(out, "snapshot",
                        [&run](std::ostream& stream) {
                          snapshot::write_snapshot(stream, run);
                        },
                        /*binary=*/true);
    if (out != "-") std::cout << "Snapshot saved to " << out << "\n";
  }
  return 0;
}

serve::Server* g_server = nullptr;

extern "C" void kcc_serve_signal(int) {
  // Async-signal-safe: one atomic store; Server::wait polls the flag and
  // performs the actual teardown on the main thread.
  if (g_server != nullptr) g_server->request_shutdown();
}

extern "C" void kcc_serve_sighup(int) {
  // Async-signal-safe: one atomic store; Server::wait performs the snapshot
  // remap on its next poll tick.
  if (g_server != nullptr) g_server->request_reload();
}

int cmd_serve(const CliArgs& args) {
  const std::string snapshot = args.get_string("snapshot", "");
  const std::string socket = args.get_string("socket", "");
  require(!snapshot.empty(), "serve: --snapshot is required");
  require(!socket.empty(), "serve: --socket is required");
  serve::ServerOptions options;
  options.socket_path = socket;
  options.allow_remote_shutdown = !args.get_bool("no-remote-shutdown", false);
  options.allow_remote_reload = !args.get_bool("no-remote-reload", false);

  serve::Server server(snapshot, options);
  std::cout << "Serving " << server.view().num_communities()
            << " communities (k " << server.view().min_k() << ".."
            << server.view().max_k() << ", engine "
            << server.view().engine_name() << ", "
            << cpm::exactness_name(server.view().exactness()) << ") on "
            << socket << "\n"
            << std::flush;
  g_server = &server;
  std::signal(SIGINT, kcc_serve_signal);
  std::signal(SIGTERM, kcc_serve_signal);
  std::signal(SIGHUP, kcc_serve_sighup);
  server.start();
  server.wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGHUP, SIG_DFL);
  g_server = nullptr;
  std::cout << "Shut down cleanly\n";
  return 0;
}

int cmd_query(const CliArgs& args) {
  const std::string socket = args.get_string("socket", "");
  const std::string op = args.get_string("op", "");
  require(!socket.empty(), "query: --socket is required");
  require(!op.empty(), "query: --op is required");
  const double timeout = args.get_double("timeout", 5.0);
  auto u32 = [&args](const char* flag) {
    require(args.has(flag), std::string("query: --") + flag + " is required");
    return static_cast<std::uint32_t>(args.get_int(flag, 0));
  };

  serve::Client client(socket, timeout);
  if (op == "info") {
    const serve::ServerInfo info = client.info();
    std::cout << "engine " << info.engine << ", k in [" << info.min_k << ", "
              << info.max_k << "], " << info.num_nodes << " nodes, "
              << info.num_communities << " communities, tree "
              << (info.has_tree ? "yes" : "no") << "\n";
  } else if (op == "membership") {
    const auto memberships = client.membership(
        u32("node"), static_cast<std::uint32_t>(args.get_int("k", 0)));
    for (const serve::Membership& m : memberships) {
      std::cout << "k=" << m.k << " community=" << m.id << "\n";
    }
    std::cout << memberships.size() << " memberships\n";
  } else if (op == "community") {
    const auto nodes = client.community(u32("k"), u32("id"));
    for (std::uint32_t v : nodes) std::cout << v << "\n";
    std::cout << nodes.size() << " nodes\n";
  } else if (op == "ancestry") {
    for (const serve::AncestryEntry& entry :
         client.ancestry(u32("k"), u32("id"))) {
      std::cout << "k=" << entry.k << " community=" << entry.id << " size="
                << entry.size << "\n";
    }
  } else if (op == "lca") {
    const auto lca = client.lca(u32("k"), u32("id"), u32("k2"), u32("id2"));
    if (lca.has_value()) {
      std::cout << "lca k=" << lca->k << " community=" << lca->id << "\n";
    } else {
      std::cout << "no common ancestor\n";
    }
  } else if (op == "overlap") {
    const serve::Overlap overlap = client.overlap(u32("u"), u32("v"));
    if (overlap.max_k == 0) {
      std::cout << "no shared community\n";
    } else {
      std::cout << "max_k=" << overlap.max_k << " community="
                << overlap.community << " count=" << overlap.count << "\n";
    }
  } else if (op == "reload") {
    const serve::Status status = client.request_reload();
    require(status != serve::Status::kUnsupported,
            "query: server refused reload (--no-remote-reload?)");
    require(status == serve::Status::kOk,
            "query: reload failed — the daemon keeps serving the previous "
            "snapshot (check its log)");
    std::cout << "snapshot reloaded\n";
  } else if (op == "shutdown") {
    const serve::Status status = client.request_shutdown();
    require(status == serve::Status::kOk,
            "query: server refused shutdown (--no-remote-shutdown?)");
    std::cout << "server shutting down\n";
  } else {
    throw Error("query: unknown --op '" + op + "'");
  }
  return 0;
}

int cmd_update(const CliArgs& args) {
  const std::string deltas_path = args.get_string("deltas", "");
  const std::string out = args.get_string("snapshot-out", "");
  require(!deltas_path.empty(), "update: --deltas is required");
  require(!out.empty(), "update: --snapshot-out is required");
  require(out != "-", "update: --snapshot-out must be a file path (the "
                      "write is tmp + rename for atomic daemon reloads)");

  std::ifstream in(deltas_path);
  require(in.good(), "update: cannot read '" + deltas_path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  const check::DeltaStream stream = check::parse_delta_stream(text.str());

  Graph base;
  if (args.has("edges")) {
    require(stream.base.edges.empty(),
            "update: --edges given but '" + deltas_path +
                "' carries its own 'edge' lines — use one base, not both");
    base = read_edge_list_file(args.get_string("edges", "")).graph;
  } else {
    base = stream.base.build();
  }

  Timer timer;
  cpm::IncrementalCpm state(base, cpm_options_from_args(args));
  std::size_t ops = 0;
  for (const cpm::EdgeBatch& batch : stream.batches) {
    state.apply(batch);
    ops += batch.size();
  }
  const cpm::Result run = state.result();

  // tmp + rename so a serving daemon reloading the path never maps a
  // half-written file.
  const std::string tmp = out + ".tmp";
  snapshot::write_snapshot_file(tmp, run,
                                snapshot::default_manifest_json("kcc", run));
  std::filesystem::rename(tmp, out);

  std::cout << "Replayed " << stream.batches.size() << " batches (" << ops
            << " ops) over " << base.num_nodes() << " nodes: "
            << state.num_edges() << " edges, " << state.num_cliques()
            << " maximal cliques, " << run.cpm.total_communities()
            << " communities over k in [" << run.cpm.min_k << ", "
            << run.cpm.max_k << "] (" << fixed(timer.seconds(), 2) << " s)\n";
  std::cout << "Snapshot saved to " << out << "\n";
  return 0;
}

int cmd_tree(const CliArgs& args) {
  const std::string edges = args.get_string("edges", "");
  require(!edges.empty(), "tree: --edges is required");
  const LabeledGraph g = read_edge_list_file(edges);
  const cpm::Result run = cpm::Engine(cpm_options_from_args(args)).run(g.graph);
  require(run.has_tree, "tree: the graph has no communities to arrange");
  const CommunityTree& tree = run.tree;
  std::cout << "Community tree: " << tree.nodes().size() << " communities ("
            << tree.main_count() << " main, " << tree.parallel_count()
            << " parallel), k in [" << tree.min_k() << ", " << tree.max_k()
            << "]\n";
  for (const TreeLevelStats& stats : tree_level_stats(tree)) {
    std::cout << "  k=" << stats.k << ": main size " << stats.main_size
              << ", " << stats.parallel_count << " parallel\n";
  }
  if (args.has("dot")) {
    const std::string path = args.get_string("dot", "tree.dot");
    const auto min_shown =
        static_cast<std::size_t>(args.get_int("min-k-shown", 6));
    write_tree_dot_file(path, tree, min_shown);
    std::cout << "DOT written to " << path << "\n";
  }
  return 0;
}

int cmd_analyze(const CliArgs& args) {
  for (const char* flag : {"edges", "ixps", "countries", "geo"}) {
    require(args.has(flag),
            std::string("analyze: --") + flag + " is required");
  }
  AsEcosystem eco;
  eco.topology = read_edge_list_file(args.get_string("edges", ""));
  eco.ixps = read_ixp_dataset_file(args.get_string("ixps", ""), eco.topology);
  eco.geo = read_geo_dataset_files(args.get_string("countries", ""),
                                   args.get_string("geo", ""), eco.topology);
  eco.roles.assign(eco.topology.graph.num_nodes(), AsRole::kStub);

  const PipelineResult result =
      analyze_ecosystem(std::move(eco), cpm_options_from_args(args));
  print_ecosystem_summary(std::cout, result.eco);
  std::cout << "\n";
  print_level_table(std::cout, result);
  std::cout << "\n";
  print_band_summary(std::cout, result);
  std::cout << "\n";
  print_overlap_summary(std::cout, result);
  return 0;
}

int cmd_info(const CliArgs& args) {
  const std::string edges = args.get_string("edges", "");
  require(!edges.empty(), "info: --edges is required");
  const LabeledGraph g = read_edge_list_file(edges);
  const DegreeStats degrees = degree_stats(g.graph);
  const ComponentLabeling components = connected_components(g.graph);
  TextTable table({"metric", "value"});
  table.add("nodes", g.graph.num_nodes());
  table.add("edges", g.graph.num_edges());
  table.add("density", fixed(g.graph.density(), 6));
  table.add("min degree", degrees.min);
  table.add("median degree", fixed(degrees.median, 1));
  table.add("mean degree", fixed(degrees.mean, 2));
  table.add("max degree", degrees.max);
  table.add("connected components", components.count);
  table.add("triangles", triangle_count(g.graph));
  table.add("average clustering", fixed(average_clustering(g.graph), 4));
  table.add("transitivity", fixed(transitivity(g.graph), 4));
  try {
    const PowerLawFit fit = fit_power_law(g.graph, 3);
    table.add("power-law alpha (x_min=3)", fixed(fit.alpha, 2));
  } catch (const Error&) {
    // Degenerate degree sequence: skip the fit row.
  }
  std::cout << table;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "help" || command == "--help") {
      return usage(std::cout, 0);
    }
    // CliArgs rejects flags outside this list, so typos (--thread=8) fail
    // loudly instead of silently running with defaults.
    std::vector<std::string> known{
        "out-dir", "scale", "seed", "edges", "min-k", "max-k", "out", "dot",
        "min-k-shown", "ixps", "countries", "geo", "log-level", "trace-out",
        "metrics-out", "report-out", "snapshot-out", "snapshot", "socket",
        "no-remote-shutdown", "no-remote-reload", "op", "node", "k", "id",
        "k2", "id2", "u", "v", "timeout", "deltas"};
    for (const std::string& flag : cpm::engine_cli_flags()) {
      known.push_back(flag);
    }
    const CliArgs args(argc - 1, argv + 1, known);
    obs::ObsOptions obs_options;
    obs_options.log_level = args.get_string("log-level", "");
    obs_options.trace_out = args.get_string("trace-out", "");
    obs_options.metrics_out = args.get_string("metrics-out", "");
    obs_options.report_out = args.get_string("report-out", "");
    obs_options.tool = "kcc";
    obs::configure(obs_options);

    int rc = 0;
    if (command == "generate") {
      rc = cmd_generate(args);
    } else if (command == "cpm") {
      rc = cmd_cpm(args);
    } else if (command == "tree") {
      rc = cmd_tree(args);
    } else if (command == "analyze") {
      rc = cmd_analyze(args);
    } else if (command == "info") {
      rc = cmd_info(args);
    } else if (command == "serve") {
      rc = cmd_serve(args);
    } else if (command == "query") {
      rc = cmd_query(args);
    } else if (command == "update") {
      rc = cmd_update(args);
    } else {
      std::cerr << "unknown command '" << command << "'\n";
      return usage(std::cerr, 2);
    }
    obs::finish(obs_options);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
