// kcc_fuzz — differential fuzzer for the CPM engines (src/check/).
//
// Generates a deterministic corpus of graphs (fixed degenerate shapes, then
// seeded Erdős–Rényi / planted-clique / preferential-attachment / clique
// chains / mini AS ecosystems with mutations), runs every engine × option
// combination on each (check::run_differential), validates the baseline with
// the first-principles invariant oracles, and — on the first failure —
// delta-debugs the graph down to a minimal edge-list reproducer written
// under --artifact-dir.
//
// --schedules adds the churn axis (check::run_churn_differential): seeded
// graphs driven through randomized edge-batch schedules, the incremental
// engine diffed against a from-scratch sweep after every batch. A churn
// failure is captured as a .delta stream (initial graph + batches,
// truncated to the failing batch) instead of a shrunken edge list; corpus
// replay picks up committed *.delta reproducers next to the *.txt ones.
//
//   kcc_fuzz --seed=7 --iters=60                 # deterministic smoke
//   kcc_fuzz --iters=0 --schedules=12            # churn smoke
//   kcc_fuzz --corpus-dir=tests/corpus --iters=0 # replay committed repros
//   KCC_CHECK_INJECT_FAULT=community kcc_fuzz --iters=4 --expect-fault
//       --expect-repro=tests/corpus/inject_community_minimal.txt  (one line)
//
// The --expect-fault mode inverts the verdict: the run must *detect* the
// injected corruption and shrink it (self-test against a vacuously-green
// harness); --expect-repro additionally pins the shrunken artifact (or the
// .delta stream, for churn failures) to a committed minimal reproducer.
// docs/TESTING.md covers the workflow.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "check/churn.h"
#include "check/differential.h"
#include "check/generators.h"
#include "check/shrink.h"
#include "common/cli.h"
#include "common/error.h"
#include "io/edge_list.h"
#include "obs/obs.h"

namespace {

using namespace kcc;

int usage(std::ostream& out, int rc) {
  out <<
      "usage: kcc_fuzz [--seed=N] [--iters=N] [--schedules=N] [--threads=N]\n"
      "                [--corpus-dir=DIR] [--artifact-dir=DIR]\n"
      "                [--no-restricted-range] [--max-shrink-evals=N]\n"
      "                [--expect-fault] [--expect-repro=FILE]\n"
      "                [--log-level=L] [--trace-out=F] [--metrics-out=F]\n"
      "                [--help]\n";
  return rc;
}

/// Edge lines of an edge-list text, comments/blank lines stripped and
/// whitespace normalized — the representation used to pin a shrunken
/// reproducer to a committed artifact.
std::vector<std::string> edge_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string token, normalized;
    while (tokens >> token) {
      if (!normalized.empty()) normalized += ' ';
      normalized += token;
    }
    if (!normalized.empty()) lines.push_back(std::move(normalized));
  }
  return lines;
}

check::TestGraph load_corpus_file(const std::filesystem::path& path) {
  const LabeledGraph loaded = read_edge_list_file(path.string());
  check::TestGraph g;
  g.name = "corpus:" + path.filename().string();
  g.num_nodes = loaded.graph.num_nodes();
  g.edges = loaded.graph.edges();
  return g;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  require(static_cast<bool>(in),
          "kcc_fuzz: cannot read " + path.string());
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

struct FailureRecord {
  check::TestGraph graph;
  std::string detail;
};

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> known{
        "seed",         "iters",        "schedules",
        "threads",      "corpus-dir",   "artifact-dir",
        "no-restricted-range",          "expect-fault",
        "expect-repro", "max-shrink-evals",
        "log-level",    "trace-out",    "metrics-out",
        "help"};
    // CliArgs itself skips argv[0]; no subcommand to strip (unlike kcc).
    const CliArgs args(argc, argv, known);
    if (args.get_bool("help", false)) return usage(std::cout, 0);
    obs::ObsOptions obs_options;
    obs_options.log_level = args.get_string("log-level", "");
    obs_options.trace_out = args.get_string("trace-out", "");
    obs_options.metrics_out = args.get_string("metrics-out", "");
    obs::configure(obs_options);

    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    const auto iters = static_cast<std::size_t>(args.get_int("iters", 60));
    const auto schedules =
        static_cast<std::size_t>(args.get_int("schedules", 0));
    const std::string corpus_dir = args.get_string("corpus-dir", "");
    const std::string artifact_dir = args.get_string("artifact-dir", ".");
    const bool expect_fault = args.get_bool("expect-fault", false);
    const std::string expect_repro = args.get_string("expect-repro", "");
    const auto max_shrink_evals =
        static_cast<std::size_t>(args.get_int("max-shrink-evals", 10000));

    check::DiffOptions diff;
    diff.threads = static_cast<std::size_t>(args.get_int("threads", 4));
    diff.include_restricted_range =
        !args.get_bool("no-restricted-range", false);

    check::ChurnOptions churn;
    churn.threads = diff.threads;

    // The work list: committed corpus replays first, then the generated
    // stream. Both are fully determined by the flags. *.txt entries are
    // graph reproducers for the engine matrix; *.delta entries are churn
    // schedules replayed batch-for-batch.
    std::vector<check::TestGraph> corpus;
    std::vector<std::filesystem::path> delta_corpus;
    if (!corpus_dir.empty()) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::directory_iterator(corpus_dir)) {
        if (!entry.is_regular_file()) continue;
        if (entry.path().extension() == ".txt") {
          files.push_back(entry.path());
        } else if (entry.path().extension() == ".delta") {
          delta_corpus.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      std::sort(delta_corpus.begin(), delta_corpus.end());
      for (const auto& path : files) corpus.push_back(load_corpus_file(path));
    }

    std::size_t graphs_run = 0;
    std::size_t variants_run = 0;
    std::size_t schedules_run = 0;
    std::size_t batches_run = 0;
    std::uint64_t invariants_checked = 0;
    std::size_t faults_injected = 0;
    double worst_approx_f1 = 1.0;
    std::optional<FailureRecord> first_failure;
    std::optional<check::ChurnOutcome> churn_failure;

    auto run_one = [&](const check::TestGraph& graph) {
      const check::DiffOutcome outcome = check::run_differential(graph, diff);
      ++graphs_run;
      variants_run += outcome.variants_run;
      invariants_checked += outcome.invariants_checked;
      worst_approx_f1 = std::min(worst_approx_f1, outcome.worst_approx_f1);
      if (outcome.fault_injected) ++faults_injected;
      if (!outcome.ok() && !first_failure) {
        first_failure = FailureRecord{graph, outcome.failure};
      }
      return !first_failure.has_value();
    };

    auto run_schedule = [&](const check::ChurnOutcome& outcome) {
      ++schedules_run;
      batches_run += outcome.batches_applied;
      invariants_checked += outcome.invariants_checked;
      if (outcome.fault_injected) ++faults_injected;
      if (!outcome.ok() && !churn_failure) churn_failure = outcome;
      return !churn_failure.has_value();
    };

    for (const check::TestGraph& graph : corpus) {
      if (!run_one(graph)) break;
    }
    if (!first_failure) {
      for (const auto& path : delta_corpus) {
        if (!run_schedule(check::replay_churn_delta(read_file(path), churn))) {
          break;
        }
      }
    }
    if (!first_failure && !churn_failure) {
      for (std::size_t i = 0; i < iters; ++i) {
        if (!run_one(check::generate_graph(seed, i))) break;
      }
    }
    if (!first_failure && !churn_failure) {
      for (std::size_t i = 0; i < schedules; ++i) {
        if (!run_schedule(check::run_churn_differential(seed, i, churn))) {
          break;
        }
      }
    }

    std::string artifact_path;
    bool repro_matches = true;
    if (first_failure) {
      std::cerr << "FAILURE on " << first_failure->graph.name << ":\n"
                << first_failure->detail << "\n";
      // Minimize: any differential/invariant failure counts as "still
      // failing" — classic ddmin, deterministic, no randomness.
      const check::ShrinkResult shrunk = check::shrink(
          first_failure->graph,
          [&](const check::TestGraph& candidate) {
            return !check::run_differential(candidate, diff).ok();
          },
          max_shrink_evals);
      obs::metrics()
          .counter("check_shrink_evals_total")
          .inc(shrunk.evaluations);
      std::filesystem::create_directories(artifact_dir);
      artifact_path =
          (std::filesystem::path(artifact_dir) /
           ("repro_seed" + std::to_string(seed) + ".txt"))
              .string();
      std::ofstream out(artifact_path);
      require(static_cast<bool>(out),
              "kcc_fuzz: cannot write artifact " + artifact_path);
      out << shrunk.graph.to_edge_list();
      out.close();
      std::cerr << "minimized to " << shrunk.graph.edges.size()
                << " edges (1-minimal: " << (shrunk.one_minimal ? "yes" : "no")
                << ", " << shrunk.evaluations << " evaluations) -> "
                << artifact_path << "\n";

      if (!expect_repro.empty()) {
        repro_matches = edge_lines(read_file(expect_repro)) ==
                        edge_lines(shrunk.graph.to_edge_list());
        if (!repro_matches) {
          std::cerr << "shrunken reproducer does not match " << expect_repro
                    << "\n";
        }
      }
    } else if (churn_failure) {
      std::cerr << "FAILURE on " << churn_failure->label << ":\n"
                << churn_failure->failure << "\n";
      // A churn failure is already minimal along the only axis that
      // matters for replay — the schedule is truncated to the failing
      // batch — so the delta stream is written as-is, no ddmin pass.
      std::filesystem::create_directories(artifact_dir);
      artifact_path =
          (std::filesystem::path(artifact_dir) /
           ("repro_churn_seed" + std::to_string(seed) + ".delta"))
              .string();
      std::ofstream out(artifact_path);
      require(static_cast<bool>(out),
              "kcc_fuzz: cannot write artifact " + artifact_path);
      out << churn_failure->repro;
      out.close();
      std::cerr << "delta-stream reproducer ("
                << churn_failure->batches_applied << " batches) -> "
                << artifact_path << "\n";
      if (!expect_repro.empty()) {
        repro_matches =
            edge_lines(read_file(expect_repro)) ==
            edge_lines(churn_failure->repro);
        if (!repro_matches) {
          std::cerr << "delta-stream reproducer does not match "
                    << expect_repro << "\n";
        }
      }
    }

    const bool failed = first_failure.has_value() || churn_failure.has_value();
    std::cout << "kcc_fuzz: " << graphs_run << " graphs, " << variants_run
              << " engine runs, " << schedules_run << " churn schedules, "
              << batches_run << " batches, " << invariants_checked
              << " invariants checked, " << faults_injected
              << " faults injected, worst approximate F1 " << worst_approx_f1
              << ", " << (failed ? 1 : 0) << " failures\n";
    obs::finish(obs_options);

    if (expect_fault) {
      // Self-test: the injected corruption must be caught and reproduced.
      if (!failed) {
        std::cerr << "expected an injected fault to be detected, but every "
                     "run came back clean\n";
        return 1;
      }
      if (faults_injected == 0) {
        std::cerr << "a failure was reported but no fault was injected\n";
        return 1;
      }
      return repro_matches ? 0 : 1;
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
