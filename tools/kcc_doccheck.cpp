// kcc_doccheck — the mechanical docs-consistency gate (docs/TESTING.md).
//
// Two checks over README.md plus every docs/*.md file:
//
//   1. Flags: every double-dash flag token mentioned anywhere in the docs
//      must appear in the --help output of kcc, kcc_bench or kcc_fuzz, or
//      in the annotated allowlist below of flags owned by other programs
//      (cmake/ctest, the bench harnesses). A flag that a CLI change
//      renamed or removed therefore fails tier-1 at the line that still
//      documents it.
//   2. Links: every relative markdown link must resolve to an existing
//      file or directory (fragments stripped), so renames cannot leave
//      dead links behind.
//
// Findings print as file:line: message, one per line; exit is non-zero if
// anything failed. Run by the `docs_consistency` ctest with the built
// binaries' paths:
//
//   kcc_doccheck --root=SOURCE_DIR --kcc=PATH --kcc-bench=PATH
//                --kcc-fuzz=PATH
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/error.h"

namespace {

using namespace kcc;
namespace fs = std::filesystem;

// Flags documented for programs other than the three checked CLIs. Each
// entry names its owner; a flag added here without an owner comment is a
// review smell.
const std::set<std::string>& allowlisted_flags() {
  static const std::set<std::string> allowed{
      "--preset",             // cmake / ctest
      "--build",              // cmake --build
      "--test-dir",           // ctest
      "--output-on-failure",  // ctest
      "--verify-sweep",       // bench/perf_cpm
      "--verify-stream",      // bench/perf_cpm
      "--verify-almost",      // bench/perf_cpm
      "--json",               // bench/perf_cpm, bench/perf_serve
      "--bench-json",         // bench/perf_cliques
      "--scaling",            // bench/perf_cliques
      "--scaling-nodes",      // bench/perf_cliques
      "--scaling-threads",    // bench/perf_cliques
      "--scaling-rounds",     // bench/perf_cliques
      "--scaling-eco",        // bench/perf_cliques
      "--min-qps",            // bench/perf_serve
      "--clients",            // bench/perf_serve
      "--depth",              // bench/perf_serve
      "--requests",           // bench/perf_serve
      "--latency-samples",    // bench/perf_serve
      "--min-speedup",        // bench/perf_incr
      "--churn",              // bench/perf_incr
      "--core-churn",         // bench/perf_incr
  };
  return allowed;
}

/// All --flag tokens in `text`, '='/value suffixes cut off.
std::vector<std::string> extract_flags(const std::string& text) {
  std::vector<std::string> flags;
  for (std::size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-') continue;
    if (i > 0 && text[i - 1] == '-') continue;  // inside ---- rules
    if (std::isalpha(static_cast<unsigned char>(text[i + 2])) == 0) continue;
    std::size_t end = i + 2;
    while (end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[end])) != 0 ||
            text[end] == '-' || text[end] == '_')) {
      ++end;
    }
    flags.push_back(text.substr(i, end - i));
    i = end - 1;
  }
  return flags;
}

/// --help output of one binary, captured via popen. A binary that cannot
/// be run or answers nothing is itself a finding (the check would
/// otherwise silently pass with an empty known set).
std::string help_text(const std::string& binary) {
  const std::string command = binary + " --help 2>&1";
  FILE* pipe = ::popen(command.c_str(), "r");
  require(pipe != nullptr, "kcc_doccheck: cannot run " + command);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) text.append(buf, n);
  const int rc = ::pclose(pipe);
  require(rc == 0, "kcc_doccheck: '" + command + "' exited with status " +
                       std::to_string(rc));
  require(!text.empty(), "kcc_doccheck: '" + command + "' printed nothing");
  return text;
}

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string message;
};

/// Relative link targets of one markdown line: [text](target), external
/// schemes and pure fragments skipped, #fragment suffixes cut off.
std::vector<std::string> extract_links(const std::string& text) {
  std::vector<std::string> targets;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != ']' || i + 1 >= text.size() || text[i + 1] != '(') continue;
    // Empty bracket text is a C++ lambda in a code sample, not a link.
    if (i > 0 && text[i - 1] == '[') continue;
    const std::size_t close = text.find(')', i + 2);
    if (close == std::string::npos) continue;
    std::string target = text.substr(i + 2, close - i - 2);
    // Markdown targets cannot contain raw whitespace; code can.
    if (target.find(' ') != std::string::npos ||
        target.find('\t') != std::string::npos) {
      continue;
    }
    if (const std::size_t hash = target.find('#'); hash != std::string::npos) {
      target.erase(hash);
    }
    if (target.empty() || target.rfind("http://", 0) == 0 ||
        target.rfind("https://", 0) == 0 || target.rfind("mailto:", 0) == 0) {
      continue;
    }
    targets.push_back(std::move(target));
  }
  return targets;
}

void check_file(const fs::path& doc, const std::set<std::string>& known,
                std::vector<Finding>& findings) {
  std::ifstream in(doc);
  require(in.good(), "kcc_doccheck: cannot read " + doc.string());
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    for (const std::string& flag : extract_flags(line)) {
      if (known.count(flag) == 0 && allowlisted_flags().count(flag) == 0) {
        findings.push_back(
            {doc.string(), line_number,
             "flag " + flag +
                 " is not in any checked binary's --help output (stale "
                 "docs, or a new flag missing from help?)"});
      }
    }
    for (const std::string& target : extract_links(line)) {
      const fs::path resolved = doc.parent_path() / target;
      if (!fs::exists(resolved)) {
        findings.push_back({doc.string(), line_number,
                            "dead link: " + target + " (resolved to " +
                                resolved.lexically_normal().string() + ")"});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"root", "kcc", "kcc-bench", "kcc-fuzz", "help"});
    if (args.get_bool("help", false)) {
      std::cout << "usage: kcc_doccheck --root=SOURCE_DIR --kcc=PATH"
                   " --kcc-bench=PATH --kcc-fuzz=PATH [--help]\n";
      return 0;
    }
    const fs::path root = args.get_string("root", ".");
    require(fs::exists(root / "README.md"),
            "kcc_doccheck: --root does not look like the repo root (no "
            "README.md under '" +
                root.string() + "')");

    std::set<std::string> known;
    for (const char* flag : {"kcc", "kcc-bench", "kcc-fuzz"}) {
      const std::string binary = args.get_string(flag, "");
      require(!binary.empty(),
              std::string("kcc_doccheck: --") + flag + " is required");
      for (const std::string& token : extract_flags(help_text(binary))) {
        known.insert(token);
      }
    }

    std::vector<fs::path> docs{root / "README.md"};
    for (const fs::directory_entry& entry :
         fs::directory_iterator(root / "docs")) {
      if (entry.path().extension() == ".md") docs.push_back(entry.path());
    }
    std::sort(docs.begin(), docs.end());

    std::vector<Finding> findings;
    for (const fs::path& doc : docs) check_file(doc, known, findings);

    for (const Finding& f : findings) {
      std::cerr << f.file << ":" << f.line << ": " << f.message << "\n";
    }
    if (!findings.empty()) {
      std::cerr << "kcc_doccheck: " << findings.size() << " finding(s) in "
                << docs.size() << " docs\n";
      return 1;
    }
    std::cout << "kcc_doccheck: " << docs.size() << " docs consistent ("
              << known.size() << " known flags)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "kcc_doccheck: error: " << e.what() << "\n";
    return 2;
  }
}
